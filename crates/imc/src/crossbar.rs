//! Differential-pair crossbar model.
//!
//! This module models the analog matrix-vector-multiplication path the paper
//! targets: weights are programmed as conductance pairs `(G⁺, G⁻)` in a
//! crossbar of NVM cells, inputs are applied as DAC-quantized voltages, the
//! bit-line currents implement the weighted sum, and ADCs digitize the
//! result. Conductance variation is applied at programming time, which is the
//! physical origin of the additive/multiplicative weight noise abstraction
//! used by [`crate::fault`].
//!
//! The crossbar is not needed to reproduce the paper's robustness curves
//! (the paper itself evaluates with the algorithmic abstraction), but it
//! closes the loop from "weights in a file" to "currents in an array" and is
//! exercised by one of the examples and a throughput benchmark.

use crate::Result;
use invnorm_nn::NnError;
use invnorm_quant::uniform::QuantizedTensor;
use invnorm_tensor::{ops, Rng, Tensor};
use serde::{Deserialize, Serialize};

/// Physical tile extents of a crossbar: the granularity at which line
/// defects and correlated drift act. A weight matrix larger than one tile is
/// partitioned into `⌈rows/tile.rows⌉ × ⌈cols/tile.cols⌉` tiles (the last
/// tile row/column may be ragged); a whole word line or bit line failing
/// takes out the corresponding weight-matrix segment within one tile, not
/// the full matrix extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileShape {
    /// Word lines per tile (weight-matrix rows).
    pub rows: usize,
    /// Bit lines per tile (weight-matrix columns).
    pub cols: usize,
}

/// Device and converter parameters of a crossbar tile.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CrossbarConfig {
    /// Number of distinct conductance levels a cell can be programmed to.
    pub conductance_levels: u32,
    /// Minimum programmable conductance (arbitrary units).
    pub g_min: f32,
    /// Maximum programmable conductance (arbitrary units).
    pub g_max: f32,
    /// Relative programming variation applied to every programmed cell
    /// (`G ← G · (1 + N(0, σ))`).
    pub programming_sigma: f32,
    /// DAC resolution in bits for the input voltages.
    pub dac_bits: u8,
    /// ADC resolution in bits for the output currents.
    pub adc_bits: u8,
    /// Word lines per physical tile (structured-fault granularity).
    pub tile_rows: usize,
    /// Bit lines per physical tile (structured-fault granularity).
    pub tile_cols: usize,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        Self {
            conductance_levels: 16,
            g_min: 0.1,
            g_max: 1.0,
            programming_sigma: 0.0,
            dac_bits: 8,
            adc_bits: 8,
            tile_rows: 64,
            tile_cols: 64,
        }
    }
}

impl CrossbarConfig {
    /// The physical tile extents (structured-fault granularity).
    pub fn tile(&self) -> TileShape {
        TileShape {
            rows: self.tile_rows,
            cols: self.tile_cols,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error for non-physical parameter values, including
    /// degenerate (zero-extent) tile geometry.
    pub fn validate(&self) -> Result<()> {
        if self.conductance_levels < 2 {
            return Err(NnError::Config(
                "a crossbar cell needs at least two conductance levels".into(),
            ));
        }
        if self.g_min < 0.0 || self.g_max <= self.g_min {
            return Err(NnError::Config(format!(
                "invalid conductance range [{}, {}]",
                self.g_min, self.g_max
            )));
        }
        if self.programming_sigma < 0.0 {
            return Err(NnError::Config("programming sigma must be >= 0".into()));
        }
        if !(2..=16).contains(&self.dac_bits) || !(2..=16).contains(&self.adc_bits) {
            return Err(NnError::Config(
                "DAC/ADC resolution must be between 2 and 16 bits".into(),
            ));
        }
        if self.tile_rows == 0 || self.tile_cols == 0 {
            return Err(NnError::Config(format!(
                "degenerate crossbar tile geometry {}x{}: a tile needs at least one word line and one bit line",
                self.tile_rows, self.tile_cols
            )));
        }
        Ok(())
    }
}

/// A programmed crossbar tile holding one weight matrix `[rows, cols]` as two
/// conductance matrices (positive and negative lines).
#[derive(Debug, Clone)]
pub struct CrossbarArray {
    config: CrossbarConfig,
    g_pos: Tensor,
    g_neg: Tensor,
    scale: f32,
    rows: usize,
    cols: usize,
}

impl CrossbarArray {
    /// Programs a weight matrix `[rows, cols]` into a crossbar tile.
    ///
    /// Weights are first quantized to the cell's level count, then the
    /// **integer codes** are programmed via
    /// [`CrossbarArray::program_codes`] — the same path a host would use to
    /// program real hardware, and the hook the code-domain fault injection
    /// uses (perturb the codes, then program).
    ///
    /// # Errors
    ///
    /// Returns an error when the weights are not rank-2 or the configuration
    /// is invalid.
    pub fn program(weights: &Tensor, config: CrossbarConfig, rng: &mut Rng) -> Result<Self> {
        config.validate()?;
        ops::as_matrix_dims(weights)?;
        // Quantize to the number of programmable levels (per differential
        // half, so effectively levels-1 magnitude steps).
        let bits = (32 - (config.conductance_levels - 1).leading_zeros()).clamp(2, 16) as u8;
        let q = QuantizedTensor::quantize(weights, bits)?;
        Self::program_codes(&q, config, rng)
    }

    /// Programs a tile **directly from quantized integer codes**: each code's
    /// effective value (`code - zero_point`) selects the on-conductance of
    /// its differential half, without ever reconstructing a f32 weight
    /// tensor. Fault realizations applied to the codes beforehand (bit
    /// flips, stuck-at cells) therefore land exactly where the hardware
    /// applies them.
    ///
    /// Symmetric codes (`zero_point == 0`) map magnitudes over
    /// `[0, qmax]`; asymmetric (affine) codes map over
    /// `[0, qmax + |zero_point|]`, so the full effective range still fits
    /// the conductance window.
    ///
    /// # Errors
    ///
    /// Returns an error when the codes are not rank-2, carry per-channel
    /// scales (a crossbar tile stores one weight scale), or the
    /// configuration is invalid.
    pub fn program_codes(
        q: &QuantizedTensor,
        config: CrossbarConfig,
        rng: &mut Rng,
    ) -> Result<Self> {
        config.validate()?;
        let dims = q.dims();
        if dims.len() != 2 {
            return Err(NnError::Config(format!(
                "crossbar programming expects a rank-2 code matrix, got {dims:?}"
            )));
        }
        if q.is_per_channel() {
            return Err(NnError::Config(
                "crossbar programming needs a per-tensor scale; fold per-channel scales first"
                    .into(),
            ));
        }
        let (rows, cols) = (dims[0], dims[1]);
        if config.tile_rows > rows || config.tile_cols > cols {
            return Err(NnError::Config(format!(
                "crossbar tile {}x{} exceeds the {rows}x{cols} weight matrix; shrink the tile to the matrix extents",
                config.tile_rows, config.tile_cols
            )));
        }
        let qmax = QuantizedTensor::qmax_for(q.bits());
        let zp = q.zero_point();
        // Largest effective |code - zp| the representable range can produce.
        let emax = (qmax + zp.abs()).max(1) as f32;
        let g_range = config.g_max - config.g_min;
        let mut g_pos = Tensor::zeros(&[rows, cols]);
        let mut g_neg = Tensor::zeros(&[rows, cols]);
        for i in 0..q.numel() {
            let effective = q.code(i) - zp;
            let magnitude = (effective.unsigned_abs() as f32 / emax).min(1.0); // in [0, 1]
            let g_on = config.g_min + magnitude * g_range;
            let g_off = config.g_min;
            let (p, n) = if effective >= 0 {
                (g_on, g_off)
            } else {
                (g_off, g_on)
            };
            let noise_p = 1.0 + rng.normal(0.0, config.programming_sigma);
            let noise_n = 1.0 + rng.normal(0.0, config.programming_sigma);
            g_pos.data_mut()[i] = (p * noise_p).clamp(0.0, config.g_max * 2.0);
            g_neg.data_mut()[i] = (n * noise_n).clamp(0.0, config.g_max * 2.0);
        }
        Ok(Self {
            config,
            g_pos,
            g_neg,
            scale: emax * q.scale() / g_range,
            rows,
            cols,
        })
    }

    /// Number of word lines (weight-matrix rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit lines (weight-matrix columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The effective weight matrix currently stored in the array
    /// (`(G⁺ − G⁻) · scale`), i.e. what the analog MVM actually computes.
    pub fn effective_weights(&self) -> Tensor {
        self.g_pos
            .sub(&self.g_neg)
            .expect("conductance matrices share a shape")
            .scale(self.scale)
    }

    /// Performs the analog matrix-vector multiplication `x · Wᵀ` for a batch
    /// of input rows `[N, rows]`, including DAC quantization of the inputs and
    /// ADC quantization of the outputs.
    ///
    /// # Errors
    ///
    /// Returns an error when the input width does not match the array.
    pub fn matvec(&self, inputs: &Tensor) -> Result<Tensor> {
        let (_, in_features) = ops::as_matrix_dims(inputs)?;
        if in_features != self.rows {
            return Err(NnError::Config(format!(
                "crossbar has {} word lines but input provides {in_features} features",
                self.rows
            )));
        }
        // DAC: quantize input voltages.
        let x = QuantizedTensor::quantize(inputs, self.config.dac_bits)?.dequantize();
        // Analog MVM on the differential pair.
        let weights = self.effective_weights(); // [rows, cols]
        let currents = ops::matmul(&x, &weights)?; // [N, cols]
                                                   // ADC: quantize the output currents.
        Ok(QuantizedTensor::quantize(&currents, self.config.adc_bits)?.dequantize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(CrossbarConfig::default().validate().is_ok());
        assert!(CrossbarConfig {
            conductance_levels: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CrossbarConfig {
            g_min: 1.0,
            g_max: 0.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CrossbarConfig {
            dac_bits: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CrossbarConfig {
            programming_sigma: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn degenerate_tile_geometry_is_rejected() {
        // Zero-extent tiles are caught by validation with a typed error.
        for (tr, tc) in [(0usize, 64usize), (64, 0), (0, 0)] {
            let config = CrossbarConfig {
                tile_rows: tr,
                tile_cols: tc,
                ..Default::default()
            };
            let err = config.validate().unwrap_err();
            assert!(
                matches!(&err, NnError::Config(msg) if msg.contains("tile")),
                "unexpected error for tile {tr}x{tc}: {err}"
            );
        }
        // A tile larger than the programmed matrix is rejected at program
        // time (the matrix extents are only known there).
        let mut rng = Rng::seed_from(30);
        let w = Tensor::randn(&[4, 4], 0.0, 0.5, &mut rng);
        let config = CrossbarConfig {
            tile_rows: 8,
            tile_cols: 4,
            ..Default::default()
        };
        assert_eq!(config.tile(), TileShape { rows: 8, cols: 4 });
        let err = CrossbarArray::program(&w, config, &mut rng).unwrap_err();
        assert!(
            matches!(&err, NnError::Config(msg) if msg.contains("exceeds")),
            "unexpected error: {err}"
        );
        let config = CrossbarConfig {
            tile_rows: 4,
            tile_cols: 5,
            ..Default::default()
        };
        assert!(CrossbarArray::program(&w, config, &mut rng).is_err());
        // A tile matching the matrix exactly is fine.
        let config = CrossbarConfig {
            tile_rows: 4,
            tile_cols: 4,
            ..Default::default()
        };
        assert!(CrossbarArray::program(&w, config, &mut rng).is_ok());
    }

    #[test]
    fn ideal_crossbar_approximates_dense_matmul() {
        let mut rng = Rng::seed_from(1);
        let w = Tensor::randn(&[6, 4], 0.0, 0.5, &mut rng);
        let config = CrossbarConfig {
            conductance_levels: 256,
            dac_bits: 12,
            adc_bits: 12,
            programming_sigma: 0.0,
            tile_rows: 2,
            tile_cols: 2,
            ..Default::default()
        };
        let array = CrossbarArray::program(&w, config, &mut rng).unwrap();
        assert_eq!(array.rows(), 6);
        assert_eq!(array.cols(), 4);
        let x = Tensor::randn(&[3, 6], 0.0, 1.0, &mut rng);
        let analog = array.matvec(&x).unwrap();
        let digital = ops::matmul(&x, &w).unwrap();
        let err = analog.sub(&digital).unwrap().abs().max();
        let scale = digital.abs().max();
        assert!(err < 0.1 * scale, "analog error {err} vs scale {scale}");
    }

    #[test]
    fn programming_variation_degrades_fidelity() {
        let mut rng = Rng::seed_from(2);
        let w = Tensor::randn(&[8, 8], 0.0, 0.5, &mut rng);
        let x = Tensor::randn(&[4, 8], 0.0, 1.0, &mut rng);
        let digital = ops::matmul(&x, &w).unwrap();
        let error_with_sigma = |sigma: f32| {
            let config = CrossbarConfig {
                conductance_levels: 256,
                dac_bits: 12,
                adc_bits: 12,
                programming_sigma: sigma,
                tile_rows: 4,
                tile_cols: 4,
                ..Default::default()
            };
            let mut rng = Rng::seed_from(3);
            let array = CrossbarArray::program(&w, config, &mut rng).unwrap();
            array
                .matvec(&x)
                .unwrap()
                .sub(&digital)
                .unwrap()
                .abs()
                .mean()
        };
        assert!(error_with_sigma(0.3) > error_with_sigma(0.0));
    }

    #[test]
    fn input_width_mismatch_is_rejected() {
        let mut rng = Rng::seed_from(4);
        let w = Tensor::randn(&[5, 3], 0.0, 0.5, &mut rng);
        let config = CrossbarConfig {
            tile_rows: 5,
            tile_cols: 3,
            ..Default::default()
        };
        let array = CrossbarArray::program(&w, config, &mut rng).unwrap();
        assert!(array.matvec(&Tensor::zeros(&[2, 4])).is_err());
        assert!(CrossbarArray::program(&Tensor::zeros(&[5]), config, &mut rng).is_err());
    }

    #[test]
    fn program_codes_matches_program_for_clean_codes() {
        let mut rng = Rng::seed_from(6);
        let w = Tensor::randn(&[4, 5], 0.0, 0.5, &mut rng);
        let config = CrossbarConfig {
            conductance_levels: 256,
            programming_sigma: 0.0,
            tile_rows: 2,
            tile_cols: 2,
            ..Default::default()
        };
        let via_weights = CrossbarArray::program(&w, config, &mut Rng::seed_from(7)).unwrap();
        let q = QuantizedTensor::quantize(&w, 8).unwrap();
        let via_codes = CrossbarArray::program_codes(&q, config, &mut Rng::seed_from(7)).unwrap();
        assert!(via_codes
            .effective_weights()
            .approx_eq(&via_weights.effective_weights(), 1e-6));
    }

    #[test]
    fn affine_codes_program_with_zero_point_correction() {
        // A strictly positive tensor quantized affinely has codes spanning
        // the full signed range with a large zero point; programming must
        // honour `code - zp`, not the raw code sign.
        let mut rng = Rng::seed_from(20);
        let w = Tensor::from_vec(vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0], &[2, 3]).unwrap();
        let q = QuantizedTensor::quantize_affine(&w, 8).unwrap();
        assert_ne!(q.zero_point(), 0);
        let config = CrossbarConfig {
            conductance_levels: 256,
            programming_sigma: 0.0,
            tile_rows: 1,
            tile_cols: 1,
            ..Default::default()
        };
        let array = CrossbarArray::program_codes(&q, config, &mut rng).unwrap();
        let eff = array.effective_weights();
        // All weights are positive and approximately recovered.
        let dequant = q.dequantize();
        for (stored, want) in eff.data().iter().zip(dequant.data().iter()) {
            assert!(*stored > 0.0, "stored {stored} lost its sign");
            assert!(
                (stored - want).abs() <= 0.05 * want.abs() + 0.02,
                "stored {stored} vs dequantized {want}"
            );
        }
        // Per-channel code matrices are rejected (tiles hold one scale).
        let pc = QuantizedTensor::quantize_per_channel(&w, 8).unwrap();
        assert!(CrossbarArray::program_codes(&pc, config, &mut rng).is_err());
    }

    #[test]
    fn code_domain_faults_reach_the_programmed_array() {
        // Flip bits on the codes, then program: the array must store the
        // faulty weights — the full code-domain deployment path.
        let mut rng = Rng::seed_from(8);
        let w = Tensor::randn(&[6, 6], 0.0, 0.5, &mut rng);
        let config = CrossbarConfig {
            conductance_levels: 256,
            programming_sigma: 0.0,
            tile_rows: 3,
            tile_cols: 3,
            ..Default::default()
        };
        let mut q = QuantizedTensor::quantize(&w, 8).unwrap();
        let clean = CrossbarArray::program_codes(&q, config, &mut Rng::seed_from(9)).unwrap();
        crate::fault::flip_bits(&mut q, 0.3, &mut rng);
        let faulty = CrossbarArray::program_codes(&q, config, &mut Rng::seed_from(9)).unwrap();
        assert!(!faulty
            .effective_weights()
            .approx_eq(&clean.effective_weights(), 1e-6));
        // The faulty array still computes an MVM of the faulty weights.
        let x = Tensor::randn(&[2, 6], 0.0, 1.0, &mut rng);
        let analog = faulty.matvec(&x).unwrap();
        let digital = ops::matmul(&x, &faulty.effective_weights()).unwrap();
        let err = analog.sub(&digital).unwrap().abs().max();
        assert!(err < 0.1 * digital.abs().max().max(1e-6));
    }

    #[test]
    fn effective_weights_have_correct_signs() {
        let mut rng = Rng::seed_from(5);
        let w = Tensor::from_vec(vec![1.0, -1.0, 0.5, -0.5], &[2, 2]).unwrap();
        let config = CrossbarConfig {
            conductance_levels: 256,
            programming_sigma: 0.0,
            tile_rows: 2,
            tile_cols: 2,
            ..Default::default()
        };
        let array = CrossbarArray::program(&w, config, &mut rng).unwrap();
        let eff = array.effective_weights();
        for (orig, stored) in w.data().iter().zip(eff.data().iter()) {
            assert_eq!(orig.signum(), stored.signum());
        }
    }
}
