//! # invnorm-imc
//!
//! In-memory-computing (IMC) substrate: a crossbar model and the NVM
//! non-ideality (fault) models the paper evaluates its method against.
//!
//! The paper abstracts circuit-level behaviour into an algorithmic fault
//! model (Sec. IV-A2): manufacturing/thermal conductance variation becomes
//! additive and multiplicative Gaussian noise, and programming/retention
//! faults become random bit flips of the quantized parameters. This crate
//! implements exactly that abstraction plus the deployment path around it:
//!
//! * [`fault`] — the [`fault::FaultModel`] catalogue (additive /
//!   multiplicative conductance variation, uniform noise, bit flips on
//!   quantized or binary weights, stuck-at faults, retention drift, and the
//!   structured topologies: whole stuck crossbar lines and per-tile
//!   correlated drift), plus [`fault::FaultSpec`] pairing a model with a
//!   [`fault::FaultLifetime`] (static per chip instance vs. re-drawn per
//!   inference).
//! * [`injector`] — [`injector::WeightFaultInjector`]: applies a fault model
//!   to every weight of a network (with save/restore so Monte-Carlo runs are
//!   independent); [`injector::CodeFaultInjector`]: the code-domain variant
//!   that perturbs the **i8 quantization codes** of integer-inference
//!   networks directly (via `Layer::visit_codes`), so faults land on the
//!   representation the hardware programs; and
//!   [`injector::ActivationNoise`], a layer that perturbs pre-activation
//!   values (the injection point the paper uses for binary networks, where
//!   weights have no analog magnitude to perturb).
//! * [`montecarlo`] — the Monte-Carlo fault-simulation engine that evaluates
//!   a metric over `N` simulated chip instances and reports mean ± std, the
//!   protocol behind every robustness figure in the paper
//!   (`run_quantized` drives the same protocol over code-domain faults;
//!   `run_auto` picks the fastest engine that supports the configuration
//!   and degrades gracefully down the engine ladder with typed reasons).
//! * [`crossbar`] — a differential-pair crossbar model with DAC/ADC
//!   quantization and conductance variation, demonstrating the full
//!   weight-programming / analog-MVM path (`program_codes` programs a tile
//!   straight from quantized integer codes).
//! * [`supervise`] — hardened-sweep supervision: [`supervise::RunBudget`]
//!   deadlines and cooperative [`supervise::CancelToken`]s, panic / non-finite
//!   quarantine with typed [`supervise::QuarantinedRun`] diagnostics, and
//!   bit-identical checkpoint/resume via [`supervise::SweepCheckpoint`] —
//!   driven through the `*_supervised` engine entry points.
//!
//! # Example: perturb a network and measure the damage
//!
//! ```
//! use invnorm_imc::fault::FaultModel;
//! use invnorm_imc::injector::WeightFaultInjector;
//! use invnorm_nn::layer::{Layer, Mode};
//! use invnorm_nn::linear::Linear;
//! use invnorm_nn::Sequential;
//! use invnorm_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), invnorm_nn::NnError> {
//! let mut rng = Rng::seed_from(0);
//! let mut net = Sequential::new();
//! net.push(Box::new(Linear::new(8, 4, &mut rng)));
//! let x = Tensor::randn(&[2, 8], 0.0, 1.0, &mut rng);
//! let clean = net.forward(&x, Mode::Eval)?;
//!
//! let mut injector = WeightFaultInjector::new(FaultModel::AdditiveVariation { sigma: 0.3 })?;
//! injector.inject(&mut net, &mut Rng::seed_from(1))?;
//! let faulty = net.forward(&x, Mode::Eval)?;
//! injector.restore(&mut net)?;
//! let restored = net.forward(&x, Mode::Eval)?;
//!
//! assert!(!clean.approx_eq(&faulty, 1e-6));
//! assert!(clean.approx_eq(&restored, 1e-6));
//! # Ok(())
//! # }
//! ```

// This crate must stay free of `unsafe`; all unsafe code in the
// workspace is confined to `crates/tensor` (lint rule R2).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crossbar;
pub mod fault;
pub mod injector;
pub mod montecarlo;
pub mod supervise;

pub use crossbar::TileShape;
pub use fault::{FaultLifetime, FaultModel, FaultSpec, LineOrientation};
pub use injector::{ActivationNoise, CodeFaultInjector, NoiseHandle, WeightFaultInjector};
pub use invnorm_tensor::telemetry;
pub use montecarlo::{
    DegradationPolicy, EngineKind, FallbackReason, FallbackStep, LadderOutcome, MonteCarloEngine,
    MonteCarloSummary, SupervisedLadderOutcome,
};
pub use supervise::{
    CancelToken, InterruptCause, QuarantineCause, QuarantinedRun, RunBudget, SweepCheckpoint,
    SweepControl, SweepDomain, SweepOutcome,
};

/// Convenience result alias re-using the NN error type.
pub type Result<T> = std::result::Result<T, invnorm_nn::NnError>;
