//! Fault injection into networks.
//!
//! Two injection points are provided, matching the paper's protocol:
//!
//! * [`WeightFaultInjector`] perturbs the learnable weights of a network (the
//!   injection point for 8-bit models). It snapshots the clean weights so
//!   they can be restored between Monte-Carlo runs.
//! * [`ActivationNoise`] is a pass-through layer placed on the weighted sum
//!   (pre-activation) path. For binary networks the paper injects variation
//!   into the *normalized activations before the sign function*, because a
//!   binary weight has no analog magnitude to perturb; model builders insert
//!   this layer at that point and experiments turn it on through the shared
//!   [`NoiseHandle`].

use crate::fault::{
    flip_code_bits, for_each_drift_tile, for_each_fired_line, stuck_levels, FaultModel,
};
use crate::Result;
use invnorm_nn::layer::{Layer, Mode, Param};
use invnorm_nn::plan::{PlanArenas, PlanCodeView, PlanCtx, PlanParamView, PlanShape};
use invnorm_nn::NnError;
use invnorm_tensor::telemetry;
use invnorm_tensor::{DirtyRows, Rng, Tensor};
use std::sync::{Arc, RwLock};

/// Minimum total targeted elements before per-parameter perturbation fans
/// out over rayon tasks; below this the spawn overhead dominates.
const PARALLEL_INJECT_THRESHOLD: usize = 1 << 16;

/// Minimum elements a single parameter needs before it gets its own rayon
/// task inside the parallel branch; smaller tensors are perturbed inline so
/// a network of many small parameters doesn't pay one spawn each.
const PARALLEL_INJECT_MIN_PARAM: usize = 1 << 14;

/// Applies a [`FaultModel`] to every learnable weight of a network.
///
/// Only parameters of rank ≥ 2 (convolution kernels, linear/recurrent weight
/// matrices) are perturbed by default — biases and normalization affine
/// parameters are computed digitally outside the crossbar in the paper's
/// architecture. Use [`WeightFaultInjector::including_vectors`] to also
/// perturb rank-1 parameters.
#[derive(Debug)]
pub struct WeightFaultInjector {
    model: FaultModel,
    include_vectors: bool,
    snapshot: Option<Vec<Tensor>>,
}

impl WeightFaultInjector {
    /// Creates an injector for the given fault model, validating it up
    /// front.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] when the model's parameters are invalid
    /// (see [`FaultModel::validate`]): NaN or negative magnitudes, rates
    /// outside `[0, 1]`, non-finite drift parameters, or a zero-extent tile.
    /// Rejecting bad models at construction keeps every sweep loud at its
    /// source instead of deep inside a Monte-Carlo loop.
    pub fn new(model: FaultModel) -> Result<Self> {
        model.validate()?;
        Ok(Self::new_unchecked(model))
    }

    /// Constructs without re-validating — for engine inner loops whose entry
    /// point already validated the model.
    pub(crate) fn new_unchecked(model: FaultModel) -> Self {
        Self {
            model,
            include_vectors: false,
            snapshot: None,
        }
    }

    /// Also perturb rank-1 parameters (biases, affine vectors).
    #[must_use]
    pub fn including_vectors(mut self) -> Self {
        self.include_vectors = true;
        self
    }

    /// The configured fault model.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Replaces the fault model (e.g. for the next sweep point) — only
    /// allowed while no faulty weights are outstanding.
    ///
    /// # Errors
    ///
    /// Returns an error if called between `inject` and `restore`, or when
    /// the new model fails [`FaultModel::validate`]; on error the configured
    /// model is unchanged.
    pub fn set_model(&mut self, model: FaultModel) -> Result<()> {
        if self.snapshot.is_some() {
            return Err(NnError::Config(
                "cannot change fault model while faults are injected; call restore() first".into(),
            ));
        }
        model.validate()?;
        self.model = model;
        Ok(())
    }

    fn targets(&self, p: &Param) -> bool {
        p.value.rank() >= 2 || self.include_vectors
    }

    /// Perturbs the network weights in place, remembering the clean values.
    ///
    /// Every targeted parameter draws from its **own RNG stream**, forked
    /// from `rng` in `visit_params` order. That makes the realization a pure
    /// function of the caller's seed and the parameter index, so large
    /// parameters can be perturbed **in parallel** (rayon) without changing
    /// any value — the realization is bit-identical for every thread count,
    /// which is what keeps `MonteCarloEngine::run_parallel` exactly equal to
    /// the sequential engine.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault model is invalid or faults are already
    /// injected (call [`WeightFaultInjector::restore`] first); on error the
    /// network is left untouched.
    pub fn inject<L: Layer + ?Sized>(&mut self, network: &mut L, rng: &mut Rng) -> Result<()> {
        let _span = telemetry::span(telemetry::Phase::Inject);
        if self.snapshot.is_some() {
            return Err(NnError::Config(
                "faults already injected; call restore() before injecting again".into(),
            ));
        }
        self.model.validate()?;
        let include_vectors = self.include_vectors;
        let mut snapshot: Vec<Tensor> = Vec::new();
        let mut targeted: Vec<bool> = Vec::new();
        network.visit_params(&mut |p| {
            targeted.push(p.value.rank() >= 2 || include_vectors);
            snapshot.push(p.value.clone());
        });
        // One independent child stream per targeted parameter, forked in a
        // fixed order so the realization is schedule-independent.
        let mut streams: Vec<Option<Rng>> = targeted
            .iter()
            .enumerate()
            .map(|(idx, &t)| t.then(|| rng.fork(idx as u64)))
            .collect();
        let mut perturbed: Vec<Option<Result<Tensor>>> =
            (0..snapshot.len()).map(|_| None).collect();
        let model = self.model;
        let work: usize = snapshot
            .iter()
            .zip(&targeted)
            .filter(|(_, &t)| t)
            .map(|(v, _)| v.numel())
            .sum();
        if rayon::current_num_threads() > 1 && work >= PARALLEL_INJECT_THRESHOLD {
            rayon::scope(|s| {
                for ((slot, clean), stream) in
                    perturbed.iter_mut().zip(&snapshot).zip(streams.iter_mut())
                {
                    if let Some(stream) = stream.as_mut() {
                        // Only parameters with enough elements to amortize a
                        // task spawn go to a worker; the long tail of small
                        // tensors (biases, norm affines, tiny layers) is
                        // perturbed inline. Streams are pre-forked, so the
                        // split cannot change any value.
                        if clean.numel() >= PARALLEL_INJECT_MIN_PARAM {
                            s.spawn(move || {
                                *slot = Some(model.perturb(clean, stream));
                            });
                        } else {
                            *slot = Some(model.perturb(clean, stream));
                        }
                    }
                }
            });
        } else {
            for ((slot, clean), stream) in
                perturbed.iter_mut().zip(&snapshot).zip(streams.iter_mut())
            {
                if let Some(stream) = stream.as_mut() {
                    *slot = Some(model.perturb(clean, stream));
                }
            }
        }
        // Fail atomically: assign only after every perturbation succeeded.
        let mut values = Vec::with_capacity(perturbed.len());
        for result in perturbed {
            values.push(result.transpose()?);
        }
        let mut idx = 0usize;
        network.visit_params(&mut |p| {
            if let Some(slot) = values.get_mut(idx) {
                if let Some(value) = slot.take() {
                    p.value = value;
                }
            }
            idx += 1;
        });
        self.snapshot = Some(snapshot);
        Ok(())
    }

    /// Restores the clean weights captured by the last
    /// [`WeightFaultInjector::inject`].
    ///
    /// # Errors
    ///
    /// Returns an error when no snapshot is available or the network's
    /// parameter count changed in between.
    pub fn restore<L: Layer + ?Sized>(&mut self, network: &mut L) -> Result<()> {
        let _span = telemetry::span(telemetry::Phase::Inject);
        let snapshot = self
            .snapshot
            .take()
            .ok_or_else(|| NnError::Config("restore() called without a prior inject()".into()))?;
        let mut idx = 0usize;
        let mut mismatch = false;
        network.visit_params(&mut |p| {
            if idx < snapshot.len() {
                p.value = snapshot[idx].clone();
            } else {
                mismatch = true;
            }
            idx += 1;
        });
        if mismatch || idx != snapshot.len() {
            return Err(NnError::Config(
                "parameter count changed between inject() and restore()".into(),
            ));
        }
        Ok(())
    }

    /// Whether faulty weights are currently outstanding.
    pub fn is_injected(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Returns `true` if this injector would perturb the given parameter.
    pub fn would_target(&self, p: &Param) -> bool {
        self.targets(p)
    }

    /// Materializes one fault realization per entry of `rngs` into the
    /// network's **stacked batched buffers** (staged by
    /// `Layer::begin_batched`), leaving the clean parameters untouched — the
    /// batched Monte-Carlo engine's counterpart of
    /// [`WeightFaultInjector::inject`] + restore.
    ///
    /// Realization `b` perturbs parameter `i` with the stream
    /// `rngs[b].fork(i)` in `visit_params` order — exactly the stream the
    /// sequential injector would fork on chip instance `b` — so every staged
    /// realization is **bit-identical** to what [`MonteCarloEngine::run`]
    /// would have programmed.
    ///
    /// [`MonteCarloEngine::run`]: crate::MonteCarloEngine::run
    ///
    /// # Errors
    ///
    /// Returns an error when the fault model is invalid, the injector was
    /// configured with [`WeightFaultInjector::including_vectors`] (batched
    /// evaluation targets the default rank ≥ 2 parameter set only), or a
    /// staged buffer does not match the batch size.
    pub fn realize_batch<L: Layer + ?Sized>(
        &self,
        network: &mut L,
        rngs: &mut [Rng],
    ) -> Result<()> {
        let _span = telemetry::span(telemetry::Phase::Inject);
        if self.include_vectors {
            return Err(NnError::Config(
                "batched evaluation supports the default (rank >= 2) fault targets only".into(),
            ));
        }
        self.model.validate()?;
        let model = self.model;
        let batch = rngs.len();
        let mut result: Result<()> = Ok(());
        network.visit_batched(&mut |view| {
            if result.is_err() {
                return;
            }
            if view.stacked.batch() != batch || view.stacked.numel() != view.clean.numel() {
                result = Err(NnError::Config(format!(
                    "staged batch buffer is {}x{} elements, expected {}x{}",
                    view.stacked.batch(),
                    view.stacked.numel(),
                    batch,
                    view.clean.numel()
                )));
                return;
            }
            for (b, parent) in rngs.iter_mut().enumerate() {
                let mut stream = parent.fork(view.index as u64);
                if let Err(e) =
                    model.perturb_into(view.clean, view.stacked.realization_mut(b), &mut stream)
                {
                    result = Err(e);
                    return;
                }
            }
        });
        result
    }

    /// Materializes one fault realization into the network's **plan-owned
    /// faulty weight buffers** (installed by `Layer::plan_compile`), leaving
    /// the clean parameters untouched, and **reports the touched row
    /// blocks** through each buffer's dirty set so the plan re-packs only
    /// dirty panels — the compiled-plan engine's counterpart of
    /// [`WeightFaultInjector::inject`] + restore.
    ///
    /// Parameter `i` draws from the stream `rng.fork(i)` in `visit_params`
    /// order — exactly the stream the sequential injector forks — so the
    /// realization is **bit-identical** to what
    /// [`MonteCarloEngine::run`](crate::MonteCarloEngine::run) would have
    /// programmed.
    ///
    /// Dense fault models (variation, noise, drift, f32 bit flips, which
    /// rewrite every element) mark every row dirty; the sparse stuck-at
    /// model marks only rows whose values actually changed, which is what
    /// removes the per-run weight-pack cost.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault model is invalid, the injector was
    /// configured with [`WeightFaultInjector::including_vectors`] (plans
    /// target the default rank ≥ 2 parameter set only), or a faulty buffer
    /// does not match its parameter.
    pub fn realize_plan<L: Layer + ?Sized>(&self, network: &mut L, rng: &mut Rng) -> Result<()> {
        let _span = telemetry::span(telemetry::Phase::Inject);
        if self.include_vectors {
            return Err(NnError::Config(
                "compiled plans support the default (rank >= 2) fault targets only".into(),
            ));
        }
        self.model.validate()?;
        let model = self.model;
        if let Some(factor) = model.uniform_scale() {
            // Retention drift draws no randomness and maps every weight to
            // `w · factor`: request the layers' uniform-scale fast path
            // (panels scaled in place — or skipped once the factor is
            // applied) instead of materializing and re-packing a full
            // realization. The fork still runs so the parent RNG stream
            // stays in lockstep with the sequential injector.
            network.visit_plan_params(&mut |view| {
                let _ = rng.fork(view.index as u64);
                *view.scale = Some(factor);
            });
            return Ok(());
        }
        let mut result: Result<()> = Ok(());
        network.visit_plan_params(&mut |mut view| {
            if result.is_err() {
                return;
            }
            if view.faulty.len() != view.clean.numel() {
                result = Err(NnError::Config(format!(
                    "plan staged {} faulty elements for a parameter of {} (was the plan \
                     compiled batched? use realize_plan_batch)",
                    view.faulty.len(),
                    view.clean.numel()
                )));
                return;
            }
            let rows = view.dirty.rows();
            let mut stream = rng.fork(view.index as u64);
            if let Err(e) = realize_one_f32(&mut view, model, 0, rows, None, &mut stream) {
                result = Err(e);
            }
        });
        result
    }

    /// Materializes one fault realization **per entry of `rngs`** into a
    /// batched plan's stacked faulty weight buffers (compiled by
    /// `Plan::compile_batched`), reporting per-realization dirty rows — the
    /// fusion of [`WeightFaultInjector::realize_plan`] (plan-owned buffers,
    /// dirty-row bookkeeping, uniform-scale and sparse packed-domain fast
    /// paths) with [`WeightFaultInjector::realize_batch`]'s stacked
    /// semantics.
    ///
    /// Realization `b` of parameter `i` draws from the stream
    /// `rngs[b].fork(i)` in `visit_params` order — exactly the stream the
    /// sequential injector forks on chip instance `b` — so every stacked
    /// realization is **bit-identical** to what
    /// [`MonteCarloEngine::run`](crate::MonteCarloEngine::run) would have
    /// programmed.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault model is invalid, the injector was
    /// configured with [`WeightFaultInjector::including_vectors`], `rngs` is
    /// empty, or a staged buffer does not match the batch size.
    pub fn realize_plan_batch<L: Layer + ?Sized>(
        &self,
        network: &mut L,
        rngs: &mut [Rng],
    ) -> Result<()> {
        let _span = telemetry::span(telemetry::Phase::Inject);
        if self.include_vectors {
            return Err(NnError::Config(
                "compiled plans support the default (rank >= 2) fault targets only".into(),
            ));
        }
        self.model.validate()?;
        let model = self.model;
        let batch = rngs.len();
        if batch == 0 {
            return Err(NnError::Config(
                "realize_plan_batch needs at least one RNG stream".into(),
            ));
        }
        let check_staged = |view: &PlanParamView<'_>| -> Result<()> {
            let numel = view.clean.numel();
            if view.faulty.len() != batch * numel || !view.dirty.rows().is_multiple_of(batch) {
                return Err(NnError::Config(format!(
                    "plan staged {} faulty elements / {} dirty rows for a parameter of {} \
                     elements, expected batch {batch}",
                    view.faulty.len(),
                    view.dirty.rows(),
                    numel
                )));
            }
            Ok(())
        };
        if let Some(factor) = model.uniform_scale() {
            // Drift's factor is deterministic, so every realization of the
            // stack shares it: one scale request covers all panels. The
            // forks still run to keep every per-instance stream in lockstep
            // with the sequential injector, and the staged-buffer check
            // still runs so a batch mismatch is as loud as on every other
            // model.
            let mut result: Result<()> = Ok(());
            network.visit_plan_params(&mut |view| {
                if result.is_err() {
                    return;
                }
                if let Err(e) = check_staged(&view) {
                    result = Err(e);
                    return;
                }
                for parent in rngs.iter_mut() {
                    let _ = parent.fork(view.index as u64);
                }
                *view.scale = Some(factor);
            });
            return result;
        }
        let mut result: Result<()> = Ok(());
        network.visit_plan_params(&mut |mut view| {
            if result.is_err() {
                return;
            }
            if let Err(e) = check_staged(&view) {
                result = Err(e);
                return;
            }
            let rows = view.dirty.rows() / batch;
            let levels = matches!(
                model,
                FaultModel::StuckAt { .. } | FaultModel::LineDefect { .. }
            )
            .then(|| stuck_levels(view.clean.data()));
            for (b, parent) in rngs.iter_mut().enumerate() {
                let mut stream = parent.fork(view.index as u64);
                if let Err(e) = realize_one_f32(&mut view, model, b, rows, levels, &mut stream) {
                    result = Err(e);
                    return;
                }
            }
        });
        result
    }
}

/// Materializes realization `b` of one parameter into its slice of the
/// plan-owned faulty buffer, with per-realization dirty-row reporting.
///
/// Stuck-at and line defects take the **sparse packed-domain path**: the
/// previous realization's cells are reverted through the exact cell list
/// (falling back to a full clean copy when unknown), fired cells are written
/// individually, and the list is handed to the plan so the refresh scatters
/// the cells straight into the packed panels. Line defects route through the
/// same canonical tile iteration as the dense perturbation
/// ([`for_each_fired_line`]), so both draw exactly the random variates of
/// the sequential injector, in the same order. Every other model realizes
/// densely via [`FaultModel::perturb_into`].
fn realize_one_f32(
    view: &mut PlanParamView<'_>,
    model: FaultModel,
    b: usize,
    rows: usize,
    levels: Option<(f32, f32)>,
    stream: &mut Rng,
) -> Result<()> {
    let numel = view.clean.numel();
    let base = b * rows;
    let faulty_b = &mut view.faulty[b * numel..][..numel];
    if let FaultModel::StuckAt { rate } = model {
        if rate > 0.0 && rows > 0 && numel > 0 {
            let clean = view.clean.data();
            // Revert the previous realization's cells (exact when known,
            // full copy otherwise), then record this realization exactly.
            match view.cells.faulty_cells(b) {
                Some(cells) => {
                    for &i in cells {
                        faulty_b[i as usize] = clean[i as usize];
                    }
                }
                None => faulty_b.copy_from_slice(clean),
            }
            view.cells.reset_faulty(b);
            let cols = numel / rows;
            // The stuck levels depend only on the clean weights; the caller
            // computes them once per parameter, not once per realization.
            let (lo, hi) = levels.unwrap_or_else(|| stuck_levels(clean));
            for (idx, cell) in faulty_b.iter_mut().enumerate() {
                if stream.bernoulli(rate) {
                    *cell = if stream.bernoulli(0.5) { lo } else { hi };
                    view.dirty.mark(base + idx / cols);
                    view.cells.push_faulty(b, idx);
                }
            }
            view.cells.mark_pending(b);
            return Ok(());
        }
        // rate == 0.0 falls through to the dense (inactive → copy) path so
        // the realization protocol stays uniform.
    }
    if let FaultModel::LineDefect {
        orientation,
        rate,
        tile,
    } = model
    {
        if rate > 0.0 && rows > 0 && numel > 0 {
            let clean = view.clean.data();
            match view.cells.faulty_cells(b) {
                Some(cells) => {
                    for &i in cells {
                        faulty_b[i as usize] = clean[i as usize];
                    }
                }
                None => faulty_b.copy_from_slice(clean),
            }
            view.cells.reset_faulty(b);
            let cols = numel / rows;
            let (lo, hi) = levels.unwrap_or_else(|| stuck_levels(clean));
            let (dirty, cells) = (&mut *view.dirty, &mut *view.cells);
            for_each_fired_line(
                rows,
                cols,
                orientation,
                rate,
                tile,
                stream,
                |rr, cc, pick_lo| {
                    let level = if pick_lo { lo } else { hi };
                    for r in rr {
                        dirty.mark(base + r);
                        for c in cc.clone() {
                            let idx = r * cols + c;
                            faulty_b[idx] = level;
                            cells.push_faulty(b, idx);
                        }
                    }
                },
            );
            cells.mark_pending(b);
            return Ok(());
        }
    }
    model.perturb_into(view.clean, faulty_b, stream)?;
    view.cells.invalidate_faulty(b);
    mark_dirty_f32(model, view.clean.data(), faulty_b, view.dirty, base, rows);
    Ok(())
}

/// Reports which rows of a `[rows, cols]` parameter a realization touched,
/// marking into `[base, base + rows)` of a (possibly stacked) dirty set.
/// Inactive models left the weights bit-identical to clean (nothing to
/// re-pack); sparse models diff faulty vs clean bits; dense models mark
/// everything (they rewrite every element, so a diff would find everything
/// anyway).
fn mark_dirty_f32(
    model: FaultModel,
    clean: &[f32],
    faulty: &[f32],
    dirty: &mut DirtyRows,
    base: usize,
    rows: usize,
) {
    if !model.is_active() {
        return;
    }
    match model {
        FaultModel::None => {}
        FaultModel::StuckAt { .. } | FaultModel::LineDefect { .. } => {
            diff_rows(clean, faulty, dirty, base, rows, |a, b| {
                a.to_bits() != b.to_bits()
            })
        }
        _ => dirty.mark_range(base, base + rows),
    }
}

/// Marks every row of `[rows, cols]` buffers where any element differs,
/// into `[base, base + rows)` of the dirty set.
fn diff_rows<T: Copy>(
    clean: &[T],
    faulty: &[T],
    dirty: &mut DirtyRows,
    base: usize,
    rows: usize,
    differs: impl Fn(T, T) -> bool,
) {
    if rows == 0 {
        return;
    }
    let cols = clean.len() / rows;
    for row in 0..rows {
        let start = row * cols;
        let changed = (0..cols).any(|i| differs(clean[start + i], faulty[start + i]));
        if changed {
            dirty.mark(base + row);
        }
    }
}

/// Applies a [`FaultModel`] **directly to the i8 quantization codes** of a
/// network's quantized layers (via [`Layer::visit_codes`]), instead of
/// emulating code-domain faults with a quantize → perturb → dequantize round
/// trip on f32 weights.
///
/// This is the injection point for integer-inference networks built from
/// `invnorm_nn::quantized` layers: the fault realization lands on exactly
/// the integers a host would program into the crossbar, and the subsequent
/// forward pass stays in the integer domain. Fault magnitudes are
/// interpreted in code units relative to the layer's `qmax` (e.g.
/// `AdditiveVariation { sigma }` adds `N(0, σ·qmax)` rounded to the nearest
/// code), mirroring how the f32 models scale noise by each tensor's maximum
/// magnitude.
///
/// Like [`WeightFaultInjector`], the clean codes are snapshotted on inject
/// and restored afterwards, and every quantized parameter draws from its own
/// RNG stream forked in visit order, so a realization is a pure function of
/// the caller's seed.
#[derive(Debug)]
pub struct CodeFaultInjector {
    model: FaultModel,
    snapshot: Option<Vec<Vec<i8>>>,
}

impl CodeFaultInjector {
    /// Creates an injector for the given fault model, validating it up
    /// front (see [`WeightFaultInjector::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] when the model fails
    /// [`FaultModel::validate`].
    pub fn new(model: FaultModel) -> Result<Self> {
        model.validate()?;
        Ok(Self::new_unchecked(model))
    }

    /// Constructs without re-validating — for engine inner loops whose entry
    /// point already validated the model.
    pub(crate) fn new_unchecked(model: FaultModel) -> Self {
        Self {
            model,
            snapshot: None,
        }
    }

    /// The configured fault model.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Replaces the fault model — only allowed while no faulty codes are
    /// outstanding.
    ///
    /// # Errors
    ///
    /// Returns an error if called between `inject` and `restore`, or when
    /// the new model fails [`FaultModel::validate`]; on error the configured
    /// model is unchanged.
    pub fn set_model(&mut self, model: FaultModel) -> Result<()> {
        if self.snapshot.is_some() {
            return Err(NnError::Config(
                "cannot change fault model while faults are injected; call restore() first".into(),
            ));
        }
        model.validate()?;
        self.model = model;
        Ok(())
    }

    /// Perturbs every quantized layer's codes in place, remembering the
    /// clean values. Layers without codes (float layers) are untouched.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault model is invalid or faults are
    /// already injected; on error the network is left untouched.
    pub fn inject<L: Layer + ?Sized>(&mut self, network: &mut L, rng: &mut Rng) -> Result<()> {
        let _span = telemetry::span(telemetry::Phase::Inject);
        if self.snapshot.is_some() {
            return Err(NnError::Config(
                "faults already injected; call restore() before injecting again".into(),
            ));
        }
        self.model.validate()?;
        let model = self.model;
        let mut snapshot: Vec<Vec<i8>> = Vec::new();
        // One independent child stream per quantized parameter, forked in
        // visit order, so the realization is schedule-independent.
        network.visit_codes(&mut |view| {
            snapshot.push(view.codes.to_vec());
            let mut stream = rng.fork(snapshot.len() as u64 - 1);
            perturb_codes(view.codes, view.bits, view.rows, model, &mut stream);
        });
        self.snapshot = Some(snapshot);
        Ok(())
    }

    /// Restores the clean codes captured by the last
    /// [`CodeFaultInjector::inject`].
    ///
    /// # Errors
    ///
    /// Returns an error when no snapshot is available or the network's
    /// quantized-parameter count changed in between.
    pub fn restore<L: Layer + ?Sized>(&mut self, network: &mut L) -> Result<()> {
        let _span = telemetry::span(telemetry::Phase::Inject);
        let snapshot = self
            .snapshot
            .take()
            .ok_or_else(|| NnError::Config("restore() called without a prior inject()".into()))?;
        let mut idx = 0usize;
        let mut mismatch = false;
        network.visit_codes(&mut |view| {
            match snapshot.get(idx) {
                Some(clean) if clean.len() == view.codes.len() => {
                    view.codes.copy_from_slice(clean);
                }
                _ => mismatch = true,
            }
            idx += 1;
        });
        if mismatch || idx != snapshot.len() {
            return Err(NnError::Config(
                "quantized parameters changed between inject() and restore()".into(),
            ));
        }
        Ok(())
    }

    /// Whether faulty codes are currently outstanding.
    pub fn is_injected(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Materializes one code-domain fault realization per entry of `rngs`
    /// into the network's stacked batched code buffers — the code-domain
    /// counterpart of [`WeightFaultInjector::realize_batch`], with the same
    /// bit-identity guarantee: realization `b` of quantized parameter `i`
    /// uses the stream `rngs[b].fork(i)` in `visit_codes` order, exactly as
    /// [`CodeFaultInjector::inject`] would on chip instance `b`.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault model is invalid or a staged buffer
    /// does not match the batch size.
    pub fn realize_batch<L: Layer + ?Sized>(
        &self,
        network: &mut L,
        rngs: &mut [Rng],
    ) -> Result<()> {
        let _span = telemetry::span(telemetry::Phase::Inject);
        self.model.validate()?;
        let model = self.model;
        let batch = rngs.len();
        let mut result: Result<()> = Ok(());
        network.visit_batched_codes(&mut |view| {
            if result.is_err() {
                return;
            }
            if view.stacked.batch() != batch || view.stacked.numel() != view.clean.len() {
                result = Err(NnError::Config(format!(
                    "staged batch code buffer is {}x{} codes, expected {}x{}",
                    view.stacked.batch(),
                    view.stacked.numel(),
                    batch,
                    view.clean.len()
                )));
                return;
            }
            for (b, parent) in rngs.iter_mut().enumerate() {
                let mut stream = parent.fork(view.index as u64);
                let slot = view.stacked.realization_mut(b);
                slot.copy_from_slice(view.clean);
                perturb_codes(slot, view.bits, view.rows, model, &mut stream);
            }
        });
        result
    }

    /// Materializes one code-domain fault realization into the network's
    /// plan-owned faulty code buffers, reporting touched row blocks — the
    /// code-domain counterpart of [`WeightFaultInjector::realize_plan`],
    /// with the same bit-identity guarantee against
    /// [`CodeFaultInjector::inject`].
    ///
    /// In the code domain every dense model is diffed against the clean
    /// codes (rounding frequently leaves codes unchanged even under dense
    /// noise), so only rows with actually-changed codes trigger a panel
    /// re-pack; line defects additionally record their exact fired cells so
    /// the plan scatters them straight into the packed panels.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault model is invalid.
    pub fn realize_plan<L: Layer + ?Sized>(&self, network: &mut L, rng: &mut Rng) -> Result<()> {
        let _span = telemetry::span(telemetry::Phase::Inject);
        self.model.validate()?;
        let model = self.model;
        let mut result: Result<()> = Ok(());
        network.visit_plan_codes(&mut |mut view| {
            if result.is_err() {
                return;
            }
            if view.faulty.len() != view.clean.len() {
                result = Err(NnError::Config(format!(
                    "plan staged {} faulty codes for a parameter of {} (was the plan \
                     compiled batched? use realize_plan_batch)",
                    view.faulty.len(),
                    view.clean.len()
                )));
                return;
            }
            let rows = view.dirty.rows();
            let mut stream = rng.fork(view.index as u64);
            realize_one_codes(&mut view, model, 0, rows, &mut stream);
        });
        result
    }

    /// Materializes one code-domain fault realization **per entry of `rngs`**
    /// into a batched plan's stacked faulty code buffers, reporting
    /// per-realization dirty rows — the code-domain counterpart of
    /// [`WeightFaultInjector::realize_plan_batch`], with the same
    /// bit-identity guarantee against [`CodeFaultInjector::inject`]:
    /// realization `b` of quantized parameter `i` uses the stream
    /// `rngs[b].fork(i)` in `visit_codes` order.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault model is invalid, `rngs` is empty, or
    /// a staged buffer does not match the batch size.
    pub fn realize_plan_batch<L: Layer + ?Sized>(
        &self,
        network: &mut L,
        rngs: &mut [Rng],
    ) -> Result<()> {
        let _span = telemetry::span(telemetry::Phase::Inject);
        self.model.validate()?;
        let model = self.model;
        let batch = rngs.len();
        if batch == 0 {
            return Err(NnError::Config(
                "realize_plan_batch needs at least one RNG stream".into(),
            ));
        }
        let mut result: Result<()> = Ok(());
        network.visit_plan_codes(&mut |mut view| {
            if result.is_err() {
                return;
            }
            let numel = view.clean.len();
            if view.faulty.len() != batch * numel || !view.dirty.rows().is_multiple_of(batch) {
                result = Err(NnError::Config(format!(
                    "plan staged {} faulty codes / {} dirty rows for a parameter of {} codes, \
                     expected batch {batch}",
                    view.faulty.len(),
                    view.dirty.rows(),
                    numel
                )));
                return;
            }
            let rows = view.dirty.rows() / batch;
            for (b, parent) in rngs.iter_mut().enumerate() {
                let mut stream = parent.fork(view.index as u64);
                realize_one_codes(&mut view, model, b, rows, &mut stream);
            }
        });
        result
    }
}

/// Materializes realization `b` of one quantized parameter's codes into its
/// slice of the plan-owned faulty buffer — the code-domain counterpart of
/// [`realize_one_f32`]. Line defects take the sparse packed-domain path
/// (revert previous cells, fire whole tile lines, record the exact cell
/// list for the plan's [`QPackedB::write_cell`] scatter); every other model
/// realizes densely through [`perturb_codes`] and is diffed row by row.
/// Both routes draw exactly the variates of [`CodeFaultInjector::inject`],
/// in the same order.
///
/// [`QPackedB::write_cell`]: invnorm_tensor::QPackedB::write_cell
fn realize_one_codes(
    view: &mut PlanCodeView<'_>,
    model: FaultModel,
    b: usize,
    rows: usize,
    stream: &mut Rng,
) {
    let numel = view.clean.len();
    let base = b * rows;
    let faulty_b = &mut view.faulty[b * numel..][..numel];
    if let FaultModel::LineDefect {
        orientation,
        rate,
        tile,
    } = model
    {
        if rate > 0.0 && rows > 0 && numel > 0 {
            let clean = view.clean;
            match view.cells.faulty_cells(b) {
                Some(cells) => {
                    for &i in cells {
                        faulty_b[i as usize] = clean[i as usize];
                    }
                }
                None => faulty_b.copy_from_slice(clean),
            }
            view.cells.reset_faulty(b);
            let cols = numel / rows;
            // Same stuck-level convention as the dense code arm: a failed
            // line saturates at ±qmax, low on `pick_lo`.
            let qmax = (((1i32 << (view.bits - 1)) - 1).min(127)) as i8;
            let (dirty, cells) = (&mut *view.dirty, &mut *view.cells);
            for_each_fired_line(
                rows,
                cols,
                orientation,
                rate,
                tile,
                stream,
                |rr, cc, pick_lo| {
                    let level = if pick_lo { -qmax } else { qmax };
                    for r in rr {
                        dirty.mark(base + r);
                        for c in cc.clone() {
                            let idx = r * cols + c;
                            faulty_b[idx] = level;
                            cells.push_faulty(b, idx);
                        }
                    }
                },
            );
            cells.mark_pending(b);
            return;
        }
    }
    faulty_b.copy_from_slice(view.clean);
    perturb_codes(faulty_b, view.bits, rows, model, stream);
    view.cells.invalidate_faulty(b);
    diff_rows(
        view.clean,
        faulty_b,
        view.dirty,
        base,
        rows,
        |a: i8, b: i8| a != b,
    );
}

/// Applies a fault model to one slice of `bits`-bit codes, in place.
/// Infallible for validated models; [`FaultModel::BitFlip`]'s `bits` field is
/// ignored in favour of the layer's actual width. `rows` is the leading
/// (output) dimension of the code matrix — the axis the structured tile
/// topologies map crossbar lines onto; element-i.i.d. models ignore it.
fn perturb_codes(codes: &mut [i8], bits: u8, rows: usize, model: FaultModel, rng: &mut Rng) {
    let qmax = ((1i32 << (bits - 1)) - 1).min(127);
    let clamp = |v: i32| v.clamp(-qmax, qmax) as i8;
    let cols = codes.len().checked_div(rows).unwrap_or(0);
    match model {
        FaultModel::None => {}
        FaultModel::AdditiveVariation { sigma } => {
            if sigma > 0.0 {
                for c in codes {
                    let delta = rng.normal(0.0, sigma * qmax as f32).round() as i32;
                    *c = clamp(i32::from(*c) + delta);
                }
            }
        }
        FaultModel::MultiplicativeVariation { sigma } => {
            if sigma > 0.0 {
                for c in codes {
                    let factor = 1.0 + rng.normal(0.0, sigma);
                    *c = clamp((f32::from(*c) * factor).round() as i32);
                }
            }
        }
        FaultModel::UniformNoise { strength } => {
            if strength > 0.0 {
                let span = strength * qmax as f32;
                for c in codes {
                    let delta = rng.uniform_range(-span, span).round() as i32;
                    *c = clamp(i32::from(*c) + delta);
                }
            }
        }
        FaultModel::BitFlip { rate, .. } => {
            if rate > 0.0 {
                for c in codes {
                    *c = clamp(flip_code_bits(i32::from(*c), bits, rate, rng));
                }
            }
        }
        FaultModel::BinaryBitFlip { rate } => {
            if rate > 0.0 {
                for c in codes {
                    if rng.bernoulli(rate) {
                        *c = clamp(-i32::from(*c));
                    }
                }
            }
        }
        FaultModel::StuckAt { rate } => {
            if rate > 0.0 {
                for c in codes {
                    if rng.bernoulli(rate) {
                        *c = if rng.bernoulli(0.5) {
                            clamp(-qmax)
                        } else {
                            clamp(qmax)
                        };
                    }
                }
            }
        }
        FaultModel::Drift { nu, time_ratio } => {
            let factor = time_ratio.powf(-nu);
            for c in codes {
                *c = clamp((f32::from(*c) * factor).round() as i32);
            }
        }
        FaultModel::LineDefect {
            orientation,
            rate,
            tile,
        } => {
            if rate > 0.0 {
                for_each_fired_line(
                    rows,
                    cols,
                    orientation,
                    rate,
                    tile,
                    rng,
                    |rr, cc, pick_lo| {
                        // A failed line saturates at the code extremes, matching
                        // the element-i.i.d. stuck-at convention above.
                        let level = if pick_lo { clamp(-qmax) } else { clamp(qmax) };
                        for r in rr {
                            for c in cc.clone() {
                                codes[r * cols + c] = level;
                            }
                        }
                    },
                );
            }
        }
        FaultModel::CorrelatedDrift {
            nu,
            time_ratio,
            sigma_nu,
            tile,
        } => {
            for_each_drift_tile(
                rows,
                cols,
                nu,
                time_ratio,
                sigma_nu,
                tile,
                rng,
                |rr, cc, factor| {
                    for r in rr {
                        for c in cc.clone() {
                            let v = &mut codes[r * cols + c];
                            *v = clamp((f32::from(*v) * factor).round() as i32);
                        }
                    }
                },
            );
        }
    }
}

/// Shared, experiment-settable handle controlling every [`ActivationNoise`]
/// layer created from it.
#[derive(Debug, Clone, Default)]
pub struct NoiseHandle {
    inner: Arc<RwLock<FaultModel>>,
}

impl NoiseHandle {
    /// Creates a handle with no active noise.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(RwLock::new(FaultModel::None)),
        }
    }

    /// Sets the fault model applied by every attached layer.
    pub fn set(&self, model: FaultModel) {
        *self.inner.write().expect("noise handle lock poisoned") = model;
    }

    /// Clears the noise (equivalent to `set(FaultModel::None)`).
    pub fn clear(&self) {
        self.set(FaultModel::None);
    }

    /// The currently configured model.
    pub fn current(&self) -> FaultModel {
        *self.inner.read().expect("noise handle lock poisoned")
    }
}

/// A pass-through layer that perturbs its input with the fault model
/// currently configured on its [`NoiseHandle`].
///
/// The backward pass treats the perturbation as additive noise independent of
/// the input (straight-through), which is sufficient because fault injection
/// only happens at inference time.
#[derive(Debug)]
pub struct ActivationNoise {
    handle: NoiseHandle,
    rng: Rng,
}

impl ActivationNoise {
    /// Creates a noise layer attached to `handle`.
    pub fn new(handle: NoiseHandle, seed: u64) -> Self {
        Self {
            handle,
            rng: Rng::seed_from(seed),
        }
    }
}

impl Layer for ActivationNoise {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let model = self.handle.current();
        if !model.is_active() {
            return Ok(input.clone());
        }
        model.perturb(input, &mut self.rng)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        Ok(grad_output.clone())
    }

    fn plan_compile(&mut self, input: &PlanShape, arenas: &mut PlanArenas) -> Result<PlanShape> {
        Ok(arenas.reserve_like(input))
    }

    fn plan_forward(
        &mut self,
        input: &PlanShape,
        output: &PlanShape,
        _ctx: PlanCtx,
        arenas: &mut PlanArenas,
    ) -> Result<()> {
        let model = self.handle.current();
        if !model.is_active() {
            // The common planned case: the injection hook is dormant, so the
            // node is a zero-alloc copy.
            let [x, y] = arenas.f.many_mut([input.slot, output.slot]);
            y.copy_from_slice(x);
            return Ok(());
        }
        // Active pre-activation noise is stochastic by design (no
        // reproducibility guarantee vs the direct path, exactly as with the
        // layer's ordinary forward); route through the tensor path.
        let x = Tensor::from_vec(arenas.f.slot(input.slot).to_vec(), &input.dims)?;
        let y = model.perturb(&x, &mut self.rng)?;
        arenas.f.slot_mut(output.slot).copy_from_slice(y.data());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ActivationNoise"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::TileShape;
    use crate::fault::LineOrientation;
    use invnorm_nn::linear::Linear;
    use invnorm_nn::norm::GroupNorm;
    use invnorm_nn::Sequential;

    fn network(rng: &mut Rng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(8, 16, rng)));
        net.push(Box::new(GroupNorm::layer_norm(16)));
        net.push(Box::new(Linear::new(16, 4, rng)));
        net
    }

    fn weights_of(net: &mut Sequential) -> Vec<f32> {
        let mut v = Vec::new();
        net.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
        v
    }

    #[test]
    fn inject_then_restore_is_identity() {
        let mut rng = Rng::seed_from(1);
        let mut net = network(&mut rng);
        let clean = weights_of(&mut net);
        let mut injector =
            WeightFaultInjector::new(FaultModel::AdditiveVariation { sigma: 0.5 }).unwrap();
        injector.inject(&mut net, &mut rng).unwrap();
        assert!(injector.is_injected());
        let faulty = weights_of(&mut net);
        assert_ne!(clean, faulty);
        injector.restore(&mut net).unwrap();
        assert!(!injector.is_injected());
        assert_eq!(clean, weights_of(&mut net));
    }

    #[test]
    fn rank1_params_untouched_by_default() {
        let mut rng = Rng::seed_from(2);
        let mut net = network(&mut rng);
        // Collect rank-1 params (biases, norm affine) before injection.
        let mut rank1_before = Vec::new();
        net.visit_params(&mut |p| {
            if p.value.rank() < 2 {
                rank1_before.extend_from_slice(p.value.data());
            }
        });
        let mut injector =
            WeightFaultInjector::new(FaultModel::MultiplicativeVariation { sigma: 0.5 }).unwrap();
        injector.inject(&mut net, &mut rng).unwrap();
        let mut rank1_after = Vec::new();
        net.visit_params(&mut |p| {
            if p.value.rank() < 2 {
                rank1_after.extend_from_slice(p.value.data());
            }
        });
        assert_eq!(rank1_before, rank1_after);
        injector.restore(&mut net).unwrap();

        // With including_vectors the rank-1 params are perturbed too.
        let mut injector = WeightFaultInjector::new(FaultModel::AdditiveVariation { sigma: 0.5 })
            .unwrap()
            .including_vectors();
        injector.inject(&mut net, &mut rng).unwrap();
        let mut rank1_now = Vec::new();
        net.visit_params(&mut |p| {
            if p.value.rank() < 2 {
                rank1_now.extend_from_slice(p.value.data());
            }
        });
        assert_ne!(rank1_before, rank1_now);
        injector.restore(&mut net).unwrap();
    }

    #[test]
    fn double_inject_and_bare_restore_error() {
        let mut rng = Rng::seed_from(3);
        let mut net = network(&mut rng);
        let mut injector =
            WeightFaultInjector::new(FaultModel::AdditiveVariation { sigma: 0.1 }).unwrap();
        assert!(injector.restore(&mut net).is_err());
        injector.inject(&mut net, &mut rng).unwrap();
        assert!(injector.inject(&mut net, &mut rng).is_err());
        assert!(injector
            .set_model(FaultModel::BitFlip { rate: 0.1, bits: 8 })
            .is_err());
        injector.restore(&mut net).unwrap();
        assert!(injector
            .set_model(FaultModel::BitFlip { rate: 0.1, bits: 8 })
            .is_ok());
        assert!(matches!(injector.model(), FaultModel::BitFlip { .. }));
    }

    #[test]
    fn injection_is_deterministic_for_seed() {
        // Large enough to cross the parallel-injection threshold on
        // multi-core machines; per-parameter forked streams must make the
        // realization identical either way.
        let mut build_rng = Rng::seed_from(20);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(300, 300, &mut build_rng)));
        net.push(Box::new(Linear::new(300, 10, &mut build_rng)));
        let realize = |net: &mut Sequential| {
            let mut rng = Rng::seed_from(777);
            let mut injector =
                WeightFaultInjector::new(FaultModel::AdditiveVariation { sigma: 0.2 }).unwrap();
            injector.inject(net, &mut rng).unwrap();
            let faulty = weights_of(net);
            injector.restore(net).unwrap();
            faulty
        };
        let first = realize(&mut net);
        let second = realize(&mut net);
        assert_eq!(first, second, "same seed must give the same realization");
    }

    #[test]
    fn realize_batch_matches_sequential_injection_per_instance() {
        // Realization b of the batch must equal what `inject` with the same
        // chip-instance RNG would have programmed — including across a
        // rank-1-parameter layer that shifts the global parameter indices.
        let mut build = Rng::seed_from(40);
        let mut net = network(&mut build);
        let batch = 3usize;
        let fault = FaultModel::AdditiveVariation { sigma: 0.3 };
        // Sequential realizations.
        let mut expected: Vec<Vec<f32>> = Vec::new();
        for b in 0..batch {
            let mut rng = Rng::seed_from(1000 + b as u64);
            let mut injector = WeightFaultInjector::new(fault).unwrap();
            injector.inject(&mut net, &mut rng).unwrap();
            let mut faulty = Vec::new();
            net.visit_params(&mut |p| {
                if p.value.rank() >= 2 {
                    faulty.extend_from_slice(p.value.data());
                }
            });
            injector.restore(&mut net).unwrap();
            expected.push(faulty);
        }
        // Batched realizations from the same per-instance streams.
        net.begin_batched(batch).unwrap();
        let mut rngs: Vec<Rng> = (0..batch)
            .map(|b| Rng::seed_from(1000 + b as u64))
            .collect();
        WeightFaultInjector::new(fault)
            .unwrap()
            .realize_batch(&mut net, &mut rngs)
            .unwrap();
        let mut got: Vec<Vec<f32>> = vec![Vec::new(); batch];
        net.visit_batched(&mut |view| {
            for (b, dst) in got.iter_mut().enumerate() {
                dst.extend_from_slice(view.stacked.realization(b));
            }
        });
        net.end_batched();
        for b in 0..batch {
            let identical = expected[b]
                .iter()
                .zip(got[b].iter())
                .all(|(e, g)| e.to_bits() == g.to_bits());
            assert!(
                identical && expected[b].len() == got[b].len(),
                "realization {b} diverged"
            );
        }
        // including_vectors is unsupported in the batched path.
        net.begin_batched(batch).unwrap();
        let mut rngs: Vec<Rng> = (0..batch).map(|b| Rng::seed_from(b as u64)).collect();
        assert!(WeightFaultInjector::new(fault)
            .unwrap()
            .including_vectors()
            .realize_batch(&mut net, &mut rngs)
            .is_err());
        net.end_batched();
    }

    #[test]
    fn realize_plan_matches_sequential_injection_across_rank1_layers() {
        // The planned counterpart of the batched re-basing test: a rank-1
        // (norm affine) layer sits between the two Linears, shifting the
        // global parameter indices; realize_plan must fork the same streams
        // the sequential injector does.
        use invnorm_nn::plan::Plan;
        let mut build = Rng::seed_from(50);
        let mut net = network(&mut build);
        let x = Tensor::randn(&[2, 8], 0.0, 1.0, &mut Rng::seed_from(51));
        for fault in [
            FaultModel::AdditiveVariation { sigma: 0.3 },
            FaultModel::StuckAt { rate: 0.4 },
            FaultModel::BitFlip { rate: 0.1, bits: 8 },
            FaultModel::LineDefect {
                orientation: LineOrientation::Row,
                rate: 0.3,
                tile: TileShape { rows: 4, cols: 4 },
            },
            FaultModel::CorrelatedDrift {
                nu: 0.1,
                time_ratio: 100.0,
                sigma_nu: 0.3,
                tile: TileShape { rows: 4, cols: 4 },
            },
        ] {
            // Sequential realization of chip instance 7.
            let mut rng = Rng::seed_from(7000);
            let mut injector = WeightFaultInjector::new(fault).unwrap();
            injector.inject(&mut net, &mut rng).unwrap();
            let mut expected = Vec::new();
            net.visit_params(&mut |p| {
                if p.value.rank() >= 2 {
                    expected.extend_from_slice(p.value.data());
                }
            });
            injector.restore(&mut net).unwrap();
            // Planned realization from the same stream.
            let _plan = Plan::compile(&mut net, &x).unwrap();
            let mut rng = Rng::seed_from(7000);
            WeightFaultInjector::new(fault)
                .unwrap()
                .realize_plan(&mut net, &mut rng)
                .unwrap();
            let mut got = Vec::new();
            net.visit_plan_params(&mut |view| got.extend_from_slice(view.faulty));
            net.plan_end();
            let identical = expected
                .iter()
                .zip(got.iter())
                .all(|(e, g)| e.to_bits() == g.to_bits());
            assert!(
                identical && expected.len() == got.len(),
                "{fault:?} planned realization diverged from sequential"
            );
        }
    }

    #[test]
    fn realize_plan_batch_matches_sequential_injection_per_instance() {
        // Realization b of the stacked batch must equal what `inject` with
        // the same chip-instance RNG would have programmed — including
        // across the rank-1 norm layer that shifts global parameter indices.
        use invnorm_nn::plan::Plan;
        let mut build = Rng::seed_from(60);
        let mut net = network(&mut build);
        let x = Tensor::randn(&[2, 8], 0.0, 1.0, &mut Rng::seed_from(61));
        let batch = 3usize;
        for fault in [
            FaultModel::AdditiveVariation { sigma: 0.3 },
            FaultModel::StuckAt { rate: 0.4 },
            FaultModel::StuckAt { rate: 1.0 },
            FaultModel::UniformNoise { strength: 0.2 },
            FaultModel::LineDefect {
                orientation: LineOrientation::Row,
                rate: 0.5,
                tile: TileShape { rows: 2, cols: 3 },
            },
            FaultModel::LineDefect {
                orientation: LineOrientation::Col,
                rate: 0.5,
                tile: TileShape { rows: 3, cols: 2 },
            },
            FaultModel::CorrelatedDrift {
                nu: 0.1,
                time_ratio: 100.0,
                sigma_nu: 0.3,
                tile: TileShape { rows: 4, cols: 4 },
            },
        ] {
            let mut expected: Vec<Vec<f32>> = Vec::new();
            for b in 0..batch {
                let mut rng = Rng::seed_from(8000 + b as u64);
                let mut injector = WeightFaultInjector::new(fault).unwrap();
                injector.inject(&mut net, &mut rng).unwrap();
                let mut faulty = Vec::new();
                net.visit_params(&mut |p| {
                    if p.value.rank() >= 2 {
                        faulty.extend_from_slice(p.value.data());
                    }
                });
                injector.restore(&mut net).unwrap();
                expected.push(faulty);
            }
            let _plan = Plan::compile_batched(&mut net, &x, batch).unwrap();
            // Two realization rounds (different streams first) so the sparse
            // stuck-at path exercises its revert-previous-cells bookkeeping.
            for base_seed in [8100u64, 8000] {
                let mut rngs: Vec<Rng> = (0..batch)
                    .map(|b| Rng::seed_from(base_seed + b as u64))
                    .collect();
                WeightFaultInjector::new(fault)
                    .unwrap()
                    .realize_plan_batch(&mut net, &mut rngs)
                    .unwrap();
            }
            let mut got: Vec<Vec<f32>> = vec![Vec::new(); batch];
            net.visit_plan_params(&mut |view| {
                let numel = view.clean.numel();
                for (b, dst) in got.iter_mut().enumerate() {
                    dst.extend_from_slice(&view.faulty[b * numel..][..numel]);
                }
            });
            net.plan_end();
            for b in 0..batch {
                let identical = expected[b]
                    .iter()
                    .zip(got[b].iter())
                    .all(|(e, g)| e.to_bits() == g.to_bits());
                assert!(
                    identical && expected[b].len() == got[b].len(),
                    "{fault:?} stacked realization {b} diverged"
                );
            }
        }
        // including_vectors stays unsupported on the planned paths.
        let _plan = Plan::compile_batched(&mut net, &x, batch).unwrap();
        let mut rngs: Vec<Rng> = (0..batch).map(|b| Rng::seed_from(b as u64)).collect();
        assert!(WeightFaultInjector::new(FaultModel::StuckAt { rate: 0.1 })
            .unwrap()
            .including_vectors()
            .realize_plan_batch(&mut net, &mut rngs)
            .is_err());
        // Batch mismatch between the plan and the stream count is loud —
        // including on the drift fast path, which skips materialization but
        // not validation.
        let mut rngs: Vec<Rng> = (0..batch + 1).map(|b| Rng::seed_from(b as u64)).collect();
        assert!(WeightFaultInjector::new(FaultModel::StuckAt { rate: 0.1 })
            .unwrap()
            .realize_plan_batch(&mut net, &mut rngs)
            .is_err());
        assert!(WeightFaultInjector::new(FaultModel::Drift {
            nu: 0.05,
            time_ratio: 100.0
        })
        .unwrap()
        .realize_plan_batch(&mut net, &mut rngs)
        .is_err());
        net.plan_end();
    }

    #[test]
    fn code_realize_plan_batch_matches_sequential_code_injection() {
        use invnorm_nn::plan::Plan;
        let mut build = Rng::seed_from(70);
        let mut net = quantized_network(&mut build);
        let x = Tensor::randn(&[2, 8], 0.0, 1.0, &mut Rng::seed_from(71));
        let batch = 3usize;
        for fault in [
            FaultModel::BitFlip { rate: 0.1, bits: 8 },
            FaultModel::LineDefect {
                orientation: LineOrientation::Row,
                rate: 0.5,
                tile: TileShape { rows: 2, cols: 3 },
            },
            FaultModel::LineDefect {
                orientation: LineOrientation::Col,
                rate: 0.5,
                tile: TileShape { rows: 3, cols: 2 },
            },
            FaultModel::CorrelatedDrift {
                nu: 0.1,
                time_ratio: 1000.0,
                sigma_nu: 0.3,
                tile: TileShape { rows: 4, cols: 4 },
            },
        ] {
            let mut expected: Vec<Vec<i8>> = Vec::new();
            for b in 0..batch {
                let mut rng = Rng::seed_from(9000 + b as u64);
                let mut injector = CodeFaultInjector::new(fault).unwrap();
                injector.inject(&mut net, &mut rng).unwrap();
                expected.push(codes_of(&mut net));
                injector.restore(&mut net).unwrap();
            }
            let _plan = Plan::compile_batched(&mut net, &x, batch).unwrap();
            // Two realization rounds (different streams first) so the sparse
            // line-defect path exercises its revert-previous-cells
            // bookkeeping.
            for base_seed in [9100u64, 9000] {
                let mut rngs: Vec<Rng> = (0..batch)
                    .map(|b| Rng::seed_from(base_seed + b as u64))
                    .collect();
                CodeFaultInjector::new(fault)
                    .unwrap()
                    .realize_plan_batch(&mut net, &mut rngs)
                    .unwrap();
            }
            let mut got: Vec<Vec<i8>> = vec![Vec::new(); batch];
            net.visit_plan_codes(&mut |view| {
                let numel = view.clean.len();
                for (b, dst) in got.iter_mut().enumerate() {
                    dst.extend_from_slice(&view.faulty[b * numel..][..numel]);
                }
            });
            net.plan_end();
            for b in 0..batch {
                assert_eq!(
                    expected[b], got[b],
                    "{fault:?} stacked code realization {b} diverged"
                );
            }
        }
    }

    #[test]
    fn code_realize_batch_matches_sequential_code_injection() {
        let mut build = Rng::seed_from(41);
        let mut net = quantized_network(&mut build);
        let batch = 3usize;
        for fault in [
            FaultModel::BitFlip { rate: 0.1, bits: 8 },
            FaultModel::LineDefect {
                orientation: LineOrientation::Col,
                rate: 0.5,
                tile: TileShape { rows: 3, cols: 2 },
            },
            FaultModel::CorrelatedDrift {
                nu: 0.1,
                time_ratio: 1000.0,
                sigma_nu: 0.3,
                tile: TileShape { rows: 4, cols: 4 },
            },
        ] {
            let mut expected: Vec<Vec<i8>> = Vec::new();
            for b in 0..batch {
                let mut rng = Rng::seed_from(2000 + b as u64);
                let mut injector = CodeFaultInjector::new(fault).unwrap();
                injector.inject(&mut net, &mut rng).unwrap();
                expected.push(codes_of(&mut net));
                injector.restore(&mut net).unwrap();
            }
            net.begin_batched(batch).unwrap();
            let mut rngs: Vec<Rng> = (0..batch)
                .map(|b| Rng::seed_from(2000 + b as u64))
                .collect();
            CodeFaultInjector::new(fault)
                .unwrap()
                .realize_batch(&mut net, &mut rngs)
                .unwrap();
            let mut got: Vec<Vec<i8>> = vec![Vec::new(); batch];
            net.visit_batched_codes(&mut |view| {
                for (b, dst) in got.iter_mut().enumerate() {
                    dst.extend_from_slice(view.stacked.realization(b));
                }
            });
            net.end_batched();
            for b in 0..batch {
                assert_eq!(
                    expected[b], got[b],
                    "{fault:?} code realization {b} diverged"
                );
            }
        }
    }

    #[test]
    fn invalid_model_is_rejected_at_construction() {
        assert!(WeightFaultInjector::new(FaultModel::BitFlip { rate: 2.0, bits: 8 }).is_err());
        let mut injector = WeightFaultInjector::new(FaultModel::None).unwrap();
        assert!(injector
            .set_model(FaultModel::AdditiveVariation { sigma: -1.0 })
            .is_err());
        // A rejected set_model leaves the configured model unchanged.
        assert!(matches!(injector.model(), FaultModel::None));
    }

    fn quantized_network(rng: &mut Rng) -> Sequential {
        use invnorm_nn::quantized::QuantizedLinear;
        let mut net = Sequential::new();
        net.push(Box::new(
            QuantizedLinear::from_linear(&Linear::new(8, 16, rng), 8).unwrap(),
        ));
        net.push(Box::new(
            QuantizedLinear::from_linear(&Linear::new(16, 4, rng), 8).unwrap(),
        ));
        net
    }

    fn codes_of(net: &mut Sequential) -> Vec<i8> {
        let mut v = Vec::new();
        net.visit_codes(&mut |view| v.extend_from_slice(view.codes));
        v
    }

    #[test]
    fn code_inject_then_restore_is_identity() {
        let mut rng = Rng::seed_from(30);
        let mut net = quantized_network(&mut rng);
        let clean = codes_of(&mut net);
        let mut injector =
            CodeFaultInjector::new(FaultModel::BitFlip { rate: 0.1, bits: 8 }).unwrap();
        injector.inject(&mut net, &mut rng).unwrap();
        assert!(injector.is_injected());
        let faulty = codes_of(&mut net);
        assert_ne!(clean, faulty);
        // Faulty codes stay inside the symmetric range (never -128, which
        // the i8 GEMM's sign-split microkernel excludes).
        assert!(faulty.iter().all(|&c| c != i8::MIN));
        injector.restore(&mut net).unwrap();
        assert!(!injector.is_injected());
        assert_eq!(clean, codes_of(&mut net));
    }

    #[test]
    fn code_injection_is_deterministic_for_seed() {
        let mut build = Rng::seed_from(31);
        let mut net = quantized_network(&mut build);
        let realize = |net: &mut Sequential| {
            let mut rng = Rng::seed_from(555);
            let mut injector =
                CodeFaultInjector::new(FaultModel::AdditiveVariation { sigma: 0.05 }).unwrap();
            injector.inject(net, &mut rng).unwrap();
            let faulty = codes_of(net);
            injector.restore(net).unwrap();
            faulty
        };
        assert_eq!(realize(&mut net), realize(&mut net));
    }

    #[test]
    fn every_code_fault_model_perturbs_and_stays_in_range() {
        let mut rng = Rng::seed_from(32);
        let mut net = quantized_network(&mut rng);
        let clean = codes_of(&mut net);
        let models = [
            FaultModel::AdditiveVariation { sigma: 0.2 },
            FaultModel::MultiplicativeVariation { sigma: 0.3 },
            FaultModel::UniformNoise { strength: 0.2 },
            FaultModel::BitFlip { rate: 0.2, bits: 8 },
            FaultModel::BinaryBitFlip { rate: 0.5 },
            FaultModel::StuckAt { rate: 0.4 },
            FaultModel::Drift {
                nu: 0.1,
                time_ratio: 1000.0,
            },
            FaultModel::LineDefect {
                orientation: LineOrientation::Row,
                rate: 0.5,
                tile: TileShape { rows: 3, cols: 3 },
            },
            FaultModel::CorrelatedDrift {
                nu: 0.1,
                time_ratio: 1000.0,
                sigma_nu: 0.3,
                tile: TileShape { rows: 4, cols: 4 },
            },
        ];
        for model in models {
            let mut injector = CodeFaultInjector::new(model).unwrap();
            injector.inject(&mut net, &mut rng).unwrap();
            let faulty = codes_of(&mut net);
            assert_ne!(clean, faulty, "{model:?} must perturb codes");
            assert!(
                faulty.iter().all(|&c| c != i8::MIN),
                "{model:?} escaped the symmetric code range"
            );
            injector.restore(&mut net).unwrap();
            assert_eq!(clean, codes_of(&mut net), "{model:?} restore failed");
        }
    }

    #[test]
    fn code_injector_guards_mirror_weight_injector() {
        let mut rng = Rng::seed_from(33);
        let mut net = quantized_network(&mut rng);
        let mut injector =
            CodeFaultInjector::new(FaultModel::AdditiveVariation { sigma: 0.1 }).unwrap();
        assert!(injector.restore(&mut net).is_err());
        injector.inject(&mut net, &mut rng).unwrap();
        assert!(injector.inject(&mut net, &mut rng).is_err());
        assert!(injector.set_model(FaultModel::None).is_err());
        injector.restore(&mut net).unwrap();
        assert!(injector.set_model(FaultModel::None).is_ok());
        // Invalid models are rejected at construction and at set_model,
        // leaving the configured model unchanged.
        assert!(CodeFaultInjector::new(FaultModel::BitFlip { rate: 2.0, bits: 8 }).is_err());
        assert!(injector
            .set_model(FaultModel::BitFlip { rate: 2.0, bits: 8 })
            .is_err());
        assert!(matches!(injector.model(), FaultModel::None));
    }

    #[test]
    fn code_injector_is_a_noop_on_float_networks() {
        let mut rng = Rng::seed_from(34);
        let mut net = network(&mut rng); // all-float layers
        let before = weights_of(&mut net);
        let mut injector =
            CodeFaultInjector::new(FaultModel::BitFlip { rate: 0.5, bits: 8 }).unwrap();
        injector.inject(&mut net, &mut rng).unwrap();
        assert_eq!(before, weights_of(&mut net));
        injector.restore(&mut net).unwrap();
    }

    #[test]
    fn code_faults_change_the_quantized_forward_pass() {
        let mut rng = Rng::seed_from(35);
        let mut net = quantized_network(&mut rng);
        let x = Tensor::randn(&[4, 8], 0.0, 1.0, &mut rng);
        let clean = net.forward(&x, Mode::Eval).unwrap();
        let mut injector = CodeFaultInjector::new(FaultModel::StuckAt { rate: 0.3 }).unwrap();
        injector.inject(&mut net, &mut rng).unwrap();
        let faulty = net.forward(&x, Mode::Eval).unwrap();
        assert!(!clean.approx_eq(&faulty, 1e-6));
        injector.restore(&mut net).unwrap();
        let restored = net.forward(&x, Mode::Eval).unwrap();
        assert!(clean.approx_eq(&restored, 0.0));
    }

    #[test]
    fn noise_handle_controls_activation_noise() {
        let handle = NoiseHandle::new();
        let mut layer = ActivationNoise::new(handle.clone(), 5);
        let mut rng = Rng::seed_from(6);
        let x = Tensor::randn(&[4, 8], 0.0, 1.0, &mut rng);
        // No noise configured: identity.
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert!(y.approx_eq(&x, 0.0));
        assert!(!handle.current().is_active());
        // Configure additive noise through the shared handle.
        handle.set(FaultModel::AdditiveVariation { sigma: 0.5 });
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert!(!y.approx_eq(&x, 1e-6));
        // Backward is pass-through.
        let g = layer.backward(&Tensor::ones(x.dims())).unwrap();
        assert!(g.approx_eq(&Tensor::ones(x.dims()), 0.0));
        // Clearing restores identity behaviour.
        handle.clear();
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert!(y.approx_eq(&x, 0.0));
    }

    #[test]
    fn cloned_handles_share_state() {
        let handle = NoiseHandle::new();
        let clone = handle.clone();
        handle.set(FaultModel::UniformNoise { strength: 0.3 });
        assert!(clone.current().is_active());
        assert_eq!(clone.current(), handle.current());
    }

    #[test]
    fn activation_noise_has_no_params() {
        let mut layer = ActivationNoise::new(NoiseHandle::new(), 7);
        assert_eq!(layer.param_count(), 0);
        assert_eq!(layer.name(), "ActivationNoise");
    }
}
