//! The fault-model catalogue: how NVM non-idealities perturb a tensor of
//! programmed weights (or pre-activation values).
//!
//! Models follow the abstractions used by the paper (Sec. IV-A2) and the
//! works it cites:
//!
//! * **Conductance variation** (manufacturing + thermal): additive Gaussian
//!   noise `w + N(0, σ)` and multiplicative Gaussian noise `w · (1 + N(0, σ))`.
//! * **Programming / retention faults**: random bit flips of the quantized
//!   integer representation (or sign flips for binary weights).
//! * **Uniform noise**: additive `U(-s, s)`, the extra experiment the paper
//!   runs on the LSTM model.
//! * **Stuck-at faults**: a fraction of cells stuck at the minimum or maximum
//!   programmable value.
//! * **Retention drift**: magnitudes decay by a factor `(t/t₀)^(-ν)`, the
//!   standard phase-change-memory drift law.
//! * **Structured topologies**: whole word/bit lines of a crossbar tile stuck
//!   ([`FaultModel::LineDefect`]) and per-tile drift-exponent variation
//!   ([`FaultModel::CorrelatedDrift`]), both mapped through the
//!   [`crate::crossbar::CrossbarConfig`] tile geometry instead of striking
//!   cells i.i.d.
//!
//! Orthogonal to *what* strikes is *when* it is drawn: a [`FaultSpec`] pairs
//! a model with a [`FaultLifetime`] — `Static` programming-time defects are
//! realized once per simulated chip instance, `PerInference` read noise is
//! re-drawn before every forward pass.

use crate::crossbar::{CrossbarConfig, TileShape};
use crate::Result;
use invnorm_nn::NnError;
use invnorm_quant::binary::BinaryTensor;
use invnorm_quant::uniform::QuantizedTensor;
use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

pub use invnorm_nn::plan::FaultLifetime;

/// Which crossbar lines a [`FaultModel::LineDefect`] takes out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineOrientation {
    /// Word lines: one defect sticks a whole weight-matrix row segment
    /// within a tile (`1 × tile.cols` cells).
    Row,
    /// Bit lines: one defect sticks a whole weight-matrix column segment
    /// within a tile (`tile.rows × 1` cells).
    Col,
}

/// A complete fault specification: *what* perturbation strikes
/// ([`FaultModel`]) and *when* its realization is drawn ([`FaultLifetime`]).
///
/// `FaultSpec` converts from a bare [`FaultModel`] (static lifetime), so
/// engine entry points accepting `impl Into<FaultSpec>` keep working with
/// plain models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The perturbation model.
    pub model: FaultModel,
    /// When realizations are drawn relative to the inference stream.
    pub lifetime: FaultLifetime,
}

impl FaultSpec {
    /// A spec with an explicit lifetime.
    pub fn new(model: FaultModel, lifetime: FaultLifetime) -> Self {
        Self { model, lifetime }
    }

    /// Convenience: `model` as transient read noise, re-drawn before every
    /// forward pass.
    pub fn per_inference(model: FaultModel) -> Self {
        Self::new(model, FaultLifetime::PerInference)
    }
}

impl From<FaultModel> for FaultSpec {
    fn from(model: FaultModel) -> Self {
        Self {
            model,
            lifetime: FaultLifetime::Static,
        }
    }
}

/// A parameterized NVM non-ideality model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum FaultModel {
    /// Additive conductance variation: `w ← w + N(0, σ)`.
    AdditiveVariation {
        /// Standard deviation of the additive noise (relative to the weight
        /// scale of the layer; the paper sweeps 0–1).
        sigma: f32,
    },
    /// Multiplicative conductance variation: `w ← w · (1 + N(0, σ))`.
    MultiplicativeVariation {
        /// Standard deviation of the relative perturbation.
        sigma: f32,
    },
    /// Additive uniform noise: `w ← w + U(-strength, strength)`.
    UniformNoise {
        /// Half-width of the uniform perturbation.
        strength: f32,
    },
    /// Random bit flips in a `bits`-bit quantized representation. Each bit of
    /// each parameter flips independently with probability `rate`.
    BitFlip {
        /// Per-bit flip probability (the paper sweeps 0–30 %).
        rate: f32,
        /// Bit width of the quantized representation the flips act on.
        bits: u8,
    },
    /// Sign flips of binary (±α) weights, each with probability `rate`.
    BinaryBitFlip {
        /// Per-weight flip probability.
        rate: f32,
    },
    /// A fraction `rate` of cells become stuck at the layer's minimum or
    /// maximum weight value (chosen with equal probability).
    StuckAt {
        /// Fraction of affected cells.
        rate: f32,
    },
    /// Retention drift: `w ← w · (t/t₀)^(-ν)` — magnitudes shrink over time.
    Drift {
        /// Drift exponent ν (≈ 0.01–0.1 for PCM).
        nu: f32,
        /// Normalized elapsed time `t/t₀ ≥ 1`.
        time_ratio: f32,
    },
    /// Whole crossbar lines stuck: each word/bit-line segment of each tile
    /// fails independently with probability `rate`, sticking every cell on
    /// the line at the layer's minimum or maximum weight value (chosen with
    /// equal probability per line, matching [`FaultModel::StuckAt`]'s level
    /// convention). Tile geometry comes from
    /// [`crate::crossbar::CrossbarConfig`] via [`FaultModel::line_defect`].
    LineDefect {
        /// Which lines fail (word lines stick row segments, bit lines stick
        /// column segments).
        orientation: LineOrientation,
        /// Per-line failure probability.
        rate: f32,
        /// Physical tile extents the matrix is partitioned into.
        tile: TileShape,
    },
    /// Spatially correlated retention drift: every tile draws its own drift
    /// exponent `ν_t = ν · (1 + N(0, σ_ν))` (clamped at zero) and all cells
    /// of the tile decay by the shared factor `(t/t₀)^(-ν_t)` — tiles age
    /// coherently, unlike the i.i.d. [`FaultModel::Drift`] abstraction whose
    /// factor is global.
    CorrelatedDrift {
        /// Nominal drift exponent ν.
        nu: f32,
        /// Normalized elapsed time `t/t₀ ≥ 1`.
        time_ratio: f32,
        /// Relative per-tile variation of the drift exponent.
        sigma_nu: f32,
        /// Physical tile extents the matrix is partitioned into.
        tile: TileShape,
    },
    /// No fault (baseline). Useful to keep sweep code uniform.
    #[default]
    None,
}

impl FaultModel {
    /// A [`FaultModel::LineDefect`] whose tile geometry is taken from a
    /// crossbar configuration.
    pub fn line_defect(orientation: LineOrientation, rate: f32, config: &CrossbarConfig) -> Self {
        FaultModel::LineDefect {
            orientation,
            rate,
            tile: config.tile(),
        }
    }

    /// A [`FaultModel::CorrelatedDrift`] whose tile geometry is taken from a
    /// crossbar configuration.
    pub fn correlated_drift(
        nu: f32,
        time_ratio: f32,
        sigma_nu: f32,
        config: &CrossbarConfig,
    ) -> Self {
        FaultModel::CorrelatedDrift {
            nu,
            time_ratio,
            sigma_nu,
            tile: config.tile(),
        }
    }

    /// A short human-readable label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            FaultModel::AdditiveVariation { sigma } => format!("additive σ={sigma}"),
            FaultModel::MultiplicativeVariation { sigma } => format!("multiplicative σ={sigma}"),
            FaultModel::UniformNoise { strength } => format!("uniform ±{strength}"),
            FaultModel::BitFlip { rate, bits } => {
                format!("bit-flip {:.1}% ({bits}-bit)", rate * 100.0)
            }
            FaultModel::BinaryBitFlip { rate } => format!("sign-flip {:.1}%", rate * 100.0),
            FaultModel::StuckAt { rate } => format!("stuck-at {:.1}%", rate * 100.0),
            FaultModel::Drift { nu, time_ratio } => format!("drift ν={nu} t/t₀={time_ratio}"),
            FaultModel::LineDefect {
                orientation,
                rate,
                tile,
            } => {
                let lines = match orientation {
                    LineOrientation::Row => "rows",
                    LineOrientation::Col => "cols",
                };
                format!(
                    "line-defect {lines} {:.1}% ({}x{} tile)",
                    rate * 100.0,
                    tile.rows,
                    tile.cols
                )
            }
            FaultModel::CorrelatedDrift {
                nu,
                time_ratio,
                sigma_nu,
                tile,
            } => format!(
                "corr-drift ν={nu}±{sigma_nu} t/t₀={time_ratio} ({}x{} tile)",
                tile.rows, tile.cols
            ),
            FaultModel::None => "fault-free".to_string(),
        }
    }

    /// Whether this model perturbs anything at all.
    pub fn is_active(&self) -> bool {
        match *self {
            FaultModel::AdditiveVariation { sigma } => sigma > 0.0,
            FaultModel::MultiplicativeVariation { sigma } => sigma > 0.0,
            FaultModel::UniformNoise { strength } => strength > 0.0,
            FaultModel::BitFlip { rate, .. } => rate > 0.0,
            FaultModel::BinaryBitFlip { rate } => rate > 0.0,
            FaultModel::StuckAt { rate } => rate > 0.0,
            FaultModel::Drift { nu, time_ratio } => nu > 0.0 && time_ratio > 1.0,
            FaultModel::LineDefect { rate, .. } => rate > 0.0,
            FaultModel::CorrelatedDrift { nu, time_ratio, .. } => nu > 0.0 && time_ratio > 1.0,
            FaultModel::None => false,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns an error for non-finite or negative magnitudes, probabilities
    /// outside `[0, 1]`, invalid bit widths, a drift time ratio below one or
    /// degenerate (zero-extent) tile geometry.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(NnError::Config(msg));
        let tile_ok = |tile: TileShape| -> Result<()> {
            if tile.rows == 0 || tile.cols == 0 {
                return Err(NnError::Config(format!(
                    "degenerate fault tile geometry {}x{}: a tile needs at least one word line and one bit line",
                    tile.rows, tile.cols
                )));
            }
            Ok(())
        };
        match *self {
            FaultModel::AdditiveVariation { sigma }
            | FaultModel::MultiplicativeVariation { sigma } => {
                if !sigma.is_finite() || sigma < 0.0 {
                    return fail(format!(
                        "variation sigma must be finite and >= 0, got {sigma}"
                    ));
                }
            }
            FaultModel::UniformNoise { strength } => {
                if !strength.is_finite() || strength < 0.0 {
                    return fail(format!(
                        "uniform noise strength must be finite and >= 0, got {strength}"
                    ));
                }
            }
            FaultModel::BitFlip { rate, bits } => {
                if !(0.0..=1.0).contains(&rate) {
                    return fail(format!("bit-flip rate must be in [0, 1], got {rate}"));
                }
                if !(2..=16).contains(&bits) {
                    return fail(format!("bit-flip bit width must be in [2, 16], got {bits}"));
                }
            }
            FaultModel::BinaryBitFlip { rate } | FaultModel::StuckAt { rate } => {
                if !(0.0..=1.0).contains(&rate) {
                    return fail(format!("fault rate must be in [0, 1], got {rate}"));
                }
            }
            FaultModel::Drift { nu, time_ratio } => {
                if !nu.is_finite() || nu < 0.0 {
                    return fail(format!("drift exponent must be finite and >= 0, got {nu}"));
                }
                if !time_ratio.is_finite() || time_ratio < 1.0 {
                    return fail(format!(
                        "drift time ratio must be finite and >= 1, got {time_ratio}"
                    ));
                }
            }
            FaultModel::LineDefect { rate, tile, .. } => {
                if !(0.0..=1.0).contains(&rate) {
                    return fail(format!("line-defect rate must be in [0, 1], got {rate}"));
                }
                tile_ok(tile)?;
            }
            FaultModel::CorrelatedDrift {
                nu,
                time_ratio,
                sigma_nu,
                tile,
            } => {
                if !nu.is_finite() || nu < 0.0 {
                    return fail(format!("drift exponent must be finite and >= 0, got {nu}"));
                }
                if !time_ratio.is_finite() || time_ratio < 1.0 {
                    return fail(format!(
                        "drift time ratio must be finite and >= 1, got {time_ratio}"
                    ));
                }
                if !sigma_nu.is_finite() || sigma_nu < 0.0 {
                    return fail(format!(
                        "drift exponent variation must be finite and >= 0, got {sigma_nu}"
                    ));
                }
                tile_ok(tile)?;
            }
            FaultModel::None => {}
        }
        Ok(())
    }

    /// When the model maps **every** weight to `w · factor` for one constant
    /// factor — retention drift, whose realization draws no randomness —
    /// returns that factor.
    ///
    /// Compiled plans exploit this to apply the realization directly to the
    /// cached packed-weight panels (packing is a permutation with zero
    /// padding, and `0 · factor == 0`, so scaling the packed clean operand is
    /// bit-identical to packing the scaled weights) instead of re-packing.
    pub fn uniform_scale(&self) -> Option<f32> {
        match *self {
            FaultModel::Drift { nu, time_ratio } if self.is_active() => Some(time_ratio.powf(-nu)),
            _ => None,
        }
    }

    /// Applies the fault model to a weight tensor, returning the perturbed
    /// tensor. The original is left untouched.
    ///
    /// Noise magnitudes for the variation models are interpreted relative to
    /// the tensor's own scale (its maximum absolute value), matching how the
    /// paper sweeps a dimensionless σ from 0 to 1 across models with very
    /// different weight magnitudes.
    ///
    /// # Errors
    ///
    /// Returns an error when the model parameters are invalid.
    pub fn perturb(&self, weights: &Tensor, rng: &mut Rng) -> Result<Tensor> {
        self.validate()?;
        if !self.is_active() {
            return Ok(weights.clone());
        }
        match *self {
            FaultModel::AdditiveVariation { sigma } => {
                let scale = weights.abs().max().max(1e-12);
                let noise = Tensor::randn(weights.dims(), 0.0, sigma * scale, rng);
                Ok(weights.add(&noise)?)
            }
            FaultModel::MultiplicativeVariation { sigma } => {
                let factor = Tensor::randn(weights.dims(), 1.0, sigma, rng);
                Ok(weights.mul(&factor)?)
            }
            FaultModel::UniformNoise { strength } => {
                let scale = weights.abs().max().max(1e-12);
                let noise =
                    Tensor::rand_uniform(weights.dims(), -strength * scale, strength * scale, rng);
                Ok(weights.add(&noise)?)
            }
            FaultModel::BitFlip { rate, bits } => {
                let mut q = QuantizedTensor::quantize(weights, bits)?;
                flip_bits(&mut q, rate, rng);
                Ok(q.dequantize())
            }
            FaultModel::BinaryBitFlip { rate } => {
                let mut b = BinaryTensor::binarize(weights);
                for s in b.signs_mut() {
                    if rng.bernoulli(rate) {
                        *s = !*s;
                    }
                }
                Ok(b.dequantize())
            }
            FaultModel::StuckAt { rate } => {
                let lo = weights.min();
                let hi = weights.max();
                let mut out = weights.clone();
                for v in out.data_mut() {
                    if rng.bernoulli(rate) {
                        *v = if rng.bernoulli(0.5) { lo } else { hi };
                    }
                }
                Ok(out)
            }
            FaultModel::Drift { nu, time_ratio } => {
                let factor = time_ratio.powf(-nu);
                Ok(weights.scale(factor))
            }
            FaultModel::LineDefect {
                orientation,
                rate,
                tile,
            } => {
                let (rows, cols) = matrix_dims(weights);
                let (lo, hi) = stuck_levels(weights.data());
                let mut out = weights.clone();
                let data = out.data_mut();
                for_each_fired_line(
                    rows,
                    cols,
                    orientation,
                    rate,
                    tile,
                    rng,
                    |rr, cc, pick_lo| {
                        let level = if pick_lo { lo } else { hi };
                        for r in rr {
                            for c in cc.clone() {
                                data[r * cols + c] = level;
                            }
                        }
                    },
                );
                Ok(out)
            }
            FaultModel::CorrelatedDrift {
                nu,
                time_ratio,
                sigma_nu,
                tile,
            } => {
                let (rows, cols) = matrix_dims(weights);
                let mut out = weights.clone();
                let data = out.data_mut();
                for_each_drift_tile(
                    rows,
                    cols,
                    nu,
                    time_ratio,
                    sigma_nu,
                    tile,
                    rng,
                    |rr, cc, factor| {
                        for r in rr {
                            for c in cc.clone() {
                                data[r * cols + c] *= factor;
                            }
                        }
                    },
                );
                Ok(out)
            }
            FaultModel::None => Ok(weights.clone()),
        }
    }

    /// Applies the fault model to a weight tensor, writing the perturbed
    /// values into a caller-provided buffer instead of allocating a fresh
    /// tensor — the zero-alloc realization step of the batched Monte-Carlo
    /// path, where B perturbed copies of each parameter land in a stacked
    /// buffer.
    ///
    /// Draws **exactly** the same random variates in the same order as
    /// [`FaultModel::perturb`], so for the same `rng` state the realization
    /// is bit-identical to the allocating path (the bit-flip models, which
    /// route through the quantizer, fall back to it internally).
    ///
    /// # Errors
    ///
    /// Returns an error when the model parameters are invalid or `dst` does
    /// not match the tensor's element count.
    pub fn perturb_into(&self, weights: &Tensor, dst: &mut [f32], rng: &mut Rng) -> Result<()> {
        self.validate()?;
        let src = weights.data();
        if dst.len() != src.len() {
            return Err(NnError::Config(format!(
                "perturb_into destination holds {} elements, parameter has {}",
                dst.len(),
                src.len()
            )));
        }
        if !self.is_active() {
            dst.copy_from_slice(src);
            return Ok(());
        }
        match *self {
            FaultModel::AdditiveVariation { sigma } => {
                // Same scale fold and per-element draw order as `perturb`.
                let scale = src
                    .iter()
                    .fold(f32::NEG_INFINITY, |m, &x| m.max(x.abs()))
                    .max(1e-12);
                let std = sigma * scale;
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s + rng.normal(0.0, std);
                }
            }
            FaultModel::MultiplicativeVariation { sigma } => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s * rng.normal(1.0, sigma);
                }
            }
            FaultModel::UniformNoise { strength } => {
                let scale = src
                    .iter()
                    .fold(f32::NEG_INFINITY, |m, &x| m.max(x.abs()))
                    .max(1e-12);
                let span = strength * scale;
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s + rng.uniform_range(-span, span);
                }
            }
            FaultModel::StuckAt { rate } => {
                let (lo, hi) = stuck_levels(src);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = if rng.bernoulli(rate) {
                        if rng.bernoulli(0.5) {
                            lo
                        } else {
                            hi
                        }
                    } else {
                        s
                    };
                }
            }
            FaultModel::Drift { nu, time_ratio } => {
                let factor = time_ratio.powf(-nu);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s * factor;
                }
            }
            FaultModel::LineDefect {
                orientation,
                rate,
                tile,
            } => {
                // Same line iteration and draw order as `perturb`, applied
                // in place over a clean copy.
                let (rows, cols) = matrix_dims(weights);
                let (lo, hi) = stuck_levels(src);
                dst.copy_from_slice(src);
                for_each_fired_line(
                    rows,
                    cols,
                    orientation,
                    rate,
                    tile,
                    rng,
                    |rr, cc, pick_lo| {
                        let level = if pick_lo { lo } else { hi };
                        for r in rr {
                            for c in cc.clone() {
                                dst[r * cols + c] = level;
                            }
                        }
                    },
                );
            }
            FaultModel::CorrelatedDrift {
                nu,
                time_ratio,
                sigma_nu,
                tile,
            } => {
                let (rows, cols) = matrix_dims(weights);
                dst.copy_from_slice(src);
                for_each_drift_tile(
                    rows,
                    cols,
                    nu,
                    time_ratio,
                    sigma_nu,
                    tile,
                    rng,
                    |rr, cc, factor| {
                        for r in rr {
                            for c in cc.clone() {
                                dst[r * cols + c] *= factor;
                            }
                        }
                    },
                );
            }
            FaultModel::BitFlip { .. } | FaultModel::BinaryBitFlip { .. } => {
                // These route through the quantizer representations; reuse
                // the allocating path verbatim so the realization stays
                // bit-identical.
                let perturbed = self.perturb(weights, rng)?;
                dst.copy_from_slice(perturbed.data());
            }
            FaultModel::None => unreachable!("inactive models handled above"),
        }
        Ok(())
    }
}

/// The two stuck-cell levels of a weight slice (its minimum and maximum
/// value) — shared by [`FaultModel::perturb_into`] and the sparse
/// packed-domain stuck-at path in [`crate::injector`] so the two realization
/// paths cannot diverge. `(+inf, -inf)` for an empty slice, which no caller
/// ever writes anywhere (there are no cells to stick).
pub(crate) fn stuck_levels(src: &[f32]) -> (f32, f32) {
    let lo = src.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    (lo, hi)
}

/// The crossbar-matrix interpretation of a parameter tensor: rank ≥ 2
/// tensors map their leading dimension to word lines and everything else to
/// bit lines (`[out, in·kh·kw]` for conv weights, exactly the row-major
/// layout the packed operands use); rank-0/1 tensors are a single column.
/// Shared by every structured-fault realization path so dense, sparse and
/// code-domain realizations partition the same geometry.
pub(crate) fn matrix_dims(t: &Tensor) -> (usize, usize) {
    if t.rank() >= 2 {
        let rows = t.dims()[0];
        let cols = t.numel().checked_div(rows).unwrap_or(0);
        (rows, cols)
    } else {
        (t.numel(), 1)
    }
}

/// The canonical line-defect iteration: partitions a `[rows, cols]` matrix
/// into `tile`-sized crossbar tiles and fires each word/bit-line segment
/// independently with probability `rate`, invoking `fired(row_range,
/// col_range, pick_lo)` for every failed line. **Every** realization path —
/// dense [`FaultModel::perturb`]/[`FaultModel::perturb_into`], the sparse
/// packed-domain injector and the code-domain injector — routes through this
/// function, so the draw order (and therefore the realization) cannot
/// diverge between paths: per line, one Bernoulli(rate) for failure, then
/// one Bernoulli(0.5) for the stuck level (low on success), matching
/// [`FaultModel::StuckAt`]'s convention.
pub(crate) fn for_each_fired_line(
    rows: usize,
    cols: usize,
    orientation: LineOrientation,
    rate: f32,
    tile: TileShape,
    rng: &mut Rng,
    mut fired: impl FnMut(std::ops::Range<usize>, std::ops::Range<usize>, bool),
) {
    if rows == 0 || cols == 0 {
        return;
    }
    match orientation {
        LineOrientation::Row => {
            for r in 0..rows {
                for c0 in (0..cols).step_by(tile.cols) {
                    if rng.bernoulli(rate) {
                        let pick_lo = rng.bernoulli(0.5);
                        fired(r..r + 1, c0..(c0 + tile.cols).min(cols), pick_lo);
                    }
                }
            }
        }
        LineOrientation::Col => {
            for r0 in (0..rows).step_by(tile.rows) {
                for c in 0..cols {
                    if rng.bernoulli(rate) {
                        let pick_lo = rng.bernoulli(0.5);
                        fired(r0..(r0 + tile.rows).min(rows), c..c + 1, pick_lo);
                    }
                }
            }
        }
    }
}

/// The canonical correlated-drift iteration: walks the `tile` partition of a
/// `[rows, cols]` matrix in row-major tile order, draws each tile's drift
/// exponent `ν_t = ν · (1 + N(0, σ_ν))` (clamped at zero — a cell cannot
/// un-age), and invokes `apply(row_range, col_range, (t/t₀)^(-ν_t))`. Shared
/// by every realization path for the same reason as
/// [`for_each_fired_line`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn for_each_drift_tile(
    rows: usize,
    cols: usize,
    nu: f32,
    time_ratio: f32,
    sigma_nu: f32,
    tile: TileShape,
    rng: &mut Rng,
    mut apply: impl FnMut(std::ops::Range<usize>, std::ops::Range<usize>, f32),
) {
    if rows == 0 || cols == 0 {
        return;
    }
    for r0 in (0..rows).step_by(tile.rows) {
        for c0 in (0..cols).step_by(tile.cols) {
            let nu_t = (nu * (1.0 + rng.normal(0.0, sigma_nu))).max(0.0);
            let factor = time_ratio.powf(-nu_t);
            apply(
                r0..(r0 + tile.rows).min(rows),
                c0..(c0 + tile.cols).min(cols),
                factor,
            );
        }
    }
}

/// Flips each bit of each quantized code independently with probability
/// `rate`, then clamps the codes back into the representable range (a flip of
/// the sign bit can otherwise escape it).
pub fn flip_bits(q: &mut QuantizedTensor, rate: f32, rng: &mut Rng) {
    let bits = q.bits();
    q.map_codes(|code| flip_code_bits(code, bits, rate, rng));
    q.clamp_codes();
}

/// Flips each of the low `bits` bits of one two's-complement code
/// independently with probability `rate`, sign-extending the result. The
/// scalar core of [`flip_bits`], shared with the code-domain injector in
/// [`crate::injector`].
pub fn flip_code_bits(code: i32, bits: u8, rate: f32, rng: &mut Rng) -> i32 {
    // Represent the signed code in two's complement over `bits` bits.
    let mask = (1i32 << bits) - 1;
    let mut raw = code & mask;
    for b in 0..bits {
        if rng.bernoulli(rate) {
            raw ^= 1 << b;
        }
    }
    // Sign-extend back.
    let sign_bit = 1i32 << (bits - 1);
    if raw & sign_bit != 0 {
        raw - (1 << bits)
    } else {
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;
    use proptest::prelude::*;

    fn sample_weights(seed: u64) -> (Tensor, Rng) {
        let mut rng = Rng::seed_from(seed);
        let w = Tensor::randn(&[256], 0.0, 0.5, &mut rng);
        (w, rng)
    }

    #[test]
    fn labels_and_activity() {
        assert!(FaultModel::None.label().contains("fault-free"));
        assert!(FaultModel::BitFlip { rate: 0.1, bits: 8 }
            .label()
            .contains("10.0%"));
        assert!(!FaultModel::None.is_active());
        assert!(!FaultModel::AdditiveVariation { sigma: 0.0 }.is_active());
        assert!(FaultModel::AdditiveVariation { sigma: 0.1 }.is_active());
        assert!(FaultModel::default() == FaultModel::None);
        let tile = TileShape { rows: 8, cols: 16 };
        let line = FaultModel::LineDefect {
            orientation: LineOrientation::Row,
            rate: 0.05,
            tile,
        };
        assert!(line.label().contains("line-defect rows"));
        assert!(line.label().contains("8x16"));
        assert!(line.is_active());
        assert!(!FaultModel::LineDefect {
            orientation: LineOrientation::Col,
            rate: 0.0,
            tile,
        }
        .is_active());
        let cd = FaultModel::CorrelatedDrift {
            nu: 0.05,
            time_ratio: 100.0,
            sigma_nu: 0.3,
            tile,
        };
        assert!(cd.label().contains("corr-drift"));
        assert!(cd.is_active());
        assert!(
            cd.uniform_scale().is_none(),
            "per-tile drift is not uniform"
        );
        assert!(!FaultModel::CorrelatedDrift {
            nu: 0.0,
            time_ratio: 100.0,
            sigma_nu: 0.3,
            tile,
        }
        .is_active());
        // Constructors pick the tile geometry up from the crossbar config.
        let config = CrossbarConfig {
            tile_rows: 4,
            tile_cols: 2,
            ..Default::default()
        };
        match FaultModel::line_defect(LineOrientation::Col, 0.1, &config) {
            FaultModel::LineDefect { tile, .. } => {
                assert_eq!(tile, TileShape { rows: 4, cols: 2 });
            }
            other => panic!("unexpected model {other:?}"),
        }
        match FaultModel::correlated_drift(0.05, 10.0, 0.2, &config) {
            FaultModel::CorrelatedDrift { tile, .. } => {
                assert_eq!(tile, config.tile());
            }
            other => panic!("unexpected model {other:?}"),
        }
    }

    #[test]
    fn fault_spec_defaults_to_static_lifetime() {
        let spec: FaultSpec = FaultModel::StuckAt { rate: 0.1 }.into();
        assert_eq!(spec.lifetime, FaultLifetime::Static);
        assert_eq!(spec.model, FaultModel::StuckAt { rate: 0.1 });
        let spec = FaultSpec::per_inference(FaultModel::AdditiveVariation { sigma: 0.1 });
        assert_eq!(spec.lifetime, FaultLifetime::PerInference);
        assert_eq!(FaultSpec::default().model, FaultModel::None);
        assert_eq!(FaultSpec::default().lifetime, FaultLifetime::Static);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FaultModel::AdditiveVariation { sigma: -0.1 }
            .validate()
            .is_err());
        assert!(FaultModel::BitFlip { rate: 1.5, bits: 8 }
            .validate()
            .is_err());
        assert!(FaultModel::BitFlip { rate: 0.1, bits: 1 }
            .validate()
            .is_err());
        assert!(FaultModel::StuckAt { rate: -0.1 }.validate().is_err());
        assert!(FaultModel::Drift {
            nu: 0.05,
            time_ratio: 0.5
        }
        .validate()
        .is_err());
        assert!(FaultModel::Drift {
            nu: -0.05,
            time_ratio: 2.0
        }
        .validate()
        .is_err());
        assert!(FaultModel::UniformNoise { strength: -1.0 }
            .validate()
            .is_err());
        assert!(FaultModel::None.validate().is_ok());
    }

    #[test]
    fn validation_rejects_non_finite_parameters() {
        // NaN slips past a plain `< 0.0` comparison; every magnitude
        // parameter must be checked for finiteness explicitly.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            assert!(
                FaultModel::AdditiveVariation { sigma: bad }
                    .validate()
                    .is_err(),
                "additive sigma {bad} accepted"
            );
            assert!(FaultModel::MultiplicativeVariation { sigma: bad }
                .validate()
                .is_err());
            assert!(FaultModel::UniformNoise { strength: bad }
                .validate()
                .is_err());
            assert!(FaultModel::BitFlip { rate: bad, bits: 8 }
                .validate()
                .is_err());
            assert!(FaultModel::StuckAt { rate: bad }.validate().is_err());
            assert!(FaultModel::Drift {
                nu: bad,
                time_ratio: 2.0
            }
            .validate()
            .is_err());
            assert!(FaultModel::Drift {
                nu: 0.05,
                time_ratio: bad
            }
            .validate()
            .is_err());
        }
    }

    #[test]
    fn validation_rejects_bad_structured_parameters() {
        let tile = TileShape { rows: 4, cols: 4 };
        let line = |rate, tile| FaultModel::LineDefect {
            orientation: LineOrientation::Row,
            rate,
            tile,
        };
        assert!(line(0.1, tile).validate().is_ok());
        assert!(line(-0.1, tile).validate().is_err());
        assert!(line(1.5, tile).validate().is_err());
        assert!(line(f32::NAN, tile).validate().is_err());
        assert!(line(0.1, TileShape { rows: 0, cols: 4 })
            .validate()
            .is_err());
        assert!(line(0.1, TileShape { rows: 4, cols: 0 })
            .validate()
            .is_err());
        let cd = |nu, time_ratio, sigma_nu, tile| FaultModel::CorrelatedDrift {
            nu,
            time_ratio,
            sigma_nu,
            tile,
        };
        assert!(cd(0.05, 10.0, 0.2, tile).validate().is_ok());
        assert!(cd(-0.05, 10.0, 0.2, tile).validate().is_err());
        assert!(cd(f32::NAN, 10.0, 0.2, tile).validate().is_err());
        assert!(cd(0.05, 0.5, 0.2, tile).validate().is_err());
        assert!(cd(0.05, f32::INFINITY, 0.2, tile).validate().is_err());
        assert!(cd(0.05, 10.0, -0.2, tile).validate().is_err());
        assert!(cd(0.05, 10.0, f32::NAN, tile).validate().is_err());
        assert!(cd(0.05, 10.0, 0.2, TileShape { rows: 0, cols: 0 })
            .validate()
            .is_err());
    }

    #[test]
    fn additive_variation_magnitude_scales_with_sigma() {
        let (w, mut rng) = sample_weights(1);
        let small = FaultModel::AdditiveVariation { sigma: 0.05 }
            .perturb(&w, &mut rng)
            .unwrap();
        let large = FaultModel::AdditiveVariation { sigma: 0.5 }
            .perturb(&w, &mut rng)
            .unwrap();
        let err_small = small.sub(&w).unwrap().abs().mean();
        let err_large = large.sub(&w).unwrap().abs().mean();
        assert!(err_large > err_small * 3.0);
    }

    #[test]
    fn multiplicative_variation_preserves_zeros() {
        let mut rng = Rng::seed_from(2);
        let w = Tensor::from_vec(vec![0.0, 1.0, -2.0, 0.0], &[4]).unwrap();
        let p = FaultModel::MultiplicativeVariation { sigma: 0.3 }
            .perturb(&w, &mut rng)
            .unwrap();
        assert_eq!(p.data()[0], 0.0);
        assert_eq!(p.data()[3], 0.0);
        assert_ne!(p.data()[1], 1.0);
    }

    #[test]
    fn uniform_noise_is_bounded() {
        let (w, mut rng) = sample_weights(3);
        let strength = 0.2f32;
        let scale = w.abs().max();
        let p = FaultModel::UniformNoise { strength }
            .perturb(&w, &mut rng)
            .unwrap();
        let max_dev = p.sub(&w).unwrap().abs().max();
        assert!(max_dev <= strength * scale + 1e-6);
    }

    #[test]
    fn bitflip_rate_zero_is_quantization_only() {
        let (w, mut rng) = sample_weights(4);
        let p = FaultModel::BitFlip { rate: 0.0, bits: 8 }
            .perturb(&w, &mut rng)
            .unwrap();
        // rate 0 is inactive → returns the original weights unchanged.
        assert!(p.approx_eq(&w, 1e-6));
    }

    #[test]
    fn bitflip_corrupts_more_with_higher_rate() {
        let (w, mut rng) = sample_weights(5);
        let p_low = FaultModel::BitFlip {
            rate: 0.01,
            bits: 8,
        }
        .perturb(&w, &mut rng)
        .unwrap();
        let p_high = FaultModel::BitFlip { rate: 0.3, bits: 8 }
            .perturb(&w, &mut rng)
            .unwrap();
        let err_low = p_low.sub(&w).unwrap().abs().mean();
        let err_high = p_high.sub(&w).unwrap().abs().mean();
        assert!(err_high > err_low);
    }

    #[test]
    fn binary_bitflip_flips_expected_fraction() {
        let mut rng = Rng::seed_from(6);
        let w = Tensor::rand_uniform(&[10_000], -1.0, 1.0, &mut rng);
        let binarized = BinaryTensor::binarize(&w).dequantize();
        let flipped = FaultModel::BinaryBitFlip { rate: 0.2 }
            .perturb(&w, &mut rng)
            .unwrap();
        let changed = binarized
            .data()
            .iter()
            .zip(flipped.data().iter())
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        let rate = changed as f32 / w.numel() as f32;
        assert!((rate - 0.2).abs() < 0.02, "flip rate {rate}");
    }

    #[test]
    fn stuck_at_pins_to_extremes() {
        let mut rng = Rng::seed_from(7);
        let w = Tensor::linspace(-1.0, 1.0, 1000);
        let p = FaultModel::StuckAt { rate: 0.3 }
            .perturb(&w, &mut rng)
            .unwrap();
        let changed: Vec<(f32, f32)> = w
            .data()
            .iter()
            .zip(p.data().iter())
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (*a, *b))
            .collect();
        assert!(!changed.is_empty());
        for (_, new) in changed {
            assert!(new == -1.0 || new == 1.0);
        }
    }

    #[test]
    fn drift_shrinks_magnitudes() {
        let mut rng = Rng::seed_from(8);
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]).unwrap();
        let p = FaultModel::Drift {
            nu: 0.1,
            time_ratio: 100.0,
        }
        .perturb(&w, &mut rng)
        .unwrap();
        for (orig, drifted) in w.data().iter().zip(p.data().iter()) {
            assert!(drifted.abs() < orig.abs());
            assert_eq!(orig.signum(), drifted.signum());
        }
    }

    #[test]
    fn line_defects_stick_whole_tile_lines() {
        // Re-walk the canonical line iteration with a cloned RNG: the dense
        // realization must equal exactly the expected matrix (fired segments
        // at their stuck level, everything else untouched), and every fired
        // segment must span a full tile line clipped to the matrix.
        let mut rng = Rng::seed_from(40);
        let (rows, cols) = (10usize, 13usize);
        let tile = TileShape { rows: 4, cols: 5 };
        let w = Tensor::randn(&[rows, cols], 0.0, 1.0, &mut rng);
        for orientation in [LineOrientation::Row, LineOrientation::Col] {
            let model = FaultModel::LineDefect {
                orientation,
                rate: 0.3,
                tile,
            };
            let mut rng_a = Rng::seed_from(41);
            let mut rng_b = Rng::seed_from(41);
            let p = model.perturb(&w, &mut rng_a).unwrap();
            let (lo, hi) = stuck_levels(w.data());
            let mut expected = w.clone();
            for_each_fired_line(
                rows,
                cols,
                orientation,
                0.3,
                tile,
                &mut rng_b,
                |rr, cc, pick_lo| {
                    // A fired segment is one full tile line clipped to the
                    // matrix: unit extent across the line, tile extent along
                    // it, starting on a tile boundary.
                    match orientation {
                        LineOrientation::Row => {
                            assert_eq!(rr.len(), 1);
                            assert_eq!(cc.start % tile.cols, 0);
                            assert!(cc.len() == tile.cols || cc.end == cols);
                        }
                        LineOrientation::Col => {
                            assert_eq!(cc.len(), 1);
                            assert_eq!(rr.start % tile.rows, 0);
                            assert!(rr.len() == tile.rows || rr.end == rows);
                        }
                    }
                    let level = if pick_lo { lo } else { hi };
                    for r in rr {
                        for c in cc.clone() {
                            expected.data_mut()[r * cols + c] = level;
                        }
                    }
                },
            );
            let identical = p
                .data()
                .iter()
                .zip(expected.data().iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                identical,
                "{orientation:?} defects diverged from the canonical lines"
            );
            assert!(!p.approx_eq(&w, 1e-9), "rate 0.3 should fire some line");
        }
    }

    #[test]
    fn correlated_drift_is_coherent_within_tiles() {
        // On an all-ones matrix the output *is* the per-tile factor: cells
        // of one tile must share it exactly, and with a generous σ_ν tiles
        // must disagree.
        let rows = 8usize;
        let cols = 8usize;
        let tile = TileShape { rows: 4, cols: 4 };
        let w = Tensor::from_vec(vec![1.0; rows * cols], &[rows, cols]).unwrap();
        let mut rng = Rng::seed_from(42);
        let p = FaultModel::CorrelatedDrift {
            nu: 0.1,
            time_ratio: 100.0,
            sigma_nu: 0.5,
            tile,
        }
        .perturb(&w, &mut rng)
        .unwrap();
        let mut factors = Vec::new();
        for r0 in (0..rows).step_by(tile.rows) {
            for c0 in (0..cols).step_by(tile.cols) {
                let f = p.data()[r0 * cols + c0];
                for r in r0..r0 + tile.rows {
                    for c in c0..c0 + tile.cols {
                        assert_eq!(
                            p.data()[r * cols + c].to_bits(),
                            f.to_bits(),
                            "tile ({r0},{c0}) is not coherent at ({r},{c})"
                        );
                    }
                }
                assert!(f > 0.0 && f <= 1.0, "factor {f} cannot grow magnitudes");
                factors.push(f.to_bits());
            }
        }
        factors.sort_unstable();
        factors.dedup();
        assert!(factors.len() > 1, "tiles drew identical factors");
    }

    #[test]
    fn perturb_into_is_bit_identical_to_perturb() {
        let (w, _) = sample_weights(20);
        let models = [
            FaultModel::None,
            FaultModel::AdditiveVariation { sigma: 0.4 },
            FaultModel::MultiplicativeVariation { sigma: 0.3 },
            FaultModel::UniformNoise { strength: 0.2 },
            FaultModel::BitFlip {
                rate: 0.05,
                bits: 8,
            },
            FaultModel::BinaryBitFlip { rate: 0.2 },
            FaultModel::StuckAt { rate: 0.3 },
            FaultModel::Drift {
                nu: 0.05,
                time_ratio: 50.0,
            },
            FaultModel::LineDefect {
                orientation: LineOrientation::Row,
                rate: 0.1,
                tile: TileShape { rows: 8, cols: 8 },
            },
            FaultModel::LineDefect {
                orientation: LineOrientation::Col,
                rate: 0.1,
                tile: TileShape { rows: 8, cols: 8 },
            },
            FaultModel::CorrelatedDrift {
                nu: 0.05,
                time_ratio: 50.0,
                sigma_nu: 0.5,
                tile: TileShape { rows: 8, cols: 8 },
            },
        ];
        for model in models {
            let mut rng_a = Rng::seed_from(777);
            let mut rng_b = Rng::seed_from(777);
            let allocated = model.perturb(&w, &mut rng_a).unwrap();
            let mut dst = vec![0.0f32; w.numel()];
            model.perturb_into(&w, &mut dst, &mut rng_b).unwrap();
            let identical = allocated
                .data()
                .iter()
                .zip(dst.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "{model:?} perturb_into diverged from perturb");
            // The two paths must also leave the RNG in the same state, so a
            // subsequent parameter draws the same stream either way.
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "{model:?} rng state");
        }
        // Length mismatch is rejected.
        let mut short = vec![0.0f32; 3];
        assert!(FaultModel::None
            .perturb_into(&w, &mut short, &mut Rng::seed_from(1))
            .is_err());
    }

    #[test]
    fn edge_rates_are_consistent_across_realization_paths() {
        // rate = 0.0 (inactive) and rate = 1.0 (every cell fires) must be
        // handled identically by the allocating and the zero-alloc paths —
        // including the RNG stream they leave behind.
        let (w, _) = sample_weights(21);
        let models = [
            FaultModel::StuckAt { rate: 0.0 },
            FaultModel::StuckAt { rate: 1.0 },
            FaultModel::BitFlip { rate: 1.0, bits: 8 },
            FaultModel::BinaryBitFlip { rate: 1.0 },
            FaultModel::AdditiveVariation { sigma: 0.0 },
            FaultModel::UniformNoise { strength: 0.0 },
            FaultModel::Drift {
                nu: 0.0,
                time_ratio: 100.0,
            },
            FaultModel::Drift {
                nu: 0.1,
                time_ratio: 1.0,
            },
        ];
        for model in models {
            model.validate().unwrap();
            let mut rng_a = Rng::seed_from(99);
            let mut rng_b = Rng::seed_from(99);
            let allocated = model.perturb(&w, &mut rng_a).unwrap();
            let mut dst = vec![0.0f32; w.numel()];
            model.perturb_into(&w, &mut dst, &mut rng_b).unwrap();
            let identical = allocated
                .data()
                .iter()
                .zip(dst.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "{model:?} paths diverged at an edge rate");
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "{model:?} rng state");
        }
        // rate = 1.0 stuck-at pins every cell to an extreme.
        let mut rng = Rng::seed_from(100);
        let p = FaultModel::StuckAt { rate: 1.0 }
            .perturb(&w, &mut rng)
            .unwrap();
        let (lo, hi) = (w.min(), w.max());
        assert!(p.data().iter().all(|&v| v == lo || v == hi));
        // Drift with time_ratio = 1 or nu = 0 is exactly the identity.
        let d = FaultModel::Drift {
            nu: 0.1,
            time_ratio: 1.0,
        };
        assert!(!d.is_active() && d.uniform_scale().is_none());
    }

    #[test]
    fn zero_length_parameters_are_harmless() {
        // A degenerate rank-1/rank-2 parameter with zero elements must not
        // panic or draw from the stream differently across paths.
        let w = Tensor::zeros(&[0]);
        for model in [
            FaultModel::AdditiveVariation { sigma: 0.5 },
            FaultModel::MultiplicativeVariation { sigma: 0.5 },
            FaultModel::UniformNoise { strength: 0.5 },
            FaultModel::StuckAt { rate: 0.7 },
            FaultModel::Drift {
                nu: 0.05,
                time_ratio: 10.0,
            },
            FaultModel::LineDefect {
                orientation: LineOrientation::Row,
                rate: 0.5,
                tile: TileShape { rows: 4, cols: 4 },
            },
            FaultModel::CorrelatedDrift {
                nu: 0.05,
                time_ratio: 10.0,
                sigma_nu: 0.5,
                tile: TileShape { rows: 4, cols: 4 },
            },
            FaultModel::None,
        ] {
            let mut rng_a = Rng::seed_from(7);
            let mut rng_b = Rng::seed_from(7);
            let p = model.perturb(&w, &mut rng_a).unwrap();
            assert_eq!(p.numel(), 0, "{model:?}");
            let mut dst: Vec<f32> = Vec::new();
            model.perturb_into(&w, &mut dst, &mut rng_b).unwrap();
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "{model:?} rng state");
        }
        let (lo, hi) = stuck_levels(&[]);
        assert!(lo.is_infinite() && hi.is_infinite());
    }

    #[test]
    fn flip_bits_keeps_codes_in_range() {
        let mut rng = Rng::seed_from(9);
        let w = Tensor::randn(&[512], 0.0, 1.0, &mut rng);
        let mut q = QuantizedTensor::quantize(&w, 4).unwrap();
        flip_bits(&mut q, 0.5, &mut rng);
        let qmax = QuantizedTensor::qmax_for(4);
        assert!(q.iter_codes().all(|c| c.abs() <= qmax));
    }

    proptest! {
        #[test]
        fn prop_inactive_models_are_identity(values in proptest::collection::vec(-2.0f32..2.0, 1..64)) {
            let w = Tensor::from_slice(&values);
            let mut rng = Rng::seed_from(10);
            for model in [
                FaultModel::None,
                FaultModel::AdditiveVariation { sigma: 0.0 },
                FaultModel::MultiplicativeVariation { sigma: 0.0 },
                FaultModel::UniformNoise { strength: 0.0 },
                FaultModel::BinaryBitFlip { rate: 0.0 },
                FaultModel::StuckAt { rate: 0.0 },
                FaultModel::LineDefect {
                    orientation: LineOrientation::Row,
                    rate: 0.0,
                    tile: TileShape { rows: 4, cols: 4 },
                },
                FaultModel::CorrelatedDrift {
                    nu: 0.0,
                    time_ratio: 100.0,
                    sigma_nu: 0.5,
                    tile: TileShape { rows: 4, cols: 4 },
                },
            ] {
                let p = model.perturb(&w, &mut rng).unwrap();
                prop_assert!(p.approx_eq(&w, 0.0));
            }
        }

        #[test]
        fn prop_line_defect_cells_cover_exactly_whole_lines(
            rows in 1usize..12,
            cols in 1usize..12,
            tr in 1usize..6,
            tc in 1usize..6,
            rate in 0.0f32..1.0,
            row_lines in 0u32..2,
            seed in 0u32..1_000,
        ) {
            // The set of cells the dense realization may touch is exactly
            // the union of whole (clipped) tile lines the canonical
            // iteration fires — no partial lines, no stray cells.
            let seed = u64::from(seed);
            let tile = TileShape { rows: tr, cols: tc };
            let orientation = if row_lines == 1 { LineOrientation::Row } else { LineOrientation::Col };
            let mut init = Rng::seed_from(seed ^ 0xABCD);
            let w = Tensor::randn(&[rows, cols], 0.0, 1.0, &mut init);
            let model = FaultModel::LineDefect { orientation, rate, tile };
            let mut rng_a = Rng::seed_from(seed);
            let mut rng_b = Rng::seed_from(seed);
            let p = model.perturb(&w, &mut rng_a).unwrap();
            let (lo, hi) = stuck_levels(w.data());
            let mut fired = vec![false; rows * cols];
            let mut expected = w.data().to_vec();
            let mut segments = Vec::new();
            for_each_fired_line(rows, cols, orientation, rate, tile, &mut rng_b, |rr, cc, pick_lo| {
                segments.push((rr, cc, pick_lo));
            });
            for (rr, cc, pick_lo) in segments {
                prop_assert!(match orientation {
                    LineOrientation::Row => rr.len() == 1 && cc.start % tile.cols == 0
                        && (cc.len() == tile.cols || cc.end == cols),
                    LineOrientation::Col => cc.len() == 1 && rr.start % tile.rows == 0
                        && (rr.len() == tile.rows || rr.end == rows),
                });
                for r in rr {
                    for c in cc.clone() {
                        fired[r * cols + c] = true;
                        expected[r * cols + c] = if pick_lo { lo } else { hi };
                    }
                }
            }
            for (i, (&got, &want)) in p.data().iter().zip(expected.iter()).enumerate() {
                prop_assert_eq!(got.to_bits(), want.to_bits());
                if !fired[i] {
                    prop_assert_eq!(got.to_bits(), w.data()[i].to_bits());
                }
            }
        }

        #[test]
        fn prop_perturbed_shape_matches(values in proptest::collection::vec(-2.0f32..2.0, 1..64), sigma in 0.0f32..1.0) {
            let w = Tensor::from_slice(&values);
            let mut rng = Rng::seed_from(11);
            for model in [
                FaultModel::AdditiveVariation { sigma },
                FaultModel::MultiplicativeVariation { sigma },
                FaultModel::BitFlip { rate: sigma.min(0.9), bits: 8 },
                FaultModel::StuckAt { rate: sigma.min(1.0) },
            ] {
                let p = model.perturb(&w, &mut rng).unwrap();
                prop_assert_eq!(p.dims(), w.dims());
                prop_assert!(!p.has_non_finite());
            }
        }
    }
}
