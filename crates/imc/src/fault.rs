//! The fault-model catalogue: how NVM non-idealities perturb a tensor of
//! programmed weights (or pre-activation values).
//!
//! Models follow the abstractions used by the paper (Sec. IV-A2) and the
//! works it cites:
//!
//! * **Conductance variation** (manufacturing + thermal): additive Gaussian
//!   noise `w + N(0, σ)` and multiplicative Gaussian noise `w · (1 + N(0, σ))`.
//! * **Programming / retention faults**: random bit flips of the quantized
//!   integer representation (or sign flips for binary weights).
//! * **Uniform noise**: additive `U(-s, s)`, the extra experiment the paper
//!   runs on the LSTM model.
//! * **Stuck-at faults**: a fraction of cells stuck at the minimum or maximum
//!   programmable value.
//! * **Retention drift**: magnitudes decay by a factor `(t/t₀)^(-ν)`, the
//!   standard phase-change-memory drift law.

use crate::Result;
use invnorm_nn::NnError;
use invnorm_quant::binary::BinaryTensor;
use invnorm_quant::uniform::QuantizedTensor;
use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// A parameterized NVM non-ideality model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum FaultModel {
    /// Additive conductance variation: `w ← w + N(0, σ)`.
    AdditiveVariation {
        /// Standard deviation of the additive noise (relative to the weight
        /// scale of the layer; the paper sweeps 0–1).
        sigma: f32,
    },
    /// Multiplicative conductance variation: `w ← w · (1 + N(0, σ))`.
    MultiplicativeVariation {
        /// Standard deviation of the relative perturbation.
        sigma: f32,
    },
    /// Additive uniform noise: `w ← w + U(-strength, strength)`.
    UniformNoise {
        /// Half-width of the uniform perturbation.
        strength: f32,
    },
    /// Random bit flips in a `bits`-bit quantized representation. Each bit of
    /// each parameter flips independently with probability `rate`.
    BitFlip {
        /// Per-bit flip probability (the paper sweeps 0–30 %).
        rate: f32,
        /// Bit width of the quantized representation the flips act on.
        bits: u8,
    },
    /// Sign flips of binary (±α) weights, each with probability `rate`.
    BinaryBitFlip {
        /// Per-weight flip probability.
        rate: f32,
    },
    /// A fraction `rate` of cells become stuck at the layer's minimum or
    /// maximum weight value (chosen with equal probability).
    StuckAt {
        /// Fraction of affected cells.
        rate: f32,
    },
    /// Retention drift: `w ← w · (t/t₀)^(-ν)` — magnitudes shrink over time.
    Drift {
        /// Drift exponent ν (≈ 0.01–0.1 for PCM).
        nu: f32,
        /// Normalized elapsed time `t/t₀ ≥ 1`.
        time_ratio: f32,
    },
    /// No fault (baseline). Useful to keep sweep code uniform.
    #[default]
    None,
}

impl FaultModel {
    /// A short human-readable label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            FaultModel::AdditiveVariation { sigma } => format!("additive σ={sigma}"),
            FaultModel::MultiplicativeVariation { sigma } => format!("multiplicative σ={sigma}"),
            FaultModel::UniformNoise { strength } => format!("uniform ±{strength}"),
            FaultModel::BitFlip { rate, bits } => {
                format!("bit-flip {:.1}% ({bits}-bit)", rate * 100.0)
            }
            FaultModel::BinaryBitFlip { rate } => format!("sign-flip {:.1}%", rate * 100.0),
            FaultModel::StuckAt { rate } => format!("stuck-at {:.1}%", rate * 100.0),
            FaultModel::Drift { nu, time_ratio } => format!("drift ν={nu} t/t₀={time_ratio}"),
            FaultModel::None => "fault-free".to_string(),
        }
    }

    /// Whether this model perturbs anything at all.
    pub fn is_active(&self) -> bool {
        match *self {
            FaultModel::AdditiveVariation { sigma } => sigma > 0.0,
            FaultModel::MultiplicativeVariation { sigma } => sigma > 0.0,
            FaultModel::UniformNoise { strength } => strength > 0.0,
            FaultModel::BitFlip { rate, .. } => rate > 0.0,
            FaultModel::BinaryBitFlip { rate } => rate > 0.0,
            FaultModel::StuckAt { rate } => rate > 0.0,
            FaultModel::Drift { nu, time_ratio } => nu > 0.0 && time_ratio > 1.0,
            FaultModel::None => false,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns an error for negative magnitudes, probabilities outside
    /// `[0, 1]`, invalid bit widths or a drift time ratio below one.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(NnError::Config(msg));
        match *self {
            FaultModel::AdditiveVariation { sigma }
            | FaultModel::MultiplicativeVariation { sigma } => {
                if sigma < 0.0 {
                    return fail(format!("variation sigma must be >= 0, got {sigma}"));
                }
            }
            FaultModel::UniformNoise { strength } => {
                if strength < 0.0 {
                    return fail(format!(
                        "uniform noise strength must be >= 0, got {strength}"
                    ));
                }
            }
            FaultModel::BitFlip { rate, bits } => {
                if !(0.0..=1.0).contains(&rate) {
                    return fail(format!("bit-flip rate must be in [0, 1], got {rate}"));
                }
                if !(2..=16).contains(&bits) {
                    return fail(format!("bit-flip bit width must be in [2, 16], got {bits}"));
                }
            }
            FaultModel::BinaryBitFlip { rate } | FaultModel::StuckAt { rate } => {
                if !(0.0..=1.0).contains(&rate) {
                    return fail(format!("fault rate must be in [0, 1], got {rate}"));
                }
            }
            FaultModel::Drift { nu, time_ratio } => {
                if nu < 0.0 {
                    return fail(format!("drift exponent must be >= 0, got {nu}"));
                }
                if time_ratio < 1.0 {
                    return fail(format!("drift time ratio must be >= 1, got {time_ratio}"));
                }
            }
            FaultModel::None => {}
        }
        Ok(())
    }

    /// When the model maps **every** weight to `w · factor` for one constant
    /// factor — retention drift, whose realization draws no randomness —
    /// returns that factor.
    ///
    /// Compiled plans exploit this to apply the realization directly to the
    /// cached packed-weight panels (packing is a permutation with zero
    /// padding, and `0 · factor == 0`, so scaling the packed clean operand is
    /// bit-identical to packing the scaled weights) instead of re-packing.
    pub fn uniform_scale(&self) -> Option<f32> {
        match *self {
            FaultModel::Drift { nu, time_ratio } if self.is_active() => Some(time_ratio.powf(-nu)),
            _ => None,
        }
    }

    /// Applies the fault model to a weight tensor, returning the perturbed
    /// tensor. The original is left untouched.
    ///
    /// Noise magnitudes for the variation models are interpreted relative to
    /// the tensor's own scale (its maximum absolute value), matching how the
    /// paper sweeps a dimensionless σ from 0 to 1 across models with very
    /// different weight magnitudes.
    ///
    /// # Errors
    ///
    /// Returns an error when the model parameters are invalid.
    pub fn perturb(&self, weights: &Tensor, rng: &mut Rng) -> Result<Tensor> {
        self.validate()?;
        if !self.is_active() {
            return Ok(weights.clone());
        }
        match *self {
            FaultModel::AdditiveVariation { sigma } => {
                let scale = weights.abs().max().max(1e-12);
                let noise = Tensor::randn(weights.dims(), 0.0, sigma * scale, rng);
                Ok(weights.add(&noise)?)
            }
            FaultModel::MultiplicativeVariation { sigma } => {
                let factor = Tensor::randn(weights.dims(), 1.0, sigma, rng);
                Ok(weights.mul(&factor)?)
            }
            FaultModel::UniformNoise { strength } => {
                let scale = weights.abs().max().max(1e-12);
                let noise =
                    Tensor::rand_uniform(weights.dims(), -strength * scale, strength * scale, rng);
                Ok(weights.add(&noise)?)
            }
            FaultModel::BitFlip { rate, bits } => {
                let mut q = QuantizedTensor::quantize(weights, bits)?;
                flip_bits(&mut q, rate, rng);
                Ok(q.dequantize())
            }
            FaultModel::BinaryBitFlip { rate } => {
                let mut b = BinaryTensor::binarize(weights);
                for s in b.signs_mut() {
                    if rng.bernoulli(rate) {
                        *s = !*s;
                    }
                }
                Ok(b.dequantize())
            }
            FaultModel::StuckAt { rate } => {
                let lo = weights.min();
                let hi = weights.max();
                let mut out = weights.clone();
                for v in out.data_mut() {
                    if rng.bernoulli(rate) {
                        *v = if rng.bernoulli(0.5) { lo } else { hi };
                    }
                }
                Ok(out)
            }
            FaultModel::Drift { nu, time_ratio } => {
                let factor = time_ratio.powf(-nu);
                Ok(weights.scale(factor))
            }
            FaultModel::None => Ok(weights.clone()),
        }
    }

    /// Applies the fault model to a weight tensor, writing the perturbed
    /// values into a caller-provided buffer instead of allocating a fresh
    /// tensor — the zero-alloc realization step of the batched Monte-Carlo
    /// path, where B perturbed copies of each parameter land in a stacked
    /// buffer.
    ///
    /// Draws **exactly** the same random variates in the same order as
    /// [`FaultModel::perturb`], so for the same `rng` state the realization
    /// is bit-identical to the allocating path (the bit-flip models, which
    /// route through the quantizer, fall back to it internally).
    ///
    /// # Errors
    ///
    /// Returns an error when the model parameters are invalid or `dst` does
    /// not match the tensor's element count.
    pub fn perturb_into(&self, weights: &Tensor, dst: &mut [f32], rng: &mut Rng) -> Result<()> {
        self.validate()?;
        let src = weights.data();
        if dst.len() != src.len() {
            return Err(NnError::Config(format!(
                "perturb_into destination holds {} elements, parameter has {}",
                dst.len(),
                src.len()
            )));
        }
        if !self.is_active() {
            dst.copy_from_slice(src);
            return Ok(());
        }
        match *self {
            FaultModel::AdditiveVariation { sigma } => {
                // Same scale fold and per-element draw order as `perturb`.
                let scale = src
                    .iter()
                    .fold(f32::NEG_INFINITY, |m, &x| m.max(x.abs()))
                    .max(1e-12);
                let std = sigma * scale;
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s + rng.normal(0.0, std);
                }
            }
            FaultModel::MultiplicativeVariation { sigma } => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s * rng.normal(1.0, sigma);
                }
            }
            FaultModel::UniformNoise { strength } => {
                let scale = src
                    .iter()
                    .fold(f32::NEG_INFINITY, |m, &x| m.max(x.abs()))
                    .max(1e-12);
                let span = strength * scale;
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s + rng.uniform_range(-span, span);
                }
            }
            FaultModel::StuckAt { rate } => {
                let (lo, hi) = stuck_levels(src);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = if rng.bernoulli(rate) {
                        if rng.bernoulli(0.5) {
                            lo
                        } else {
                            hi
                        }
                    } else {
                        s
                    };
                }
            }
            FaultModel::Drift { nu, time_ratio } => {
                let factor = time_ratio.powf(-nu);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s * factor;
                }
            }
            FaultModel::BitFlip { .. } | FaultModel::BinaryBitFlip { .. } => {
                // These route through the quantizer representations; reuse
                // the allocating path verbatim so the realization stays
                // bit-identical.
                let perturbed = self.perturb(weights, rng)?;
                dst.copy_from_slice(perturbed.data());
            }
            FaultModel::None => unreachable!("inactive models handled above"),
        }
        Ok(())
    }
}

/// The two stuck-cell levels of a weight slice (its minimum and maximum
/// value) — shared by [`FaultModel::perturb_into`] and the sparse
/// packed-domain stuck-at path in [`crate::injector`] so the two realization
/// paths cannot diverge. `(+inf, -inf)` for an empty slice, which no caller
/// ever writes anywhere (there are no cells to stick).
pub(crate) fn stuck_levels(src: &[f32]) -> (f32, f32) {
    let lo = src.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    (lo, hi)
}

/// Flips each bit of each quantized code independently with probability
/// `rate`, then clamps the codes back into the representable range (a flip of
/// the sign bit can otherwise escape it).
pub fn flip_bits(q: &mut QuantizedTensor, rate: f32, rng: &mut Rng) {
    let bits = q.bits();
    q.map_codes(|code| flip_code_bits(code, bits, rate, rng));
    q.clamp_codes();
}

/// Flips each of the low `bits` bits of one two's-complement code
/// independently with probability `rate`, sign-extending the result. The
/// scalar core of [`flip_bits`], shared with the code-domain injector in
/// [`crate::injector`].
pub fn flip_code_bits(code: i32, bits: u8, rate: f32, rng: &mut Rng) -> i32 {
    // Represent the signed code in two's complement over `bits` bits.
    let mask = (1i32 << bits) - 1;
    let mut raw = code & mask;
    for b in 0..bits {
        if rng.bernoulli(rate) {
            raw ^= 1 << b;
        }
    }
    // Sign-extend back.
    let sign_bit = 1i32 << (bits - 1);
    if raw & sign_bit != 0 {
        raw - (1 << bits)
    } else {
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;
    use proptest::prelude::*;

    fn sample_weights(seed: u64) -> (Tensor, Rng) {
        let mut rng = Rng::seed_from(seed);
        let w = Tensor::randn(&[256], 0.0, 0.5, &mut rng);
        (w, rng)
    }

    #[test]
    fn labels_and_activity() {
        assert!(FaultModel::None.label().contains("fault-free"));
        assert!(FaultModel::BitFlip { rate: 0.1, bits: 8 }
            .label()
            .contains("10.0%"));
        assert!(!FaultModel::None.is_active());
        assert!(!FaultModel::AdditiveVariation { sigma: 0.0 }.is_active());
        assert!(FaultModel::AdditiveVariation { sigma: 0.1 }.is_active());
        assert!(FaultModel::default() == FaultModel::None);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FaultModel::AdditiveVariation { sigma: -0.1 }
            .validate()
            .is_err());
        assert!(FaultModel::BitFlip { rate: 1.5, bits: 8 }
            .validate()
            .is_err());
        assert!(FaultModel::BitFlip { rate: 0.1, bits: 1 }
            .validate()
            .is_err());
        assert!(FaultModel::StuckAt { rate: -0.1 }.validate().is_err());
        assert!(FaultModel::Drift {
            nu: 0.05,
            time_ratio: 0.5
        }
        .validate()
        .is_err());
        assert!(FaultModel::Drift {
            nu: -0.05,
            time_ratio: 2.0
        }
        .validate()
        .is_err());
        assert!(FaultModel::UniformNoise { strength: -1.0 }
            .validate()
            .is_err());
        assert!(FaultModel::None.validate().is_ok());
    }

    #[test]
    fn additive_variation_magnitude_scales_with_sigma() {
        let (w, mut rng) = sample_weights(1);
        let small = FaultModel::AdditiveVariation { sigma: 0.05 }
            .perturb(&w, &mut rng)
            .unwrap();
        let large = FaultModel::AdditiveVariation { sigma: 0.5 }
            .perturb(&w, &mut rng)
            .unwrap();
        let err_small = small.sub(&w).unwrap().abs().mean();
        let err_large = large.sub(&w).unwrap().abs().mean();
        assert!(err_large > err_small * 3.0);
    }

    #[test]
    fn multiplicative_variation_preserves_zeros() {
        let mut rng = Rng::seed_from(2);
        let w = Tensor::from_vec(vec![0.0, 1.0, -2.0, 0.0], &[4]).unwrap();
        let p = FaultModel::MultiplicativeVariation { sigma: 0.3 }
            .perturb(&w, &mut rng)
            .unwrap();
        assert_eq!(p.data()[0], 0.0);
        assert_eq!(p.data()[3], 0.0);
        assert_ne!(p.data()[1], 1.0);
    }

    #[test]
    fn uniform_noise_is_bounded() {
        let (w, mut rng) = sample_weights(3);
        let strength = 0.2f32;
        let scale = w.abs().max();
        let p = FaultModel::UniformNoise { strength }
            .perturb(&w, &mut rng)
            .unwrap();
        let max_dev = p.sub(&w).unwrap().abs().max();
        assert!(max_dev <= strength * scale + 1e-6);
    }

    #[test]
    fn bitflip_rate_zero_is_quantization_only() {
        let (w, mut rng) = sample_weights(4);
        let p = FaultModel::BitFlip { rate: 0.0, bits: 8 }
            .perturb(&w, &mut rng)
            .unwrap();
        // rate 0 is inactive → returns the original weights unchanged.
        assert!(p.approx_eq(&w, 1e-6));
    }

    #[test]
    fn bitflip_corrupts_more_with_higher_rate() {
        let (w, mut rng) = sample_weights(5);
        let p_low = FaultModel::BitFlip {
            rate: 0.01,
            bits: 8,
        }
        .perturb(&w, &mut rng)
        .unwrap();
        let p_high = FaultModel::BitFlip { rate: 0.3, bits: 8 }
            .perturb(&w, &mut rng)
            .unwrap();
        let err_low = p_low.sub(&w).unwrap().abs().mean();
        let err_high = p_high.sub(&w).unwrap().abs().mean();
        assert!(err_high > err_low);
    }

    #[test]
    fn binary_bitflip_flips_expected_fraction() {
        let mut rng = Rng::seed_from(6);
        let w = Tensor::rand_uniform(&[10_000], -1.0, 1.0, &mut rng);
        let binarized = BinaryTensor::binarize(&w).dequantize();
        let flipped = FaultModel::BinaryBitFlip { rate: 0.2 }
            .perturb(&w, &mut rng)
            .unwrap();
        let changed = binarized
            .data()
            .iter()
            .zip(flipped.data().iter())
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        let rate = changed as f32 / w.numel() as f32;
        assert!((rate - 0.2).abs() < 0.02, "flip rate {rate}");
    }

    #[test]
    fn stuck_at_pins_to_extremes() {
        let mut rng = Rng::seed_from(7);
        let w = Tensor::linspace(-1.0, 1.0, 1000);
        let p = FaultModel::StuckAt { rate: 0.3 }
            .perturb(&w, &mut rng)
            .unwrap();
        let changed: Vec<(f32, f32)> = w
            .data()
            .iter()
            .zip(p.data().iter())
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (*a, *b))
            .collect();
        assert!(!changed.is_empty());
        for (_, new) in changed {
            assert!(new == -1.0 || new == 1.0);
        }
    }

    #[test]
    fn drift_shrinks_magnitudes() {
        let mut rng = Rng::seed_from(8);
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]).unwrap();
        let p = FaultModel::Drift {
            nu: 0.1,
            time_ratio: 100.0,
        }
        .perturb(&w, &mut rng)
        .unwrap();
        for (orig, drifted) in w.data().iter().zip(p.data().iter()) {
            assert!(drifted.abs() < orig.abs());
            assert_eq!(orig.signum(), drifted.signum());
        }
    }

    #[test]
    fn perturb_into_is_bit_identical_to_perturb() {
        let (w, _) = sample_weights(20);
        let models = [
            FaultModel::None,
            FaultModel::AdditiveVariation { sigma: 0.4 },
            FaultModel::MultiplicativeVariation { sigma: 0.3 },
            FaultModel::UniformNoise { strength: 0.2 },
            FaultModel::BitFlip {
                rate: 0.05,
                bits: 8,
            },
            FaultModel::BinaryBitFlip { rate: 0.2 },
            FaultModel::StuckAt { rate: 0.3 },
            FaultModel::Drift {
                nu: 0.05,
                time_ratio: 50.0,
            },
        ];
        for model in models {
            let mut rng_a = Rng::seed_from(777);
            let mut rng_b = Rng::seed_from(777);
            let allocated = model.perturb(&w, &mut rng_a).unwrap();
            let mut dst = vec![0.0f32; w.numel()];
            model.perturb_into(&w, &mut dst, &mut rng_b).unwrap();
            let identical = allocated
                .data()
                .iter()
                .zip(dst.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "{model:?} perturb_into diverged from perturb");
            // The two paths must also leave the RNG in the same state, so a
            // subsequent parameter draws the same stream either way.
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "{model:?} rng state");
        }
        // Length mismatch is rejected.
        let mut short = vec![0.0f32; 3];
        assert!(FaultModel::None
            .perturb_into(&w, &mut short, &mut Rng::seed_from(1))
            .is_err());
    }

    #[test]
    fn edge_rates_are_consistent_across_realization_paths() {
        // rate = 0.0 (inactive) and rate = 1.0 (every cell fires) must be
        // handled identically by the allocating and the zero-alloc paths —
        // including the RNG stream they leave behind.
        let (w, _) = sample_weights(21);
        let models = [
            FaultModel::StuckAt { rate: 0.0 },
            FaultModel::StuckAt { rate: 1.0 },
            FaultModel::BitFlip { rate: 1.0, bits: 8 },
            FaultModel::BinaryBitFlip { rate: 1.0 },
            FaultModel::AdditiveVariation { sigma: 0.0 },
            FaultModel::UniformNoise { strength: 0.0 },
            FaultModel::Drift {
                nu: 0.0,
                time_ratio: 100.0,
            },
            FaultModel::Drift {
                nu: 0.1,
                time_ratio: 1.0,
            },
        ];
        for model in models {
            model.validate().unwrap();
            let mut rng_a = Rng::seed_from(99);
            let mut rng_b = Rng::seed_from(99);
            let allocated = model.perturb(&w, &mut rng_a).unwrap();
            let mut dst = vec![0.0f32; w.numel()];
            model.perturb_into(&w, &mut dst, &mut rng_b).unwrap();
            let identical = allocated
                .data()
                .iter()
                .zip(dst.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "{model:?} paths diverged at an edge rate");
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "{model:?} rng state");
        }
        // rate = 1.0 stuck-at pins every cell to an extreme.
        let mut rng = Rng::seed_from(100);
        let p = FaultModel::StuckAt { rate: 1.0 }
            .perturb(&w, &mut rng)
            .unwrap();
        let (lo, hi) = (w.min(), w.max());
        assert!(p.data().iter().all(|&v| v == lo || v == hi));
        // Drift with time_ratio = 1 or nu = 0 is exactly the identity.
        let d = FaultModel::Drift {
            nu: 0.1,
            time_ratio: 1.0,
        };
        assert!(!d.is_active() && d.uniform_scale().is_none());
    }

    #[test]
    fn zero_length_parameters_are_harmless() {
        // A degenerate rank-1/rank-2 parameter with zero elements must not
        // panic or draw from the stream differently across paths.
        let w = Tensor::zeros(&[0]);
        for model in [
            FaultModel::AdditiveVariation { sigma: 0.5 },
            FaultModel::MultiplicativeVariation { sigma: 0.5 },
            FaultModel::UniformNoise { strength: 0.5 },
            FaultModel::StuckAt { rate: 0.7 },
            FaultModel::Drift {
                nu: 0.05,
                time_ratio: 10.0,
            },
            FaultModel::None,
        ] {
            let mut rng_a = Rng::seed_from(7);
            let mut rng_b = Rng::seed_from(7);
            let p = model.perturb(&w, &mut rng_a).unwrap();
            assert_eq!(p.numel(), 0, "{model:?}");
            let mut dst: Vec<f32> = Vec::new();
            model.perturb_into(&w, &mut dst, &mut rng_b).unwrap();
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "{model:?} rng state");
        }
        let (lo, hi) = stuck_levels(&[]);
        assert!(lo.is_infinite() && hi.is_infinite());
    }

    #[test]
    fn flip_bits_keeps_codes_in_range() {
        let mut rng = Rng::seed_from(9);
        let w = Tensor::randn(&[512], 0.0, 1.0, &mut rng);
        let mut q = QuantizedTensor::quantize(&w, 4).unwrap();
        flip_bits(&mut q, 0.5, &mut rng);
        let qmax = QuantizedTensor::qmax_for(4);
        assert!(q.iter_codes().all(|c| c.abs() <= qmax));
    }

    proptest! {
        #[test]
        fn prop_inactive_models_are_identity(values in proptest::collection::vec(-2.0f32..2.0, 1..64)) {
            let w = Tensor::from_slice(&values);
            let mut rng = Rng::seed_from(10);
            for model in [
                FaultModel::None,
                FaultModel::AdditiveVariation { sigma: 0.0 },
                FaultModel::MultiplicativeVariation { sigma: 0.0 },
                FaultModel::UniformNoise { strength: 0.0 },
                FaultModel::BinaryBitFlip { rate: 0.0 },
                FaultModel::StuckAt { rate: 0.0 },
            ] {
                let p = model.perturb(&w, &mut rng).unwrap();
                prop_assert!(p.approx_eq(&w, 0.0));
            }
        }

        #[test]
        fn prop_perturbed_shape_matches(values in proptest::collection::vec(-2.0f32..2.0, 1..64), sigma in 0.0f32..1.0) {
            let w = Tensor::from_slice(&values);
            let mut rng = Rng::seed_from(11);
            for model in [
                FaultModel::AdditiveVariation { sigma },
                FaultModel::MultiplicativeVariation { sigma },
                FaultModel::BitFlip { rate: sigma.min(0.9), bits: 8 },
                FaultModel::StuckAt { rate: sigma.min(1.0) },
            ] {
                let p = model.perturb(&w, &mut rng).unwrap();
                prop_assert_eq!(p.dims(), w.dims());
                prop_assert!(!p.has_non_finite());
            }
        }
    }
}
