//! Synthetic multi-class image dataset (CIFAR-10 stand-in).
//!
//! Each class is defined by a smooth prototype pattern — a random mixture of
//! two-dimensional sinusoids plus a class-specific colour bias — and every
//! sample is the prototype under a random translation, amplitude jitter and
//! additive pixel noise. This gives the same learning problem structure as a
//! small natural-image benchmark (distinct class manifolds with substantial
//! within-class variation) while being generated in milliseconds.

use crate::ClassificationSplit;
use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic image dataset.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ImageDatasetConfig {
    /// Number of classes.
    pub classes: usize,
    /// Image side length (square images).
    pub size: usize,
    /// Number of channels (3 for the CIFAR-like default).
    pub channels: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Standard deviation of the additive pixel noise.
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImageDatasetConfig {
    fn default() -> Self {
        Self {
            classes: 10,
            size: 16,
            channels: 3,
            train_per_class: 32,
            test_per_class: 8,
            noise: 0.15,
            seed: 2024,
        }
    }
}

impl ImageDatasetConfig {
    /// A smaller configuration used by fast unit tests and examples.
    pub fn tiny() -> Self {
        Self {
            classes: 4,
            size: 12,
            channels: 3,
            train_per_class: 16,
            test_per_class: 6,
            noise: 0.1,
            seed: 7,
        }
    }
}

/// Class prototype: sinusoid parameters per channel.
#[derive(Debug, Clone)]
struct Prototype {
    freq_x: Vec<f32>,
    freq_y: Vec<f32>,
    phase: Vec<f32>,
    bias: Vec<f32>,
}

fn make_prototype(channels: usize, rng: &mut Rng) -> Prototype {
    Prototype {
        freq_x: (0..channels).map(|_| rng.uniform_range(0.5, 3.0)).collect(),
        freq_y: (0..channels).map(|_| rng.uniform_range(0.5, 3.0)).collect(),
        phase: (0..channels)
            .map(|_| rng.uniform_range(0.0, std::f32::consts::TAU))
            .collect(),
        bias: (0..channels)
            .map(|_| rng.uniform_range(-0.5, 0.5))
            .collect(),
    }
}

fn render_sample(proto: &Prototype, config: &ImageDatasetConfig, rng: &mut Rng) -> Tensor {
    let size = config.size;
    let channels = config.channels;
    // Random per-sample transformation: translation, amplitude and phase jitter.
    let dx = rng.uniform_range(-2.0, 2.0);
    let dy = rng.uniform_range(-2.0, 2.0);
    let amp = rng.uniform_range(0.7, 1.3);
    let mut data = vec![0.0f32; channels * size * size];
    for c in 0..channels {
        let fx = proto.freq_x[c] * std::f32::consts::TAU / size as f32;
        let fy = proto.freq_y[c] * std::f32::consts::TAU / size as f32;
        for y in 0..size {
            for x in 0..size {
                let value = amp
                    * ((x as f32 + dx) * fx + proto.phase[c]).sin()
                    * ((y as f32 + dy) * fy).cos()
                    + proto.bias[c]
                    + rng.normal(0.0, config.noise);
                data[(c * size + y) * size + x] = value;
            }
        }
    }
    Tensor::from_vec(data, &[channels, size, size]).expect("consistent shape")
}

/// Generates the dataset described by `config`.
///
/// Samples of all classes are interleaved (class 0, 1, 2, ..., 0, 1, 2, ...)
/// so contiguous mini-batches remain class balanced even without shuffling.
pub fn generate(config: &ImageDatasetConfig) -> ClassificationSplit {
    let mut rng = Rng::seed_from(config.seed);
    let prototypes: Vec<Prototype> = (0..config.classes)
        .map(|_| make_prototype(config.channels, &mut rng))
        .collect();

    let build = |per_class: usize, rng: &mut Rng| {
        let mut images = Vec::with_capacity(per_class * config.classes);
        let mut labels = Vec::with_capacity(per_class * config.classes);
        for i in 0..per_class {
            let _ = i;
            for (class, proto) in prototypes.iter().enumerate() {
                images.push(render_sample(proto, config, rng));
                labels.push(class);
            }
        }
        (Tensor::stack(&images).expect("uniform shapes"), labels)
    };

    let (train_inputs, train_labels) = build(config.train_per_class, &mut rng);
    let (test_inputs, test_labels) = build(config.test_per_class, &mut rng);
    ClassificationSplit {
        train_inputs,
        train_labels,
        test_inputs,
        test_labels,
        classes: config.classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_label_ranges() {
        let config = ImageDatasetConfig::tiny();
        let split = generate(&config);
        assert_eq!(
            split.train_inputs.dims(),
            &[
                config.classes * config.train_per_class,
                config.channels,
                config.size,
                config.size
            ]
        );
        assert_eq!(split.test_len(), config.classes * config.test_per_class);
        assert_eq!(split.classes, config.classes);
        assert!(split.train_labels.iter().all(|&l| l < config.classes));
        assert!(!split.train_inputs.has_non_finite());
    }

    #[test]
    fn classes_are_balanced_and_interleaved() {
        let split = generate(&ImageDatasetConfig::tiny());
        let mut counts = vec![0usize; split.classes];
        for &l in &split.train_labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == counts[0]));
        // Interleaved: first `classes` labels are 0..classes.
        let head: Vec<usize> = split.train_labels[..split.classes].to_vec();
        assert_eq!(head, (0..split.classes).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&ImageDatasetConfig::tiny());
        let b = generate(&ImageDatasetConfig::tiny());
        assert!(a.train_inputs.approx_eq(&b.train_inputs, 0.0));
        let mut other = ImageDatasetConfig::tiny();
        other.seed = 99;
        let c = generate(&other);
        assert!(!a.train_inputs.approx_eq(&c.train_inputs, 1e-6));
    }

    #[test]
    fn classes_are_distinguishable_by_a_linear_probe() {
        // Nearest-class-mean classification on raw pixels should beat chance
        // by a wide margin, confirming the classes carry signal.
        let config = ImageDatasetConfig {
            classes: 4,
            train_per_class: 24,
            test_per_class: 12,
            ..ImageDatasetConfig::tiny()
        };
        let split = generate(&config);
        let feat = config.channels * config.size * config.size;
        let mut means = vec![vec![0.0f32; feat]; config.classes];
        let mut counts = vec![0usize; config.classes];
        for (i, &label) in split.train_labels.iter().enumerate() {
            let img = split.train_inputs.index_axis0(i).unwrap();
            for (m, &v) in means[label].iter_mut().zip(img.data().iter()) {
                *m += v;
            }
            counts[label] += 1;
        }
        for (m, &c) in means.iter_mut().zip(counts.iter()) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0usize;
        for (i, &label) in split.test_labels.iter().enumerate() {
            let img = split.test_inputs.index_axis0(i).unwrap();
            let mut best = 0usize;
            let mut best_dist = f32::MAX;
            for (class, mean) in means.iter().enumerate() {
                let dist: f32 = img
                    .data()
                    .iter()
                    .zip(mean.iter())
                    .map(|(a, b)| (a - b).powi(2))
                    .sum();
                if dist < best_dist {
                    best_dist = dist;
                    best = class;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        let acc = correct as f32 / split.test_len() as f32;
        assert!(acc > 0.6, "nearest-mean accuracy only {acc}");
    }
}
