//! Synthetic atmospheric-CO₂ time series (Mauna Loa / Keeling-curve
//! stand-in) and its autoregressive windowing.
//!
//! The real record is, to a very good approximation, a slowly accelerating
//! trend plus an annual seasonal cycle plus weather noise; the generator
//! reproduces exactly that structure:
//!
//! `co2(t) = base + a·t + b·t² + A·sin(2πt/12 + φ) + ε`
//!
//! with `t` in months. Samples for the LSTM forecaster are sliding windows of
//! `window` consecutive normalized values with the next value as the target
//! (one-step-ahead autoregressive forecasting, as in the paper's LSTM task).

use crate::DenseSplit;
use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic CO₂ series and its windowing.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Co2DatasetConfig {
    /// Number of months to synthesize.
    pub months: usize,
    /// Autoregressive input window length.
    pub window: usize,
    /// Fraction of windows used for training (the rest is the test set,
    /// taken from the chronological end of the series).
    pub train_fraction: f32,
    /// Standard deviation of the observation noise (ppm).
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Co2DatasetConfig {
    fn default() -> Self {
        Self {
            months: 480, // 40 years
            window: 24,
            train_fraction: 0.8,
            noise: 0.3,
            seed: 1958, // the year the Keeling measurements started
        }
    }
}

impl Co2DatasetConfig {
    /// A smaller configuration used by fast unit tests and examples.
    pub fn tiny() -> Self {
        Self {
            months: 180,
            window: 12,
            train_fraction: 0.8,
            noise: 0.2,
            seed: 1959,
        }
    }
}

/// The raw synthetic series plus the normalization constants used to map it
/// to the network's input range.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Co2Series {
    /// Monthly CO₂ concentrations in ppm.
    pub values: Vec<f32>,
    /// Mean used for normalization.
    pub mean: f32,
    /// Standard deviation used for normalization.
    pub std: f32,
}

impl Co2Series {
    /// Normalizes a raw ppm value.
    pub fn normalize(&self, ppm: f32) -> f32 {
        (ppm - self.mean) / self.std
    }

    /// Maps a normalized value back to ppm.
    pub fn denormalize(&self, normalized: f32) -> f32 {
        normalized * self.std + self.mean
    }
}

/// Generates the raw monthly series.
pub fn generate_series(config: &Co2DatasetConfig) -> Co2Series {
    let mut rng = Rng::seed_from(config.seed);
    let mut values = Vec::with_capacity(config.months);
    for month in 0..config.months {
        let t = month as f32;
        let trend = 315.0 + 0.1 * t + 0.0001 * t * t;
        let seasonal = 3.0 * (std::f32::consts::TAU * t / 12.0 + 0.4).sin()
            + 0.8 * (std::f32::consts::TAU * t / 6.0).sin();
        values.push(trend + seasonal + rng.normal(0.0, config.noise));
    }
    let mean = values.iter().sum::<f32>() / values.len().max(1) as f32;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / values.len().max(1) as f32;
    Co2Series {
        values,
        mean,
        std: var.sqrt().max(1e-6),
    }
}

/// Windows the series into autoregressive samples.
///
/// Inputs have shape `[N, window, 1]` (sequence-first layout expected by the
/// LSTM layer) and targets `[N, 1]` (the next normalized value). The split is
/// chronological: the first `train_fraction` of windows train, the rest test,
/// so the test set is a genuine extrapolation like in the paper.
pub fn generate(config: &Co2DatasetConfig) -> (DenseSplit, Co2Series) {
    let series = generate_series(config);
    let normalized: Vec<f32> = series.values.iter().map(|&v| series.normalize(v)).collect();
    let window = config.window;
    let total_windows = normalized.len().saturating_sub(window);
    let mut inputs = Vec::with_capacity(total_windows);
    let mut targets = Vec::with_capacity(total_windows);
    for start in 0..total_windows {
        let input: Vec<f32> = normalized[start..start + window].to_vec();
        inputs.push(Tensor::from_vec(input, &[window, 1]).expect("window shape"));
        targets.push(Tensor::from_slice(&[normalized[start + window]]));
    }
    let train_count = ((total_windows as f32) * config.train_fraction).round() as usize;
    let train_count = train_count.clamp(1, total_windows.saturating_sub(1).max(1));
    let split = DenseSplit {
        train_inputs: Tensor::stack(&inputs[..train_count]).expect("uniform shapes"),
        train_targets: Tensor::stack(&targets[..train_count]).expect("uniform shapes"),
        test_inputs: Tensor::stack(&inputs[train_count..]).expect("uniform shapes"),
        test_targets: Tensor::stack(&targets[train_count..]).expect("uniform shapes"),
    };
    (split, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_has_trend_and_seasonality() {
        let series = generate_series(&Co2DatasetConfig::default());
        assert_eq!(series.values.len(), 480);
        // Trend: last year's mean well above first year's mean.
        let first_year: f32 = series.values[..12].iter().sum::<f32>() / 12.0;
        let last_year: f32 = series.values[468..].iter().sum::<f32>() / 12.0;
        assert!(last_year > first_year + 30.0);
        // Seasonality: within one year there is a swing of several ppm after
        // removing the linear trend between consecutive months.
        let year = &series.values[120..132];
        let min = year.iter().copied().fold(f32::MAX, f32::min);
        let max = year.iter().copied().fold(f32::MIN, f32::max);
        assert!(max - min > 3.0);
    }

    #[test]
    fn normalization_round_trip() {
        let series = generate_series(&Co2DatasetConfig::tiny());
        let x = 360.0;
        assert!((series.denormalize(series.normalize(x)) - x).abs() < 1e-3);
        // Normalized series is roughly standardized.
        let normalized: Vec<f32> = series.values.iter().map(|&v| series.normalize(v)).collect();
        let mean = normalized.iter().sum::<f32>() / normalized.len() as f32;
        assert!(mean.abs() < 1e-3);
    }

    #[test]
    fn windowing_shapes_and_chronological_split() {
        let config = Co2DatasetConfig::tiny();
        let (split, _series) = generate(&config);
        let total = config.months - config.window;
        assert_eq!(split.train_len() + split.test_len(), total);
        assert_eq!(split.train_inputs.dims()[1..], [config.window, 1]);
        assert_eq!(split.train_targets.dims()[1..], [1]);
        // Chronological: train fraction respected.
        let expected_train = ((total as f32) * config.train_fraction).round() as usize;
        assert_eq!(split.train_len(), expected_train);
    }

    #[test]
    fn targets_follow_the_window() {
        let config = Co2DatasetConfig::tiny();
        let (split, series) = generate(&config);
        // The first target equals the normalized series value at index `window`.
        let expected = series.normalize(series.values[config.window]);
        let actual = split.train_targets.get(&[0, 0]).unwrap();
        assert!((actual - expected).abs() < 1e-5);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = generate(&Co2DatasetConfig::tiny());
        let (b, _) = generate(&Co2DatasetConfig::tiny());
        assert!(a.train_inputs.approx_eq(&b.train_inputs, 0.0));
    }

    #[test]
    fn persistence_baseline_beats_noise_floor() {
        // Predicting "next = last observed" should already be decent on this
        // smooth series — a sanity check that the task is learnable, and the
        // reference the LSTM must beat.
        let (split, _series) = generate(&Co2DatasetConfig::tiny());
        let n = split.test_len();
        let mut sq = 0.0f32;
        for i in 0..n {
            let window = split.test_inputs.index_axis0(i).unwrap();
            let last = window.data()[window.numel() - 1];
            let target = split.test_targets.get(&[i, 0]).unwrap();
            sq += (last - target).powi(2);
        }
        let rmse = (sq / n as f32).sqrt();
        assert!(rmse < 0.5, "persistence RMSE unexpectedly high: {rmse}");
    }
}
