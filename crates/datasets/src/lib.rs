//! # invnorm-datasets
//!
//! Synthetic dataset generators standing in for the benchmarks the paper
//! evaluates on (CIFAR-10, Google Speech Commands, DRIVE and the Mauna Loa
//! atmospheric-CO₂ record), plus the distribution-shift corruptions used for
//! the out-of-distribution experiments (Fig. 7).
//!
//! None of the original datasets are redistributable or downloadable in this
//! offline environment, so each generator produces data with the same
//! *structure* as its counterpart — learnable class signatures with
//! within-class variation — at a scale where every experiment in
//! `invnorm-bench` trains and evaluates in seconds. The robustness
//! comparisons of the paper are relative (inverted-norm vs conventional vs
//! Dropout BayNN on the *same* data), so they survive this substitution; see
//! DESIGN.md for the full substitution rationale.
//!
//! * [`images`] — multi-class image classification (CIFAR-10 stand-in).
//! * [`audio`] — keyword-like 1-D audio classification (Speech-Commands
//!   stand-in).
//! * [`segmentation`] — vessel-like binary segmentation (DRIVE stand-in).
//! * [`timeseries`] — Keeling-curve CO₂ forecasting (Mauna Loa stand-in).
//! * [`ood`] — rotation and uniform-noise corruptions for OOD evaluation.

// This crate must stay free of `unsafe`; all unsafe code in the
// workspace is confined to `crates/tensor` (lint rule R2).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod audio;
pub mod images;
pub mod ood;
pub mod segmentation;
pub mod timeseries;

use invnorm_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A classification dataset split into train and test portions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationSplit {
    /// Training inputs, batched along the first dimension.
    pub train_inputs: Tensor,
    /// Training class indices.
    pub train_labels: Vec<usize>,
    /// Test inputs.
    pub test_inputs: Tensor,
    /// Test class indices.
    pub test_labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl ClassificationSplit {
    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }
}

/// A dense-target dataset (segmentation masks or regression targets) split
/// into train and test portions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseSplit {
    /// Training inputs.
    pub train_inputs: Tensor,
    /// Training targets (same leading dimension as the inputs).
    pub train_targets: Tensor,
    /// Test inputs.
    pub test_inputs: Tensor,
    /// Test targets.
    pub test_targets: Tensor,
}

impl DenseSplit {
    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_inputs.dims()[0]
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_inputs.dims()[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_accessors() {
        let split = ClassificationSplit {
            train_inputs: Tensor::zeros(&[4, 2]),
            train_labels: vec![0, 1, 0, 1],
            test_inputs: Tensor::zeros(&[2, 2]),
            test_labels: vec![0, 1],
            classes: 2,
        };
        assert_eq!(split.train_len(), 4);
        assert_eq!(split.test_len(), 2);

        let dense = DenseSplit {
            train_inputs: Tensor::zeros(&[3, 2]),
            train_targets: Tensor::zeros(&[3, 1]),
            test_inputs: Tensor::zeros(&[1, 2]),
            test_targets: Tensor::zeros(&[1, 1]),
        };
        assert_eq!(dense.train_len(), 3);
        assert_eq!(dense.test_len(), 1);
    }
}
