//! Synthetic keyword-like audio dataset (Google Speech Commands stand-in).
//!
//! Each class ("keyword") is a characteristic combination of two harmonics
//! with a class-specific temporal envelope; samples add random pitch jitter,
//! amplitude variation, time shift and background noise. The resulting 1-D
//! signals are classified by the M5-style 1-D CNN, exactly like the paper's
//! audio task.

use crate::ClassificationSplit;
use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic audio dataset.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AudioDatasetConfig {
    /// Number of keyword classes.
    pub classes: usize,
    /// Samples per signal (the "waveform length").
    pub length: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Standard deviation of the background noise.
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AudioDatasetConfig {
    fn default() -> Self {
        Self {
            classes: 8,
            length: 256,
            train_per_class: 32,
            test_per_class: 8,
            noise: 0.1,
            seed: 555,
        }
    }
}

impl AudioDatasetConfig {
    /// A smaller configuration used by fast unit tests and examples.
    pub fn tiny() -> Self {
        Self {
            classes: 4,
            length: 128,
            train_per_class: 16,
            test_per_class: 6,
            noise: 0.08,
            seed: 556,
        }
    }
}

#[derive(Debug, Clone)]
struct Keyword {
    f1: f32,
    f2: f32,
    envelope_center: f32,
    envelope_width: f32,
}

fn make_keyword(class: usize, classes: usize, rng: &mut Rng) -> Keyword {
    // Spread fundamental frequencies across classes so they are separable,
    // with a small random detune.
    let base = 2.0 + 10.0 * (class as f32 + 0.5) / classes as f32;
    Keyword {
        f1: base + rng.uniform_range(-0.2, 0.2),
        f2: base * 1.5 + rng.uniform_range(-0.2, 0.2),
        envelope_center: 0.3 + 0.4 * (class as f32 / classes.max(1) as f32),
        envelope_width: rng.uniform_range(0.15, 0.3),
    }
}

fn render_sample(keyword: &Keyword, config: &AudioDatasetConfig, rng: &mut Rng) -> Tensor {
    let n = config.length;
    let pitch_jitter = rng.uniform_range(0.95, 1.05);
    let amp = rng.uniform_range(0.7, 1.2);
    let shift = rng.uniform_range(-0.05, 0.05);
    let mut data = vec![0.0f32; n];
    for (i, v) in data.iter_mut().enumerate() {
        let t = i as f32 / n as f32;
        let envelope =
            (-((t - keyword.envelope_center - shift) / keyword.envelope_width).powi(2)).exp();
        let carrier = (std::f32::consts::TAU * keyword.f1 * pitch_jitter * t * n as f32 / n as f32)
            .sin()
            + 0.5 * (std::f32::consts::TAU * keyword.f2 * pitch_jitter * t).sin();
        *v = amp * envelope * carrier + rng.normal(0.0, config.noise);
    }
    Tensor::from_vec(data, &[1, n]).expect("consistent shape")
}

/// Generates the dataset described by `config`. Signals have shape
/// `[1, length]` (one channel), batched along the first dimension.
pub fn generate(config: &AudioDatasetConfig) -> ClassificationSplit {
    let mut rng = Rng::seed_from(config.seed);
    let keywords: Vec<Keyword> = (0..config.classes)
        .map(|c| make_keyword(c, config.classes, &mut rng))
        .collect();
    let build = |per_class: usize, rng: &mut Rng| {
        let mut signals = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..per_class {
            for (class, keyword) in keywords.iter().enumerate() {
                signals.push(render_sample(keyword, config, rng));
                labels.push(class);
            }
        }
        (Tensor::stack(&signals).expect("uniform shapes"), labels)
    };
    let (train_inputs, train_labels) = build(config.train_per_class, &mut rng);
    let (test_inputs, test_labels) = build(config.test_per_class, &mut rng);
    ClassificationSplit {
        train_inputs,
        train_labels,
        test_inputs,
        test_labels,
        classes: config.classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let config = AudioDatasetConfig::tiny();
        let split = generate(&config);
        assert_eq!(
            split.train_inputs.dims(),
            &[config.classes * config.train_per_class, 1, config.length]
        );
        assert_eq!(split.classes, config.classes);
        assert!(!split.train_inputs.has_non_finite());
        let again = generate(&config);
        assert!(split.train_inputs.approx_eq(&again.train_inputs, 0.0));
    }

    #[test]
    fn signals_are_bounded_and_nontrivial() {
        let split = generate(&AudioDatasetConfig::tiny());
        assert!(split.train_inputs.abs().max() < 10.0);
        assert!(split.train_inputs.std() > 0.01);
    }

    #[test]
    fn classes_have_distinct_spectral_energy() {
        // Compute a crude two-bin spectral feature per sample and check that
        // a nearest-class-mean classifier beats chance.
        let config = AudioDatasetConfig {
            classes: 4,
            train_per_class: 20,
            test_per_class: 10,
            ..AudioDatasetConfig::tiny()
        };
        let split = generate(&config);
        let feature = |signal: &Tensor| -> Vec<f32> {
            // Goertzel-like energy at a few probe frequencies.
            let n = signal.numel();
            (1..=8)
                .map(|k| {
                    let f = k as f32 * 2.0;
                    let mut re = 0.0f32;
                    let mut im = 0.0f32;
                    for (i, &v) in signal.data().iter().enumerate() {
                        let t = i as f32 / n as f32;
                        re += v * (std::f32::consts::TAU * f * t).cos();
                        im += v * (std::f32::consts::TAU * f * t).sin();
                    }
                    (re * re + im * im).sqrt()
                })
                .collect()
        };
        let mut means = vec![vec![0.0f32; 8]; config.classes];
        let mut counts = vec![0usize; config.classes];
        for (i, &label) in split.train_labels.iter().enumerate() {
            let f = feature(&split.train_inputs.index_axis0(i).unwrap());
            for (m, v) in means[label].iter_mut().zip(f.iter()) {
                *m += v;
            }
            counts[label] += 1;
        }
        for (m, &c) in means.iter_mut().zip(counts.iter()) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for (i, &label) in split.test_labels.iter().enumerate() {
            let f = feature(&split.test_inputs.index_axis0(i).unwrap());
            let mut best = 0;
            let mut best_dist = f32::MAX;
            for (class, mean) in means.iter().enumerate() {
                let d: f32 = f
                    .iter()
                    .zip(mean.iter())
                    .map(|(a, b)| (a - b).powi(2))
                    .sum();
                if d < best_dist {
                    best_dist = d;
                    best = class;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        let acc = correct as f32 / split.test_len() as f32;
        assert!(acc > 0.5, "spectral nearest-mean accuracy only {acc}");
    }
}
