//! Synthetic vessel-segmentation dataset (DRIVE stand-in).
//!
//! Every sample is a grayscale image containing a few random curved,
//! branching "vessels" (random-walk strokes of varying thickness) on a
//! smoothly varying background with speckle noise; the target is the binary
//! vessel mask. This reproduces the structure of retinal-vessel segmentation
//! (thin foreground structures, heavy class imbalance, texture background)
//! at a scale the `MicroUNet` model can learn in seconds.

use crate::DenseSplit;
use invnorm_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic segmentation dataset.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SegmentationDatasetConfig {
    /// Image side length (square images).
    pub size: usize,
    /// Number of vessels (random-walk strokes) per image.
    pub vessels_per_image: usize,
    /// Number of training images.
    pub train_images: usize,
    /// Number of test images.
    pub test_images: usize,
    /// Standard deviation of the background noise.
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SegmentationDatasetConfig {
    fn default() -> Self {
        Self {
            size: 24,
            vessels_per_image: 3,
            train_images: 48,
            test_images: 16,
            noise: 0.1,
            seed: 31,
        }
    }
}

impl SegmentationDatasetConfig {
    /// A smaller configuration used by fast unit tests and examples.
    pub fn tiny() -> Self {
        Self {
            size: 16,
            vessels_per_image: 2,
            train_images: 24,
            test_images: 8,
            noise: 0.08,
            seed: 32,
        }
    }
}

fn draw_vessel(mask: &mut [f32], size: usize, rng: &mut Rng) {
    // Random walk from a random border point with momentum.
    let mut x = rng.uniform_range(0.0, size as f32);
    let mut y = if rng.bernoulli(0.5) {
        0.0
    } else {
        size as f32 - 1.0
    };
    let mut angle = rng.uniform_range(0.0, std::f32::consts::TAU);
    let steps = size * 2;
    let thickness: f32 = if rng.bernoulli(0.3) { 1.5 } else { 0.8 };
    for _ in 0..steps {
        angle += rng.normal(0.0, 0.3);
        x += angle.cos();
        y += angle.sin();
        if x < 0.0 || y < 0.0 || x >= size as f32 || y >= size as f32 {
            break;
        }
        // Stamp a small disc.
        let r = thickness.ceil() as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                let px = x as isize + dx;
                let py = y as isize + dy;
                if px >= 0
                    && py >= 0
                    && (px as usize) < size
                    && (py as usize) < size
                    && ((dx * dx + dy * dy) as f32) <= thickness * thickness
                {
                    mask[py as usize * size + px as usize] = 1.0;
                }
            }
        }
    }
}

fn render_sample(config: &SegmentationDatasetConfig, rng: &mut Rng) -> (Tensor, Tensor) {
    let size = config.size;
    let mut mask = vec![0.0f32; size * size];
    for _ in 0..config.vessels_per_image {
        draw_vessel(&mut mask, size, rng);
    }
    // Background: low-frequency illumination gradient plus speckle noise.
    let gx = rng.uniform_range(-0.5, 0.5);
    let gy = rng.uniform_range(-0.5, 0.5);
    let mut image = vec![0.0f32; size * size];
    for y in 0..size {
        for x in 0..size {
            let background =
                gx * (x as f32 / size as f32 - 0.5) + gy * (y as f32 / size as f32 - 0.5);
            let vessel = mask[y * size + x];
            image[y * size + x] = background + 1.2 * vessel + rng.normal(0.0, config.noise);
        }
    }
    (
        Tensor::from_vec(image, &[1, size, size]).expect("consistent shape"),
        Tensor::from_vec(mask, &[1, size, size]).expect("consistent shape"),
    )
}

/// Generates the dataset described by `config`. Inputs are `[N, 1, H, W]`
/// images and targets `[N, 1, H, W]` binary masks.
pub fn generate(config: &SegmentationDatasetConfig) -> DenseSplit {
    let mut rng = Rng::seed_from(config.seed);
    let build = |count: usize, rng: &mut Rng| {
        let mut images = Vec::with_capacity(count);
        let mut masks = Vec::with_capacity(count);
        for _ in 0..count {
            let (img, mask) = render_sample(config, rng);
            images.push(img);
            masks.push(mask);
        }
        (
            Tensor::stack(&images).expect("uniform shapes"),
            Tensor::stack(&masks).expect("uniform shapes"),
        )
    };
    let (train_inputs, train_targets) = build(config.train_images, &mut rng);
    let (test_inputs, test_targets) = build(config.test_images, &mut rng);
    DenseSplit {
        train_inputs,
        train_targets,
        test_inputs,
        test_targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_mask_values() {
        let config = SegmentationDatasetConfig::tiny();
        let split = generate(&config);
        assert_eq!(
            split.train_inputs.dims(),
            &[config.train_images, 1, config.size, config.size]
        );
        assert_eq!(split.train_targets.dims(), split.train_inputs.dims());
        assert_eq!(split.test_len(), config.test_images);
        // Masks are strictly binary.
        assert!(split
            .train_targets
            .data()
            .iter()
            .all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn masks_are_sparse_but_nonempty() {
        let split = generate(&SegmentationDatasetConfig::default());
        let foreground = split.train_targets.mean();
        assert!(foreground > 0.01, "masks nearly empty: {foreground}");
        assert!(foreground < 0.5, "masks should be sparse: {foreground}");
    }

    #[test]
    fn vessel_pixels_are_brighter_than_background() {
        let split = generate(&SegmentationDatasetConfig::default());
        let mut vessel_sum = 0.0f32;
        let mut vessel_count = 0usize;
        let mut bg_sum = 0.0f32;
        let mut bg_count = 0usize;
        for (&img, &mask) in split
            .train_inputs
            .data()
            .iter()
            .zip(split.train_targets.data().iter())
        {
            if mask > 0.5 {
                vessel_sum += img;
                vessel_count += 1;
            } else {
                bg_sum += img;
                bg_count += 1;
            }
        }
        let vessel_mean = vessel_sum / vessel_count as f32;
        let bg_mean = bg_sum / bg_count as f32;
        assert!(
            vessel_mean > bg_mean + 0.5,
            "vessel {vessel_mean} vs background {bg_mean}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&SegmentationDatasetConfig::tiny());
        let b = generate(&SegmentationDatasetConfig::tiny());
        assert!(a.train_inputs.approx_eq(&b.train_inputs, 0.0));
        assert!(a.train_targets.approx_eq(&b.train_targets, 0.0));
    }
}
