//! Distribution-shift corruptions for the out-of-distribution experiments
//! (paper Sec. IV-E, Fig. 7).
//!
//! Two corruption families are provided, matching the paper's protocol:
//!
//! * [`rotate_images`] — rotates every image by a fixed angle (the paper uses
//!   12 stages of 7° increments);
//! * [`add_uniform_noise`] — adds uniform noise of increasing strength.

use invnorm_tensor::{Rng, Tensor};

/// Rotates a batch of `[N, C, H, W]` images counter-clockwise by `degrees`
/// around the image centre, using bilinear interpolation and zero padding.
///
/// # Panics
///
/// Panics if the input is not rank-4 (this is an experiment utility; shape
/// errors indicate a harness bug rather than a recoverable condition).
pub fn rotate_images(images: &Tensor, degrees: f32) -> Tensor {
    let d = images.dims();
    assert_eq!(d.len(), 4, "rotate_images expects [N, C, H, W]");
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let radians = degrees.to_radians();
    let (sin, cos) = radians.sin_cos();
    let cy = (h as f32 - 1.0) / 2.0;
    let cx = (w as f32 - 1.0) / 2.0;
    let src = images.data();
    let mut out = vec![0.0f32; images.numel()];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for y in 0..h {
                for x in 0..w {
                    // Inverse mapping: rotate the destination coordinate by
                    // -θ to find the source position.
                    let dy = y as f32 - cy;
                    let dx = x as f32 - cx;
                    let sx = cos * dx + sin * dy + cx;
                    let sy = -sin * dx + cos * dy + cy;
                    if sx < 0.0 || sy < 0.0 || sx > (w - 1) as f32 || sy > (h - 1) as f32 {
                        continue; // zero padding
                    }
                    let x0 = sx.floor() as usize;
                    let y0 = sy.floor() as usize;
                    let x1 = (x0 + 1).min(w - 1);
                    let y1 = (y0 + 1).min(h - 1);
                    let fx = sx - x0 as f32;
                    let fy = sy - y0 as f32;
                    let v00 = src[base + y0 * w + x0];
                    let v01 = src[base + y0 * w + x1];
                    let v10 = src[base + y1 * w + x0];
                    let v11 = src[base + y1 * w + x1];
                    out[base + y * w + x] = v00 * (1.0 - fx) * (1.0 - fy)
                        + v01 * fx * (1.0 - fy)
                        + v10 * (1.0 - fx) * fy
                        + v11 * fx * fy;
                }
            }
        }
    }
    Tensor::from_vec(out, d).expect("shape preserved")
}

/// Adds uniform noise `U(-strength, strength)` to every element of a batch.
pub fn add_uniform_noise(inputs: &Tensor, strength: f32, rng: &mut Rng) -> Tensor {
    if strength <= 0.0 {
        return inputs.clone();
    }
    let noise = Tensor::rand_uniform(inputs.dims(), -strength, strength, rng);
    inputs.add(&noise).expect("same shape")
}

/// The paper's rotation schedule: 12 stages in 7° increments (0° excluded).
pub fn paper_rotation_stages() -> Vec<f32> {
    (1..=12).map(|i| i as f32 * 7.0).collect()
}

/// A noise-strength schedule of `stages` evenly spaced levels up to
/// `max_strength` (0 excluded).
pub fn noise_stages(stages: usize, max_strength: f32) -> Vec<f32> {
    (1..=stages)
        .map(|i| max_strength * i as f32 / stages as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rotation_is_identity() {
        let mut rng = Rng::seed_from(1);
        let images = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let rotated = rotate_images(&images, 0.0);
        assert!(rotated.approx_eq(&images, 1e-5));
    }

    #[test]
    fn rotation_by_360_degrees_recovers_interior() {
        let mut rng = Rng::seed_from(2);
        let images = Tensor::randn(&[1, 1, 9, 9], 0.0, 1.0, &mut rng);
        let rotated = rotate_images(&images, 360.0);
        // The centre pixel is exactly preserved.
        assert!(
            (rotated.get(&[0, 0, 4, 4]).unwrap() - images.get(&[0, 0, 4, 4]).unwrap()).abs() < 1e-4
        );
    }

    #[test]
    fn rotation_moves_off_center_mass() {
        // A bright pixel off-centre must move under a 90° rotation.
        let mut images = Tensor::zeros(&[1, 1, 9, 9]);
        images.set(&[0, 0, 4, 8], 1.0).unwrap();
        let rotated = rotate_images(&images, 90.0);
        assert!(rotated.get(&[0, 0, 4, 8]).unwrap() < 0.5);
        assert!(rotated.sum() > 0.5, "mass should survive the rotation");
    }

    #[test]
    fn larger_rotations_change_images_more() {
        let mut rng = Rng::seed_from(3);
        let images = Tensor::randn(&[2, 1, 12, 12], 0.0, 1.0, &mut rng);
        let small = rotate_images(&images, 7.0);
        let large = rotate_images(&images, 70.0);
        let d_small = small.sub(&images).unwrap().abs().mean();
        let d_large = large.sub(&images).unwrap().abs().mean();
        assert!(d_large > d_small);
    }

    #[test]
    fn uniform_noise_bounded_and_zero_strength_identity() {
        let mut rng = Rng::seed_from(4);
        let x = Tensor::zeros(&[4, 16]);
        let noisy = add_uniform_noise(&x, 0.5, &mut rng);
        assert!(noisy.abs().max() <= 0.5);
        assert!(noisy.std() > 0.05);
        let same = add_uniform_noise(&x, 0.0, &mut rng);
        assert!(same.approx_eq(&x, 0.0));
    }

    #[test]
    fn schedules_match_paper() {
        let rotations = paper_rotation_stages();
        assert_eq!(rotations.len(), 12);
        assert_eq!(rotations[0], 7.0);
        assert_eq!(rotations[11], 84.0);
        let noise = noise_stages(5, 1.0);
        assert_eq!(noise.len(), 5);
        assert!((noise[4] - 1.0).abs() < 1e-6);
        assert!(noise.windows(2).all(|w| w[1] > w[0]));
    }
}
