//! Seeded random number utilities.
//!
//! Every stochastic component of the workspace — parameter initialization,
//! dropout mask sampling, synthetic datasets and fault injection — draws its
//! randomness through [`Rng`], a small wrapper around a SplitMix64/xoshiro-style
//! generator with convenience methods for the distributions the paper needs:
//! uniform, Gaussian (Box–Muller) and Bernoulli masks.
//!
//! Keeping the generator local (a self-contained xoshiro256++ seeded through
//! SplitMix64, no external crates) makes Monte-Carlo fault simulation
//! reproducible from a single `u64` seed per simulated chip instance.

/// Seeded random number generator used across the `invnorm` workspace.
///
/// The core generator is xoshiro256++ (Blackman & Vigna), whose 256-bit state
/// is expanded from the 64-bit seed with SplitMix64 — the standard seeding
/// recipe, which guarantees distinct, well-mixed states even for adjacent
/// seeds like the per-chip-instance streams the Monte-Carlo engine derives.
///
/// # Example
///
/// ```
/// use invnorm_tensor::Rng;
///
/// let mut rng = Rng::seed_from(42);
/// let x = rng.normal(0.0, 1.0);
/// assert!(x.is_finite());
/// let mask = rng.bernoulli_mask(10, 0.5);
/// assert_eq!(mask.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output of the xoshiro256++ generator.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; useful for giving each
    /// Monte-Carlo chip instance its own stream.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Use the top 24 bits: the largest mantissa f32 can represent exactly.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform_range requires lo <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` (Lemire's multiply-shift reduction; the
    /// tiny bias over a full 64-bit draw is far below anything observable).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f32 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f32 = 1.0 - self.uniform();
        let u2: f32 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.standard_normal()
    }

    /// Bernoulli trial that succeeds with probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Vector of `n` binary keep/drop values: each entry is `1.0` with
    /// probability `1 - p_drop` and `0.0` with probability `p_drop`.
    ///
    /// This is the "Dropout mask" of the paper: a mask value of `0` means the
    /// corresponding affine weight/bias is dropped.
    pub fn bernoulli_mask(&mut self, n: usize, p_drop: f32) -> Vec<f32> {
        (0..n)
            .map(|_| if self.bernoulli(p_drop) { 0.0 } else { 1.0 })
            .collect()
    }

    /// Vector of `n` standard-normal samples.
    pub fn normal_vec(&mut self, n: usize, mean: f32, std: f32) -> Vec<f32> {
        (0..n).map(|_| self.normal(mean, std)).collect()
    }

    /// Vector of `n` uniform samples in `[lo, hi)`.
    pub fn uniform_vec(&mut self, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n).map(|_| self.uniform_range(lo, hi)).collect()
    }

    /// Samples `k` distinct indices from `[0, n)` (Floyd's algorithm for small
    /// `k`, falling back to a partial Fisher–Yates shuffle when `k` is large).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        if k == 0 {
            return Vec::new();
        }
        if k * 3 < n {
            // Rejection sampling is fast when k << n.
            let mut chosen = std::collections::HashSet::with_capacity(k);
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let idx = self.index(n);
                if chosen.insert(idx) {
                    out.push(idx);
                }
            }
            out
        } else {
            let mut pool: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.index(n - i);
                pool.swap(i, j);
            }
            pool.truncate(k);
            pool
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let xa: Vec<f32> = (0..16).map(|_| a.uniform()).collect();
        let xb: Vec<f32> = (0..16).map(|_| b.uniform()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed_from(123);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn bernoulli_mask_rate() {
        let mut rng = Rng::seed_from(9);
        let mask = rng.bernoulli_mask(10_000, 0.3);
        let dropped = mask.iter().filter(|&&m| m == 0.0).count();
        let rate = dropped as f32 / mask.len() as f32;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
        assert!(mask.iter().all(|&m| m == 0.0 || m == 1.0));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::seed_from(11);
        assert!(rng.bernoulli_mask(100, 0.0).iter().all(|&m| m == 1.0));
        assert!(rng.bernoulli_mask(100, 1.0).iter().all(|&m| m == 0.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.bernoulli_mask(100, 2.0).iter().all(|&m| m == 0.0));
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::seed_from(5);
        for &(n, k) in &[(100usize, 5usize), (10, 10), (50, 40), (7, 0)] {
            let idx = rng.sample_indices(n, k);
            assert_eq!(idx.len(), k);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), k, "indices must be distinct");
            assert!(idx.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from(42);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let a: Vec<f32> = (0..8).map(|_| c1.uniform()).collect();
        let b: Vec<f32> = (0..8).map(|_| c2.uniform()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(77);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }
}
