//! # invnorm-tensor
//!
//! Minimal, dependency-light N-dimensional `f32` tensor library used as the
//! numerical substrate of the `invnorm` workspace (a Rust reproduction of
//! *"Enhancing Reliability of Neural Networks at the Edge: Inverted
//! Normalization with Stochastic Affine Transformations"*, DATE 2024).
//!
//! The paper's method is a layer-level modification of deep neural networks;
//! reproducing it offline requires a trainable tensor/NN stack. This crate
//! provides the tensor part:
//!
//! * [`Tensor`] — a contiguous, row-major, owned `f32` tensor with shape
//!   metadata, element-wise arithmetic, broadcasting against per-channel
//!   vectors, and reductions.
//! * [`ops`] — matrix multiplication, transposition, softmax, argmax and
//!   axis reductions used by the layer implementations.
//! * [`gemm`] — the cache-blocked, register-tiled, parallel f32 GEMM with
//!   `alpha`/`beta` accumulation that all matrix products route through.
//! * [`qgemm`] — the i8×i8→i32 sibling of [`gemm`] for the quantized
//!   inference path (bit-exact vs. the integer oracle in `ops::reference`).
//! * [`dispatch`] — runtime SIMD kernel-tier selection (portable / AVX2 /
//!   AVX-512) shared by [`gemm`], [`qgemm`] and [`vecmath`], with an env/
//!   programmatic override for pinning a tier.
//! * [`vecmath`] — tier-dispatched vectorized elementwise math (activations,
//!   exp/softmax passes, normalization) with bit-identical per-lane
//!   semantics across all tiers.
//! * [`scratch`] — reusable workspace buffers so hot-path kernels allocate
//!   nothing in steady state.
//! * [`conv`] — im2col/col2im based 1-D and 2-D convolution kernels (forward
//!   and the gradient products needed for backward passes).
//! * [`pool`] — max/average pooling kernels with argmax bookkeeping.
//! * [`rng`] — seeded random number utilities (uniform, Gaussian via
//!   Box–Muller, Bernoulli masks) so every experiment is reproducible.
//! * [`telemetry`] — opt-in, zero-steady-state-allocation phase spans,
//!   engine counters and chrome-trace export shared by the whole workspace.
//!
//! # Example
//!
//! ```
//! use invnorm_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::ones(&[2, 2]);
//! let c = a.add(&b).unwrap();
//! assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
//! ```

// The one crate allowed to contain `unsafe` (lint rule R2). Every
// unsafe operation inside an `unsafe fn` must still be acknowledged
// with a scoped `unsafe {}` block and its own SAFETY comment.
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]

pub mod arena;
pub mod conv;
pub mod dispatch;
pub mod error;
pub mod gemm;
pub mod ops;
pub mod pool;
pub mod qgemm;
pub mod rng;
pub mod scratch;
pub mod shape;
pub mod stats;
pub mod telemetry;
pub mod tensor;
pub mod vecmath;

pub use arena::{Arena, ArenaSlot, DirtyRows};
pub use error::TensorError;
pub use rng::Rng;
pub use scratch::Scratch;
pub use shape::Shape;
pub use telemetry::{RunTelemetry, Telemetry};
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
