//! Bump-arena buffer management for compiled inference plans.
//!
//! A compiled plan (see `invnorm_nn::plan`) walks a network once for a fixed
//! input shape and reserves every intermediate buffer it will ever need —
//! activations, im2col patch matrices, GEMM staging, quantized codes,
//! integer accumulators — as disjoint [`ArenaSlot`] ranges of one [`Arena`]
//! allocation per element type. Steady-state plan forwards then perform
//! **zero** heap allocations: every buffer is a range into the sealed arena.
//!
//! Reservation happens in a *build phase* ([`Arena::reserve`]) that only
//! advances a cursor; [`Arena::seal`] performs the single backing allocation.
//! At execution time, kernels borrow several slots at once through
//! [`Arena::many_mut`], which checks the ranges are disjoint and in bounds
//! before handing out simultaneous mutable slices.
//!
//! [`DirtyRows`] is the companion bookkeeping type for cached packed-weight
//! panels: fault injectors mark which weight rows a realization touched, and
//! the plan re-packs only the panels covering those rows.
//!
//! lint: no_alloc

/// A reserved range of an [`Arena`], handed out during the build phase and
/// resolved to a slice at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaSlot {
    start: usize,
    len: usize,
}

impl ArenaSlot {
    /// Number of elements in the slot.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slot is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn end(&self) -> usize {
        self.start + self.len
    }

    fn overlaps(&self, other: &ArenaSlot) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// A growable bump arena handing out all per-plan buffers from one
/// allocation.
///
/// The element type is generic so the f32 activation arena, the i8 code
/// arena and the i32 accumulator arena of a quantized plan share one
/// implementation.
#[derive(Debug, Default, Clone)]
pub struct Arena<T> {
    buf: Vec<T>,
    reserved: usize,
}

impl<T: Copy + Default> Arena<T> {
    /// Creates an empty arena in the build phase.
    // lint: alloc_ok(build-phase constructor; the arena exists to hoist
    // allocation out of the steady state)
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            reserved: 0,
        }
    }

    /// Reserves `len` elements and returns their slot. No allocation happens
    /// until [`Arena::seal`].
    pub fn reserve(&mut self, len: usize) -> ArenaSlot {
        let slot = ArenaSlot {
            start: self.reserved,
            len,
        };
        self.reserved += len;
        slot
    }

    /// Performs the single backing allocation covering every reservation,
    /// zero-initialising the storage (`T::default()`). Idempotent; calling
    /// after further [`Arena::reserve`]s grows the backing once more.
    pub fn seal(&mut self) {
        if self.buf.len() < self.reserved {
            self.buf.resize(self.reserved, T::default());
        }
    }

    /// Total elements reserved so far.
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// Capacity of the sealed backing buffer, in elements.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Immutable view of a slot.
    ///
    /// # Panics
    ///
    /// Panics when the arena is not sealed far enough to contain the slot.
    pub fn slot(&self, slot: ArenaSlot) -> &[T] {
        &self.buf[slot.start..slot.end()]
    }

    /// Mutable view of a slot.
    ///
    /// # Panics
    ///
    /// Panics when the arena is not sealed far enough to contain the slot.
    pub fn slot_mut(&mut self, slot: ArenaSlot) -> &mut [T] {
        &mut self.buf[slot.start..slot.end()]
    }

    /// Simultaneous mutable views of `N` slots (a kernel typically needs its
    /// input, output and scratch ranges at once).
    ///
    /// # Panics
    ///
    /// Panics when any slot is out of bounds or two slots overlap.
    pub fn many_mut<const N: usize>(&mut self, slots: [ArenaSlot; N]) -> [&mut [T]; N] {
        for (i, a) in slots.iter().enumerate() {
            assert!(a.end() <= self.buf.len(), "arena slot out of bounds");
            for b in slots.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "arena slots overlap");
            }
        }
        let ptr = self.buf.as_mut_ptr();
        // SAFETY: every slot lies inside `buf` (asserted above) and the
        // ranges are pairwise disjoint (asserted above), so the returned
        // slices never alias.
        slots.map(|s| unsafe { std::slice::from_raw_parts_mut(ptr.add(s.start), s.len) })
    }
}

/// A bitset over the rows of a `[rows, cols]` parameter, recording which rows
/// a fault realization touched.
///
/// Cached packed-weight panels consult this to re-pack **only dirty panels**
/// between Monte-Carlo realizations: sparse fault models (stuck-at, code-
/// domain bit flips) touch a small fraction of rows, so most of the packed
/// operand survives from one chip instance to the next.
#[derive(Debug, Default, Clone)]
pub struct DirtyRows {
    bits: Vec<u64>,
    rows: usize,
}

impl DirtyRows {
    /// Creates an all-clean set over `rows` rows.
    // lint: alloc_ok(build-phase constructor; the bitset is allocated once
    // per packed operand and reused across realizations)
    pub fn new(rows: usize) -> Self {
        Self {
            bits: vec![0u64; rows.div_ceil(64)],
            rows,
        }
    }

    /// Number of rows tracked.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Marks one row dirty.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    pub fn mark(&mut self, row: usize) {
        assert!(row < self.rows, "row {row} out of {} tracked", self.rows);
        self.bits[row / 64] |= 1u64 << (row % 64);
    }

    /// Marks every row dirty (dense fault models rewrite the whole tensor).
    pub fn mark_all(&mut self) {
        let full = self.rows / 64;
        self.bits[..full].fill(u64::MAX);
        if !self.rows.is_multiple_of(64) {
            self.bits[full] = (1u64 << (self.rows % 64)) - 1;
        }
    }

    /// Clears every mark.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Whether any row is marked.
    pub fn any(&self) -> bool {
        self.bits.iter().any(|&w| w != 0)
    }

    /// Whether `row` is marked.
    pub fn is_marked(&self, row: usize) -> bool {
        row < self.rows && self.bits[row / 64] & (1u64 << (row % 64)) != 0
    }

    /// Whether any row in `[lo, hi)` is marked.
    pub fn any_in(&self, lo: usize, hi: usize) -> bool {
        let hi = hi.min(self.rows);
        // Small ranges (one packed strip) — a simple scan is cheapest.
        (lo..hi).any(|r| self.is_marked(r))
    }

    /// Marks every row marked in `other` (set union).
    ///
    /// # Panics
    ///
    /// Panics when the two sets track a different number of rows.
    pub fn merge(&mut self, other: &DirtyRows) {
        assert_eq!(self.rows, other.rows, "DirtyRows size mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Number of marked rows.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Marks every row in `[lo, hi)` dirty.
    pub fn mark_range(&mut self, lo: usize, hi: usize) {
        for (w, mask) in range_words(self.rows, lo, hi) {
            self.bits[w] |= mask;
        }
    }

    /// Clears every mark in `[lo, hi)`.
    pub fn clear_range(&mut self, lo: usize, hi: usize) {
        for (w, mask) in range_words(self.rows, lo, hi) {
            self.bits[w] &= !mask;
        }
    }

    /// Set union restricted to `[lo, hi)`: marks every row of that range
    /// that is marked in `other`, leaving rows outside the range untouched.
    ///
    /// # Panics
    ///
    /// Panics when the two sets track a different number of rows.
    pub fn merge_range(&mut self, other: &DirtyRows, lo: usize, hi: usize) {
        assert_eq!(self.rows, other.rows, "DirtyRows size mismatch");
        for (w, mask) in range_words(self.rows, lo, hi) {
            self.bits[w] |= other.bits[w] & mask;
        }
    }

    /// Overwrites `[lo, hi)` with `other`'s marks for that range, leaving
    /// rows outside the range untouched.
    ///
    /// # Panics
    ///
    /// Panics when the two sets track a different number of rows.
    pub fn copy_range(&mut self, other: &DirtyRows, lo: usize, hi: usize) {
        assert_eq!(self.rows, other.rows, "DirtyRows size mismatch");
        for (w, mask) in range_words(self.rows, lo, hi) {
            self.bits[w] = (self.bits[w] & !mask) | (other.bits[w] & mask);
        }
    }

    /// Number of marked rows in `[lo, hi)`.
    pub fn count_in(&self, lo: usize, hi: usize) -> usize {
        range_words(self.rows, lo, hi)
            .map(|(w, mask)| (self.bits[w] & mask).count_ones() as usize)
            .sum()
    }
}

/// Iterates the `(word_index, mask)` pairs covering bit range `[lo, hi)` of a
/// bitset over `rows` bits, clamping to the tracked rows. Allocation-free —
/// the range methods above run inside steady-state plan refreshes.
fn range_words(rows: usize, lo: usize, hi: usize) -> impl Iterator<Item = (usize, u64)> {
    let hi = hi.min(rows);
    let (wl, wh) = if lo >= hi {
        (1, 0) // empty
    } else {
        (lo / 64, (hi - 1) / 64)
    };
    (wl..=wh).map(move |w| {
        let lo_bit = if w == wl { lo % 64 } else { 0 };
        let hi_bit = if w == wh { (hi - 1) % 64 + 1 } else { 64 };
        let width = hi_bit - lo_bit;
        let mask = if width == 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << lo_bit
        };
        (w, mask)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_seal_slot_roundtrip() {
        let mut arena: Arena<f32> = Arena::new();
        let a = arena.reserve(4);
        let b = arena.reserve(3);
        assert_eq!(arena.reserved(), 7);
        arena.seal();
        arena.slot_mut(a).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        arena.slot_mut(b).copy_from_slice(&[5.0, 6.0, 7.0]);
        assert_eq!(arena.slot(a), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(arena.slot(b), &[5.0, 6.0, 7.0]);
        assert!(!a.is_empty() && a.len() == 4);
    }

    #[test]
    fn seal_is_idempotent_and_growable() {
        let mut arena: Arena<i8> = Arena::new();
        let a = arena.reserve(8);
        arena.seal();
        let cap = arena.capacity();
        arena.seal();
        assert_eq!(arena.capacity(), cap);
        let b = arena.reserve(4);
        arena.seal();
        arena.slot_mut(b).fill(3);
        assert_eq!(arena.slot(a), &[0i8; 8]);
    }

    #[test]
    fn many_mut_hands_out_disjoint_slices() {
        let mut arena: Arena<f32> = Arena::new();
        let a = arena.reserve(2);
        let b = arena.reserve(2);
        let c = arena.reserve(2);
        arena.seal();
        let [sa, sb, sc] = arena.many_mut([a, b, c]);
        sa.fill(1.0);
        sb.fill(2.0);
        sc.copy_from_slice(&[sa[0] + sb[0], sa[1] * sb[1]]);
        assert_eq!(arena.slot(c), &[3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn many_mut_rejects_overlap() {
        let mut arena: Arena<f32> = Arena::new();
        let a = arena.reserve(4);
        arena.seal();
        let _ = arena.many_mut([a, a]);
    }

    #[test]
    fn dirty_rows_range_operations() {
        // Ranges crossing word boundaries (rows 60..70 span two u64 words).
        let mut d = DirtyRows::new(200);
        d.mark_range(60, 70);
        assert_eq!(d.count(), 10);
        assert_eq!(d.count_in(60, 70), 10);
        assert_eq!(d.count_in(0, 60), 0);
        assert!(d.is_marked(60) && d.is_marked(69) && !d.is_marked(70));
        d.clear_range(64, 66);
        assert_eq!(d.count(), 8);
        assert!(!d.is_marked(64) && !d.is_marked(65) && d.is_marked(66));

        let mut other = DirtyRows::new(200);
        other.mark_range(0, 200);
        let mut m = DirtyRows::new(200);
        m.merge_range(&other, 100, 130);
        assert_eq!(m.count(), 30);
        assert_eq!(m.count_in(100, 130), 30);

        // copy_range overwrites the range (clears what other lacks).
        let mut c = DirtyRows::new(200);
        c.mark_range(0, 200);
        let sparse = {
            let mut s = DirtyRows::new(200);
            s.mark(110);
            s
        };
        c.copy_range(&sparse, 100, 130);
        assert_eq!(c.count_in(100, 130), 1);
        assert!(c.is_marked(110) && c.is_marked(99) && c.is_marked(130));
        assert_eq!(c.count(), 200 - 30 + 1);

        // Degenerate ranges are no-ops.
        let before = c.count();
        c.mark_range(50, 50);
        c.clear_range(10, 10);
        assert_eq!(c.count(), before);
        // Ranges are clamped to the tracked rows.
        let mut e = DirtyRows::new(70);
        e.mark_range(64, 1000);
        assert_eq!(e.count(), 6);
    }

    #[test]
    fn dirty_rows_marking() {
        let mut d = DirtyRows::new(70);
        assert!(!d.any());
        d.mark(0);
        d.mark(69);
        assert!(d.any() && d.count() == 2);
        assert!(d.is_marked(0) && d.is_marked(69) && !d.is_marked(35));
        assert!(d.any_in(64, 70) && !d.any_in(1, 69 - 1));
        d.clear();
        assert!(!d.any());
        d.mark_all();
        assert_eq!(d.count(), 70);
        let mut other = DirtyRows::new(70);
        other.mark(3);
        d.clear();
        d.merge(&other);
        assert!(d.is_marked(3) && d.count() == 1);
    }
}
