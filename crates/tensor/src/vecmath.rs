//! Tier-dispatched vectorized elementwise math.
//!
//! The activation, softmax and normalization passes are memory-bound loops of
//! a few FLOPs per element; what keeps them off SIMD units in a generic
//! `x86-64` build is the codegen target, not the algorithm. Every function
//! here is written as a **per-lane scalar body** that is monomorphized behind
//! [`crate::dispatch`]-selected `#[target_feature]` trampolines: the AVX2 and
//! AVX-512 entry points let LLVM autovectorize the identical body with wider
//! registers, while the portable entry compiles it for the baseline target.
//!
//! ## Bit-identity across tiers
//!
//! Unlike the f32 GEMM (where the portable tier rounds differently because it
//! lacks FMA), every function in this module is **bit-identical across all
//! kernel tiers**:
//!
//! * each output lane depends only on its own input lane(s) — there are no
//!   cross-lane reductions inside the dispatched bodies (softmax's max and
//!   sum reductions stay sequential scalar code at the call site), and
//! * the bodies avoid `mul_add`, and Rust never enables floating-point
//!   contraction, so `a * b + c` compiles to the same separate multiply and
//!   add under every `target_feature` set.
//!
//! Widening the vectors therefore changes *which register* a lane sits in,
//! never its rounding. The transcendental functions ([`exp_scalar`],
//! [`sigmoid_scalar`], [`tanh_scalar`]) use an explicit branch-free
//! polynomial (Cephes `expf`, the classic SIMD-friendly formulation) instead
//! of libm, both so the vector tiers can actually vectorize them and so the
//! scalar fallback computes the exact same thing.
//!
//! lint: no_alloc

use crate::dispatch::{self, KernelTier};

/// Defines a dispatched elementwise function: the given body is compiled
/// once per kernel tier behind `#[target_feature]` trampolines and the
/// wrapper selects a tier with [`dispatch::active`]. Bodies must keep
/// per-lane semantics (see the module docs) so every tier stays
/// bit-identical.
macro_rules! dispatched {
    (
        $(#[$meta:meta])*
        pub fn $name:ident($($arg:ident : $ty:ty),* $(,)?) $body:block
    ) => {
        $(#[$meta])*
        pub fn $name($($arg: $ty),*) {
            #[inline(always)]
            #[allow(clippy::too_many_arguments)]
            fn body($($arg: $ty),*) $body
            // SAFETY: the tier bodies contain no unsafe operations; they
            // are `unsafe fn` only because `#[target_feature]` makes them
            // callable solely from a matching-feature context, which the
            // dispatch below guarantees.
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2")]
            #[allow(clippy::too_many_arguments)]
            unsafe fn body_avx2($($arg: $ty),*) {
                body($($arg),*)
            }
            // SAFETY: as for `body_avx2` — no unsafe operations inside;
            // `unsafe fn` only because of `#[target_feature]`.
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx512f", enable = "avx512bw")]
            #[allow(clippy::too_many_arguments)]
            unsafe fn body_avx512($($arg: $ty),*) {
                body($($arg),*)
            }
            match dispatch::active() {
                // SAFETY: `dispatch::active` (and `force`, which asserts)
                // never returns a tier the host CPU does not support.
                #[cfg(target_arch = "x86_64")]
                KernelTier::Avx2 => unsafe { body_avx2($($arg),*) },
                #[cfg(target_arch = "x86_64")]
                KernelTier::Avx512 => unsafe { body_avx512($($arg),*) },
                _ => body($($arg),*),
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Scalar transcendental kernels (shared per-lane bodies).
// ---------------------------------------------------------------------------

/// Inputs below this produce the smallest normal-range result the polynomial
/// supports; together with [`EXP_HI`] it keeps the exponent bit-trick in
/// range (`n ∈ [-126, 127]`).
const EXP_LO: f32 = -87.336_55;
/// Inputs above this would overflow the `2^n` scale factor.
const EXP_HI: f32 = 88.02;
/// `ln 2` split into a high part exact in f32 and a low correction, so the
/// range reduction `r = x - n·ln2` is computed in extended effective
/// precision (Cody–Waite). The published digits are kept verbatim.
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;
/// Degree-5 minimax polynomial for `e^r - 1 - r` on `|r| ≤ ln2/2` (Cephes,
/// published digits kept verbatim).
const EXP_P0: f32 = 1.987_569_2e-4;
const EXP_P1: f32 = 1.398_199_9e-3;
const EXP_P2: f32 = 8.333_452e-3;
const EXP_P3: f32 = 4.166_579_6e-2;
const EXP_P4: f32 = 1.666_666_6e-1;
#[allow(clippy::excessive_precision)]
const EXP_P5: f32 = 5.000_000_2e-1;

/// Branch-free polynomial `e^x` (relative error ≲ 1e-7 over the clamped
/// range; inputs outside `[-87.34, 88.02]` saturate to the boundary values
/// rather than producing 0/∞).
///
/// This is the per-lane body every dispatched exp-family function uses, so
/// its result is bit-identical across kernel tiers — and it is `pub` so
/// remaining scalar call sites (LSTM cell tanh, losses) compute the exact
/// same values as the vectorized paths.
#[inline(always)]
pub fn exp_scalar(x: f32) -> f32 {
    let x = x.clamp(EXP_LO, EXP_HI);
    // x = n·ln2 + r with n integral and |r| ≤ ln2/2 (+1 ulp of slack).
    let n = (x * std::f32::consts::LOG2_E).round();
    let r = x - n * LN2_HI;
    let r = r - n * LN2_LO;
    let mut p = EXP_P0;
    p = p * r + EXP_P1;
    p = p * r + EXP_P2;
    p = p * r + EXP_P3;
    p = p * r + EXP_P4;
    p = p * r + EXP_P5;
    let y = p * (r * r) + r + 1.0;
    // 2^n via exponent bits: n ∈ [-126, 127] after the clamp, so the biased
    // exponent stays in the normal range.
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    y * scale
}

/// Logistic sigmoid `1 / (1 + e^{-x})` on the shared [`exp_scalar`] body;
/// output is always within `[0, 1]`.
#[inline(always)]
pub fn sigmoid_scalar(x: f32) -> f32 {
    1.0 / (1.0 + exp_scalar(-x))
}

/// Hyperbolic tangent `(e^{2x} - 1) / (e^{2x} + 1)` on the shared
/// [`exp_scalar`] body; output magnitude never exceeds 1 (the numerator's
/// magnitude never exceeds the denominator's), which downstream boundedness
/// arguments (LSTM state bounds) rely on.
#[inline(always)]
pub fn tanh_scalar(x: f32) -> f32 {
    let e = exp_scalar(2.0 * x);
    (e - 1.0) / (e + 1.0)
}

// ---------------------------------------------------------------------------
// Dispatched slice kernels.
// ---------------------------------------------------------------------------

dispatched! {
    /// `dst[i] = max(0, src[i])` (compare-select form).
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` lengths differ.
    pub fn relu(src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d = if s > 0.0 { s } else { 0.0 };
        }
    }
}

dispatched! {
    /// In-place [`relu`].
    pub fn relu_mut(x: &mut [f32]) {
        for v in x.iter_mut() {
            let s = *v;
            *v = if s > 0.0 { s } else { 0.0 };
        }
    }
}

dispatched! {
    /// `dst[i] = src[i]` for positive inputs, `slope * src[i]` otherwise.
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` lengths differ.
    pub fn leaky_relu(src: &[f32], dst: &mut [f32], slope: f32) {
        assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d = if s > 0.0 { s } else { slope * s };
        }
    }
}

dispatched! {
    /// In-place [`leaky_relu`].
    pub fn leaky_relu_mut(x: &mut [f32], slope: f32) {
        for v in x.iter_mut() {
            let s = *v;
            *v = if s > 0.0 { s } else { slope * s };
        }
    }
}

dispatched! {
    /// `dst[i] = clamp(src[i], -1, 1)`.
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` lengths differ.
    pub fn hardtanh(src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d = s.clamp(-1.0, 1.0);
        }
    }
}

dispatched! {
    /// `dst[i] = sign(src[i])` with `sign(0) = +1` — the binarized-network
    /// forward activation (straight-through gradient lives at the layer).
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` lengths differ.
    pub fn sign_ste(src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d = if s >= 0.0 { 1.0 } else { -1.0 };
        }
    }
}

dispatched! {
    /// `dst[i] = sigmoid(src[i])` (see [`sigmoid_scalar`]).
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` lengths differ.
    pub fn sigmoid(src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d = sigmoid_scalar(s);
        }
    }
}

dispatched! {
    /// In-place [`sigmoid`].
    pub fn sigmoid_mut(x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = sigmoid_scalar(*v);
        }
    }
}

dispatched! {
    /// `dst[i] = tanh(src[i])` (see [`tanh_scalar`]).
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` lengths differ.
    pub fn tanh(src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d = tanh_scalar(s);
        }
    }
}

dispatched! {
    /// In-place [`tanh`].
    pub fn tanh_mut(x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = tanh_scalar(*v);
        }
    }
}

dispatched! {
    /// `dst[i] = e^{src[i] - shift}` — the vectorizable pass of a stable
    /// softmax (the caller supplies the row max as `shift` and keeps the sum
    /// reduction sequential).
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` lengths differ.
    pub fn exp_sub(src: &[f32], dst: &mut [f32], shift: f32) {
        assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d = exp_scalar(s - shift);
        }
    }
}

dispatched! {
    /// `x[i] /= denom` — softmax's normalization pass (division per lane, not
    /// multiplication by a reciprocal, to match the scalar formulation
    /// exactly).
    pub fn div_scalar_mut(x: &mut [f32], denom: f32) {
        for v in x.iter_mut() {
            *v /= denom;
        }
    }
}

dispatched! {
    /// `dst[i] = g * ((src[i] - mean) * inv_std) + b` — the per-channel
    /// normalize-then-affine pass of BatchNorm/GroupNorm, in the exact
    /// operation order of the scalar formulation (no FMA).
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` lengths differ.
    pub fn normalize_affine(src: &[f32], dst: &mut [f32], mean: f32, inv_std: f32, g: f32, b: f32) {
        assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            let xh = (s - mean) * inv_std;
            *d = g * xh + b;
        }
    }
}

dispatched! {
    /// [`normalize_affine`] that also stores the normalized value `x̂` (the
    /// training path caches it for the backward pass).
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths differ.
    pub fn normalize_affine2(
        src: &[f32],
        xhat: &mut [f32],
        out: &mut [f32],
        mean: f32,
        inv_std: f32,
        g: f32,
        b: f32,
    ) {
        assert_eq!(src.len(), xhat.len());
        assert_eq!(src.len(), out.len());
        for i in 0..src.len() {
            let xh = (src[i] - mean) * inv_std;
            xhat[i] = xh;
            out[i] = g * xh + b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_inputs() -> Vec<f32> {
        let mut v: Vec<f32> = (-4000..=4000).map(|i| i as f32 * 0.01).collect();
        v.extend_from_slice(&[
            0.0, -0.0, 1e-8, -1e-8, 50.0, -50.0, 87.0, -87.0, 100.0, -100.0, 1e4, -1e4,
        ]);
        v
    }

    #[test]
    fn exp_matches_libm_to_polynomial_accuracy() {
        for &x in &sample_inputs() {
            if !(EXP_LO..=EXP_HI).contains(&x) {
                continue;
            }
            let got = exp_scalar(x);
            let want = x.exp();
            let rel = (got - want).abs() / want.max(f32::MIN_POSITIVE);
            assert!(rel < 5e-7, "exp({x}): got {got}, want {want}, rel {rel}");
        }
        // Saturation outside the clamp range: finite, monotone endpoints.
        assert!(exp_scalar(1e4).is_finite());
        assert!(exp_scalar(-1e4) > 0.0);
        assert_eq!(exp_scalar(1e4), exp_scalar(EXP_HI));
        assert_eq!(exp_scalar(-1e4), exp_scalar(EXP_LO));
    }

    #[test]
    fn sigmoid_and_tanh_match_libm_and_stay_bounded() {
        for &x in &sample_inputs() {
            let s = sigmoid_scalar(x);
            assert!((0.0..=1.0).contains(&s), "sigmoid({x}) = {s} out of [0,1]");
            assert!(
                (s - 1.0 / (1.0 + (-x).exp())).abs() < 2e-7,
                "sigmoid({x}) = {s}"
            );
            let t = tanh_scalar(x);
            assert!(t.abs() <= 1.0, "tanh({x}) = {t} exceeds 1 in magnitude");
            assert!(
                (t - x.tanh()).abs() < 3e-7,
                "tanh({x}) = {t} vs {}",
                x.tanh()
            );
        }
        assert_eq!(tanh_scalar(0.0), 0.0);
        assert_eq!(tanh_scalar(1e4), 1.0);
        assert_eq!(tanh_scalar(-1e4), -1.0);
    }

    #[test]
    fn slice_ops_match_their_scalar_definitions() {
        let src = sample_inputs();
        let n = src.len();
        let mut dst = vec![0.0f32; n];

        relu(&src, &mut dst);
        for (i, (&s, &d)) in src.iter().zip(dst.iter()).enumerate() {
            assert_eq!(d, if s > 0.0 { s } else { 0.0 }, "relu lane {i}");
        }
        let mut inplace = src.clone();
        relu_mut(&mut inplace);
        assert_eq!(inplace, dst, "relu vs relu_mut");

        leaky_relu(&src, &mut dst, 0.1);
        let mut inplace = src.clone();
        leaky_relu_mut(&mut inplace, 0.1);
        assert_eq!(inplace, dst, "leaky_relu vs leaky_relu_mut");

        sigmoid(&src, &mut dst);
        for (&s, &d) in src.iter().zip(dst.iter()) {
            assert_eq!(d, sigmoid_scalar(s));
        }
        let mut inplace = src.clone();
        sigmoid_mut(&mut inplace);
        assert_eq!(inplace, dst, "sigmoid vs sigmoid_mut");

        tanh(&src, &mut dst);
        for (&s, &d) in src.iter().zip(dst.iter()) {
            assert_eq!(d, tanh_scalar(s));
        }
        let mut inplace = src.clone();
        tanh_mut(&mut inplace);
        assert_eq!(inplace, dst, "tanh vs tanh_mut");

        hardtanh(&src, &mut dst);
        for (&s, &d) in src.iter().zip(dst.iter()) {
            assert_eq!(d, s.clamp(-1.0, 1.0));
        }
        sign_ste(&src, &mut dst);
        for (&s, &d) in src.iter().zip(dst.iter()) {
            assert_eq!(d, if s >= 0.0 { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn exp_sub_and_div_form_a_stable_softmax() {
        let row = [1.0f32, 3.0, -2.0, 0.5, 3.0];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut e = [0.0f32; 5];
        exp_sub(&row, &mut e, max);
        let denom: f32 = e.iter().sum();
        div_scalar_mut(&mut e, denom);
        let sum: f32 = e.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // The two equal maxima map to equal probabilities, the largest ones.
        assert_eq!(e[1], e[4]);
        assert!(e.iter().all(|&p| p <= e[1]));
    }

    #[test]
    fn normalize_affine_matches_scalar_order_and_dual_write() {
        let src = [0.5f32, -1.5, 2.0, 0.0, 7.25];
        let (mean, inv_std, g, b) = (0.4f32, 1.7f32, 1.3f32, -0.2f32);
        let mut dst = [0.0f32; 5];
        normalize_affine(&src, &mut dst, mean, inv_std, g, b);
        let mut xhat = [0.0f32; 5];
        let mut out = [0.0f32; 5];
        normalize_affine2(&src, &mut xhat, &mut out, mean, inv_std, g, b);
        for i in 0..src.len() {
            let xh = (src[i] - mean) * inv_std;
            assert_eq!(xhat[i], xh);
            assert_eq!(dst[i], g * xh + b);
            assert_eq!(out[i], dst[i]);
        }
    }
}
