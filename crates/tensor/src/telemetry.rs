//! Zero-allocation runtime telemetry: phase spans, engine counters and
//! chrome-trace export.
//!
//! The Monte-Carlo engine ladder's performance hinges on internals that are
//! invisible from the outside — frozen-input cache hits, dirty-row repacks
//! vs uniform-scale vs sparse cell scatters, wide-GEMM batching, ladder
//! fallbacks. This module makes those internals observable without touching
//! the arithmetic or the allocation story:
//!
//! * **Span layer** — [`span`] returns an RAII guard over a fixed [`Phase`]
//!   enum; on drop it adds the elapsed nanoseconds to a global per-phase
//!   accumulator and records a `(phase, start, end)` event into a
//!   preallocated per-thread ring buffer. In steady state (after the first
//!   span on a thread materializes its ring) an enabled span performs **zero
//!   heap allocations** — enforced by a counting-allocator test.
//! * **Counter registry** — [`count`] bumps one of the fixed [`Counter`]
//!   slots with a relaxed atomic add. Counters record *decisions* (cache
//!   hit vs miss, repack vs scale vs scatter) that wall time alone cannot
//!   separate.
//! * **Exporters** — [`Telemetry::chrome_trace`] renders every ring as a
//!   `chrome://tracing` / Perfetto `trace.json` with balanced `B`/`E`
//!   events; [`RunTelemetry`] captures the per-run delta of phases and
//!   counters (via [`RunScope`]) with a human-readable `Display` table, a
//!   hand-rolled JSON rendering, and a per-run Welford convergence stream
//!   over the Monte-Carlo metric vector.
//!
//! Everything is gated behind the process-wide [`Telemetry::enable`] switch,
//! which defaults to **off**: a disabled span or counter costs one relaxed
//! atomic load and a predicted branch, so instrumented hot paths stay within
//! noise of the uninstrumented build. Instrumentation never changes any
//! computed value — bit-identity of the engine stack is untouched either way
//! (tested).
//!
//! The registry is process-global: phase totals and counters sum over every
//! thread (worker spans accumulate in parallel, so phase totals behave like
//! CPU time, not wall time), and concurrent Monte-Carlo runs share one
//! registry. Scope one run at a time for attributable reports.
//!
//! lint: no_alloc

use crate::stats::RunningStats;
use serde::{Deserialize, Serialize};
use std::cell::OnceCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The instrumented phases of the Monte-Carlo stack, fixed at compile time
/// so span recording indexes a flat array instead of hashing names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum Phase {
    /// Plan compilation (`Plan::compile` / `Plan::compile_batched`).
    Compile = 0,
    /// Initial operand packing (`PackedA/B::pack`, `QPackedA/B::pack`).
    Pack = 1,
    /// Panel refresh between realizations (`repack_rows`, `scale_from`).
    Repack = 2,
    /// Fault realization (injector `inject`/`realize_*` entry points).
    Inject = 3,
    /// Network forward evaluation (direct, batched or planned).
    Forward = 4,
    /// Blocked (q)GEMM kernel invocations.
    Gemm = 5,
    /// im2col patch-matrix extraction.
    Im2col = 6,
    /// Metric evaluation over a realization's output.
    Metric = 7,
}

/// Number of [`Phase`] variants (the span accumulators are flat arrays).
pub const PHASE_COUNT: usize = 8;

/// Every phase, in `repr` order.
pub const PHASES: [Phase; PHASE_COUNT] = [
    Phase::Compile,
    Phase::Pack,
    Phase::Repack,
    Phase::Inject,
    Phase::Forward,
    Phase::Gemm,
    Phase::Im2col,
    Phase::Metric,
];

impl Phase {
    /// Stable display/export name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compile => "compile",
            Phase::Pack => "pack",
            Phase::Repack => "repack",
            Phase::Inject => "inject",
            Phase::Forward => "forward",
            Phase::Gemm => "gemm",
            Phase::Im2col => "im2col",
            Phase::Metric => "metric",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The fixed engine-counter registry: each slot is a relaxed [`AtomicU64`]
/// recording how often an invisible decision fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum Counter {
    /// Frozen-input cache consulted and valid (packed activation panel /
    /// im2col patches / quantized codes reused).
    FrozenInputHits = 0,
    /// Frozen-input cache consulted but stale — the input-derived operands
    /// were re-derived and re-cached.
    FrozenInputMisses = 1,
    /// Weight-matrix rows re-packed through `repack_rows` (dirty-row panel
    /// refresh), summed over realizations.
    RowsRepacked = 2,
    /// `scale_from` uniform-scale fast paths taken (retention drift folded
    /// into the packed panels without touching the weights).
    UniformScales = 3,
    /// Sparse packed-domain cell scatters via `write_cell` (stuck-at /
    /// line-defect realizations landing straight in the panels).
    CellScatters = 4,
    /// Fused wide-GEMM invocations (`[N, B·out]` product over the stacked
    /// realization operand of a frozen layer).
    WideGemms = 5,
    /// Engine-ladder rungs skipped by `run_auto` (one per recorded
    /// `FallbackStep`).
    LadderFallbacks = 6,
    /// Batched-plan recompilations triggered by a tail batch smaller than
    /// the steady-state stack.
    TailRecompiles = 7,
    /// Chip instances left unexecuted when a sweep was interrupted by its
    /// `RunBudget` (deadline expiry or cooperative cancellation).
    CancelledRuns = 8,
    /// Chip instances quarantined out of the aggregate (panicking worker or
    /// non-finite per-run metric).
    QuarantinedRuns = 9,
    /// Chip instances skipped on resume because a `SweepCheckpoint` already
    /// carried their metric.
    ResumeSkips = 10,
}

/// Number of [`Counter`] variants.
pub const COUNTER_COUNT: usize = 11;

/// Every counter, in `repr` order.
pub const COUNTERS: [Counter; COUNTER_COUNT] = [
    Counter::FrozenInputHits,
    Counter::FrozenInputMisses,
    Counter::RowsRepacked,
    Counter::UniformScales,
    Counter::CellScatters,
    Counter::WideGemms,
    Counter::LadderFallbacks,
    Counter::TailRecompiles,
    Counter::CancelledRuns,
    Counter::QuarantinedRuns,
    Counter::ResumeSkips,
];

impl Counter {
    /// Stable display/export name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::FrozenInputHits => "frozen_input_hits",
            Counter::FrozenInputMisses => "frozen_input_misses",
            Counter::RowsRepacked => "rows_repacked",
            Counter::UniformScales => "uniform_scales",
            Counter::CellScatters => "cell_scatters",
            Counter::WideGemms => "wide_gemms",
            Counter::LadderFallbacks => "ladder_fallbacks",
            Counter::TailRecompiles => "tail_recompiles",
            Counter::CancelledRuns => "cancelled_runs",
            Counter::QuarantinedRuns => "quarantined_runs",
            Counter::ResumeSkips => "resume_skips",
        }
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Span events retained per thread for the chrome-trace export; older events
/// wrap around (the phase/counter totals are never lossy, only the trace).
pub const RING_CAPACITY: usize = 8192;

// Ordering contract: Relaxed everywhere. Telemetry is monotonic counting —
// readers only need eventually-consistent totals, never happens-before
// edges with the counted work, and a hot-path fetch_add must stay as cheap
// as the instrumented code around it.
static ENABLED: AtomicBool = AtomicBool::new(false);
// Ordering contract: Relaxed — same monotonic-counter rationale as ENABLED.
static PHASE_NS: [AtomicU64; PHASE_COUNT] = [const { AtomicU64::new(0) }; PHASE_COUNT];
// Ordering contract: Relaxed — same monotonic-counter rationale as ENABLED.
static PHASE_HITS: [AtomicU64; PHASE_COUNT] = [const { AtomicU64::new(0) }; PHASE_COUNT];
// Ordering contract: Relaxed — same monotonic-counter rationale as ENABLED.
static COUNTER_SLOTS: [AtomicU64; COUNTER_COUNT] = [const { AtomicU64::new(0) }; COUNTER_COUNT];
// Ordering contract: Relaxed — tid allocation only needs uniqueness, which
// fetch_add provides at any ordering; nothing is published through it.
static NEXT_TID: AtomicUsize = AtomicUsize::new(1);
static REGISTRY: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());
static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide trace anchor (first telemetry use).
#[inline]
fn now_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One completed span: phase plus its `[start, end]` nanosecond interval.
#[derive(Debug, Clone, Copy)]
struct SpanRecord {
    phase: Phase,
    start_ns: u64,
    end_ns: u64,
}

/// Fixed-capacity per-thread event buffer. Writes come only from the owning
/// thread; the exporter locks the same mutex, so no unsafe sharing.
#[derive(Debug)]
struct RingBuf {
    records: Vec<SpanRecord>,
    /// Next overwrite position once `records` reached capacity.
    next: usize,
    /// Events discarded by wrap-around since the last [`Telemetry::reset`].
    dropped: u64,
}

#[derive(Debug)]
struct ThreadRing {
    tid: usize,
    buf: Mutex<RingBuf>,
}

thread_local! {
    static LOCAL_RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
}

/// Registers (on first use per thread) and returns this thread's ring.
// lint: alloc_ok(one-time per-thread ring materialization; every later span
// on the thread reuses the fixed-capacity buffer — the zero-alloc claim is
// for the steady state and is enforced by the counting-allocator test)
fn with_local_ring(f: impl FnOnce(&ThreadRing)) {
    LOCAL_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(ThreadRing {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                buf: Mutex::new(RingBuf {
                    records: Vec::with_capacity(RING_CAPACITY),
                    next: 0,
                    dropped: 0,
                }),
            });
            REGISTRY
                .lock()
                .expect("telemetry registry poisoned")
                .push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

/// RAII phase timer returned by [`span`]. Dropping it adds the elapsed time
/// to the phase accumulators and appends a trace event to the calling
/// thread's ring buffer — allocation-free once the thread's ring exists.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    phase: Phase,
    start_ns: u64,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end_ns = now_ns();
        let idx = self.phase as usize;
        PHASE_NS[idx].fetch_add(end_ns.saturating_sub(self.start_ns), Ordering::Relaxed);
        PHASE_HITS[idx].fetch_add(1, Ordering::Relaxed);
        let record = SpanRecord {
            phase: self.phase,
            start_ns: self.start_ns,
            end_ns,
        };
        with_local_ring(|ring| {
            let mut buf = ring.buf.lock().expect("telemetry ring poisoned");
            if buf.records.len() < RING_CAPACITY {
                buf.records.push(record);
            } else {
                let next = buf.next;
                buf.records[next] = record;
                buf.next = (next + 1) % RING_CAPACITY;
                buf.dropped += 1;
            }
        });
    }
}

/// Opens a phase span. With telemetry disabled this is two instructions (a
/// relaxed load and a branch) and the returned guard is inert.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            phase,
            start_ns: 0,
            active: false,
        };
    }
    SpanGuard {
        phase,
        start_ns: now_ns(),
        active: true,
    }
}

/// Bumps `counter` by `n`. With telemetry disabled this is a relaxed load
/// and a predicted branch.
#[inline]
pub fn count(counter: Counter, n: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    COUNTER_SLOTS[counter as usize].fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time copy of every phase accumulator and counter, used to
/// compute per-run deltas (see [`RunScope`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    phase_ns: [u64; PHASE_COUNT],
    phase_hits: [u64; PHASE_COUNT],
    counters: [u64; COUNTER_COUNT],
}

impl TelemetrySnapshot {
    /// Accumulated nanoseconds of `phase` at snapshot time.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase as usize]
    }

    /// Number of completed `phase` spans at snapshot time.
    pub fn phase_hits(&self, phase: Phase) -> u64 {
        self.phase_hits[phase as usize]
    }

    /// Value of `counter` at snapshot time.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }
}

/// The process-wide telemetry switchboard. All state is global (see the
/// module docs); this type only namespaces the entry points.
#[derive(Debug, Clone, Copy)]
pub struct Telemetry;

impl Telemetry {
    /// Turns instrumentation on.
    pub fn enable() {
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Turns instrumentation off (spans already open still record on drop).
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Whether instrumentation is currently on.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Zeroes every phase accumulator and counter and clears all trace
    /// rings. Retains each thread's ring allocation, so steady-state
    /// recording stays allocation-free across resets.
    pub fn reset() {
        for slot in PHASE_NS.iter().chain(&PHASE_HITS).chain(&COUNTER_SLOTS) {
            slot.store(0, Ordering::Relaxed);
        }
        for ring in REGISTRY.lock().expect("telemetry registry poisoned").iter() {
            let mut buf = ring.buf.lock().expect("telemetry ring poisoned");
            buf.records.clear();
            buf.next = 0;
            buf.dropped = 0;
        }
    }

    /// Current value of one counter.
    pub fn counter(counter: Counter) -> u64 {
        COUNTER_SLOTS[counter as usize].load(Ordering::Relaxed)
    }

    /// Accumulated nanoseconds of one phase (summed over threads).
    pub fn phase_ns(phase: Phase) -> u64 {
        PHASE_NS[phase as usize].load(Ordering::Relaxed)
    }

    /// Trace events discarded by ring wrap-around since the last reset.
    pub fn dropped_events() -> u64 {
        REGISTRY
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|ring| ring.buf.lock().expect("telemetry ring poisoned").dropped)
            .sum()
    }

    /// Copies every accumulator for later delta computation.
    pub fn snapshot() -> TelemetrySnapshot {
        let load = |slots: &[AtomicU64]| {
            let mut out = [0u64; PHASE_COUNT];
            for (o, s) in out.iter_mut().zip(slots) {
                *o = s.load(Ordering::Relaxed);
            }
            out
        };
        let mut counters = [0u64; COUNTER_COUNT];
        for (o, s) in counters.iter_mut().zip(&COUNTER_SLOTS) {
            *o = s.load(Ordering::Relaxed);
        }
        TelemetrySnapshot {
            phase_ns: load(&PHASE_NS),
            phase_hits: load(&PHASE_HITS),
            counters,
        }
    }

    /// Renders every thread's retained span events as a `chrome://tracing` /
    /// Perfetto JSON document with **balanced, well-nested `B`/`E` event
    /// pairs** per thread (each retained span contributes exactly one of
    /// each; spans on one thread are properly nested by RAII, and any
    /// wrap-around-surviving subset of nested-or-disjoint intervals is still
    /// nested-or-disjoint). Timestamps are microseconds from the process
    /// trace anchor.
    ///
    /// Call from a quiesced point (after a run), not while workers are mid-
    /// span; spans still open are simply absent from the trace.
    // lint: alloc_ok(offline exporter, runs after the measured region)
    pub fn chrome_trace() -> String {
        let rings: Vec<Arc<ThreadRing>> = REGISTRY
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(Arc::clone)
            .collect();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |out: &mut String, ph: char, phase: Phase, ts_ns: u64, tid: usize| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"cat\":\"invnorm\",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}}}",
                phase.name(),
                ph,
                ts_ns / 1_000,
                ts_ns % 1_000,
                tid
            );
        };
        for ring in rings {
            let mut records: Vec<SpanRecord> = {
                let buf = ring.buf.lock().expect("telemetry ring poisoned");
                buf.records.clone()
            };
            // Outermost-first within a thread: by start, longest first on
            // ties, so the emission stack below nests correctly.
            records.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.end_ns.cmp(&a.end_ns)));
            let mut open: Vec<(u64, Phase)> = Vec::new();
            for r in &records {
                while let Some(&(end_ns, phase)) = open.last() {
                    if end_ns > r.start_ns {
                        break;
                    }
                    emit(&mut out, 'E', phase, end_ns, ring.tid);
                    open.pop();
                }
                emit(&mut out, 'B', r.phase, r.start_ns, ring.tid);
                open.push((r.end_ns, r.phase));
            }
            while let Some((end_ns, phase)) = open.pop() {
                emit(&mut out, 'E', phase, end_ns, ring.tid);
            }
        }
        out.push_str("\n]}");
        out
    }

    /// Writes [`Telemetry::chrome_trace`] to `path` (load it via
    /// `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-write error.
    pub fn write_chrome_trace(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, Self::chrome_trace())
    }
}

/// One phase's share of a [`RunTelemetry`] report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// The phase.
    pub phase: Phase,
    /// Nanoseconds spent in the phase during the run (summed over threads).
    pub total_ns: u64,
    /// Completed spans of the phase during the run.
    pub count: u64,
}

/// One counter's delta over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterStat {
    /// The counter.
    pub counter: Counter,
    /// Its increase during the run.
    pub value: u64,
}

/// One point of the per-run Welford convergence stream: the running mean,
/// sample standard deviation and 95 % confidence half-width after `runs`
/// Monte-Carlo chip instances. This is the statistic an adaptive
/// sequential-stopping driver (ROADMAP item 5) thresholds on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Number of runs accumulated so far.
    pub runs: u64,
    /// Running mean of the metric.
    pub mean: f32,
    /// Running *sample* standard deviation (0 below two runs).
    pub std: f32,
    /// Normal-approximation 95 % confidence half-width
    /// (`1.96 · std / √runs`, 0 below two runs).
    pub half_width95: f32,
}

/// Builds the Welford convergence stream over a per-run metric vector — one
/// [`ConvergencePoint`] per prefix.
// lint: alloc_ok(offline reporting, runs after the measured region)
pub fn convergence_stream(per_run: &[f32]) -> Vec<ConvergencePoint> {
    let mut stats = RunningStats::new();
    let mut points = Vec::with_capacity(per_run.len());
    for &x in per_run {
        stats.push(x);
        let runs = stats.count();
        let std = stats.sample_std();
        points.push(ConvergencePoint {
            runs,
            mean: stats.mean(),
            std,
            half_width95: if runs < 2 {
                0.0
            } else {
                1.96 * std / (runs as f32).sqrt()
            },
        });
    }
    points
}

/// The telemetry delta of one Monte-Carlo run: wall time, per-phase
/// breakdown, counter deltas and the metric convergence stream. Attached to
/// every engine summary when telemetry is enabled; render it with `Display`
/// (aligned table) or [`RunTelemetry::to_json`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTelemetry {
    /// Wall-clock duration of the run in nanoseconds.
    pub wall_ns: u64,
    phase_ns: [u64; PHASE_COUNT],
    phase_hits: [u64; PHASE_COUNT],
    counters: [u64; COUNTER_COUNT],
    /// The SIMD kernel tier ([`crate::dispatch::active`]) the run executed
    /// under — the reproducibility boundary of the f32 results.
    pub kernel_tier: &'static str,
    /// Per-run Welford convergence stream over the metric vector.
    pub convergence: Vec<ConvergencePoint>,
}

impl RunTelemetry {
    /// Nanoseconds the run spent in `phase` (summed over worker threads, so
    /// phases overlapping in parallel can exceed `wall_ns`).
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase as usize]
    }

    /// Spans of `phase` completed during the run.
    pub fn phase_count(&self, phase: Phase) -> u64 {
        self.phase_hits[phase as usize]
    }

    /// `counter`'s increase during the run.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Per-phase statistics in declaration order.
    pub fn phases(&self) -> impl Iterator<Item = PhaseStat> + '_ {
        PHASES.iter().map(|&phase| PhaseStat {
            phase,
            total_ns: self.phase_ns[phase as usize],
            count: self.phase_hits[phase as usize],
        })
    }

    /// Counter deltas in declaration order.
    pub fn counters(&self) -> impl Iterator<Item = CounterStat> + '_ {
        COUNTERS.iter().map(|&counter| CounterStat {
            counter,
            value: self.counters[counter as usize],
        })
    }

    /// Hand-rolled JSON rendering (the workspace's serde is an offline
    /// marker shim), stable enough to diff across runs.
    // lint: alloc_ok(offline exporter, runs after the measured region)
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"wall_ns\": {},", self.wall_ns);
        let _ = writeln!(out, "  \"kernel_tier\": \"{}\",", self.kernel_tier);
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases().enumerate() {
            let _ = write!(
                out,
                "    {{\"phase\": \"{}\", \"total_ns\": {}, \"count\": {}}}",
                p.phase.name(),
                p.total_ns,
                p.count
            );
            out.push_str(if i + 1 < PHASE_COUNT { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"counters\": [\n");
        for (i, c) in self.counters().enumerate() {
            let _ = write!(
                out,
                "    {{\"counter\": \"{}\", \"value\": {}}}",
                c.counter.name(),
                c.value
            );
            out.push_str(if i + 1 < COUNTER_COUNT { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"convergence\": [\n");
        for (i, p) in self.convergence.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"runs\": {}, \"mean\": {}, \"std\": {}, \"half_width95\": {}}}",
                p.runs, p.mean, p.std, p.half_width95
            );
            out.push_str(if i + 1 < self.convergence.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}");
        out
    }
}

// lint: alloc_ok(offline report formatting, runs after the measured region)
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl std::fmt::Display for RunTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "run telemetry (wall {}, kernel tier {}):",
            fmt_ns(self.wall_ns),
            self.kernel_tier
        )?;
        writeln!(f, "  {:<10} {:>14} {:>10}", "phase", "total", "spans")?;
        for p in self.phases() {
            if p.count == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<10} {:>14} {:>10}",
                p.phase.name(),
                fmt_ns(p.total_ns),
                p.count
            )?;
        }
        writeln!(f, "  {:<22} {:>12}", "counter", "delta")?;
        for c in self.counters() {
            writeln!(f, "  {:<22} {:>12}", c.counter.name(), c.value)?;
        }
        if let Some(last) = self.convergence.last() {
            writeln!(
                f,
                "  convergence: {} runs, mean {:.6} ± {:.6} (95% half-width {:.6})",
                last.runs, last.mean, last.std, last.half_width95
            )?;
        }
        Ok(())
    }
}

/// Brackets one engine run: captures the accumulators on entry and produces
/// the [`RunTelemetry`] delta on exit. Inert (and `finish` returns `None`)
/// when telemetry was disabled at `begin`.
#[derive(Debug)]
pub struct RunScope {
    start: Option<(TelemetrySnapshot, Instant)>,
}

impl RunScope {
    /// Snapshots the accumulators if telemetry is enabled.
    pub fn begin() -> Self {
        Self {
            start: Telemetry::enabled().then(|| (Telemetry::snapshot(), Instant::now())),
        }
    }

    /// Computes the per-run delta and the convergence stream over `per_run`.
    pub fn finish(self, per_run: &[f32]) -> Option<RunTelemetry> {
        let (before, t0) = self.start?;
        let after = Telemetry::snapshot();
        let sub = |a: &[u64], b: &[u64], out: &mut [u64]| {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x.saturating_sub(y);
            }
        };
        let mut phase_ns = [0u64; PHASE_COUNT];
        let mut phase_hits = [0u64; PHASE_COUNT];
        let mut counters = [0u64; COUNTER_COUNT];
        sub(&after.phase_ns, &before.phase_ns, &mut phase_ns);
        sub(&after.phase_hits, &before.phase_hits, &mut phase_hits);
        sub(&after.counters, &before.counters, &mut counters);
        Some(RunTelemetry {
            wall_ns: t0.elapsed().as_nanos() as u64,
            phase_ns,
            phase_hits,
            counters,
            kernel_tier: crate::dispatch::active().name(),
            convergence: convergence_stream(per_run),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the telemetry tests in this module: they share the global
    /// registry, and concurrent enable/reset would cross-contaminate.
    ///
    /// While one of these tests holds telemetry *enabled*, other lib tests
    /// in this binary (gemm/pack/conv) may record spans concurrently — so
    /// exact-count assertions below only use phases and counters that are
    /// wired up in downstream crates (`Compile`/`Inject`/`Forward`/`Metric`,
    /// `WideGemms`/`LadderFallbacks`/`TailRecompiles`), which nothing in
    /// `invnorm_tensor` itself can bump.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_and_counters_record_nothing() {
        let _guard = locked();
        Telemetry::disable();
        Telemetry::reset();
        {
            let _s = span(Phase::Forward);
            count(Counter::TailRecompiles, 5);
        }
        assert_eq!(Telemetry::phase_ns(Phase::Forward), 0);
        assert_eq!(Telemetry::counter(Counter::TailRecompiles), 0);
        let trace = Telemetry::chrome_trace();
        assert!(!trace.contains("\"name\":\"forward\""));
    }

    #[test]
    fn enabled_spans_accumulate_and_counters_add() {
        let _guard = locked();
        Telemetry::enable();
        Telemetry::reset();
        {
            let _outer = span(Phase::Forward);
            let _inner = span(Phase::Inject);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        count(Counter::WideGemms, 2);
        count(Counter::WideGemms, 3);
        Telemetry::disable();
        assert!(Telemetry::phase_ns(Phase::Forward) >= 1_000_000);
        assert!(Telemetry::phase_ns(Phase::Inject) >= 1_000_000);
        assert_eq!(Telemetry::counter(Counter::WideGemms), 5);
        let snap = Telemetry::snapshot();
        assert_eq!(snap.phase_hits(Phase::Forward), 1);
        assert_eq!(snap.phase_hits(Phase::Inject), 1);
        assert_eq!(snap.counter(Counter::WideGemms), 5);
        Telemetry::reset();
        assert_eq!(Telemetry::phase_ns(Phase::Forward), 0);
        assert_eq!(Telemetry::counter(Counter::WideGemms), 0);
    }

    #[test]
    fn chrome_trace_has_balanced_nested_events() {
        let _guard = locked();
        Telemetry::enable();
        Telemetry::reset();
        {
            let _outer = span(Phase::Forward);
            {
                let _inner = span(Phase::Inject);
            }
            {
                let _inner = span(Phase::Metric);
            }
        }
        {
            let _solo = span(Phase::Compile);
        }
        Telemetry::disable();
        let trace = Telemetry::chrome_trace();
        // Every retained span contributes exactly one B and one E.
        let begins = trace.matches("\"ph\":\"B\"").count();
        let ends = trace.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends);
        for name in ["forward", "inject", "metric", "compile"] {
            let b = trace
                .matches(&format!(
                    "\"name\":\"{name}\",\"cat\":\"invnorm\",\"ph\":\"B\""
                ))
                .count();
            let e = trace
                .matches(&format!(
                    "\"name\":\"{name}\",\"cat\":\"invnorm\",\"ph\":\"E\""
                ))
                .count();
            assert_eq!(b, 1, "one B event for {name}");
            assert_eq!(e, 1, "one E event for {name}");
        }
        // Same-thread events are emitted in stack order: the Forward B must
        // precede the nested Inject B, which must close before Metric opens.
        let fwd_b = trace.find("\"name\":\"forward\",\"cat\":\"invnorm\",\"ph\":\"B\"");
        let inj_b = trace.find("\"name\":\"inject\",\"cat\":\"invnorm\",\"ph\":\"B\"");
        let inj_e = trace.find("\"name\":\"inject\",\"cat\":\"invnorm\",\"ph\":\"E\"");
        let met_b = trace.find("\"name\":\"metric\",\"cat\":\"invnorm\",\"ph\":\"B\"");
        assert!(fwd_b.unwrap() < inj_b.unwrap());
        assert!(inj_e.unwrap() < met_b.unwrap());
    }

    #[test]
    fn run_scope_reports_deltas_and_convergence() {
        let _guard = locked();
        Telemetry::enable();
        Telemetry::reset();
        let scope = RunScope::begin();
        {
            let _s = span(Phase::Inject);
        }
        count(Counter::LadderFallbacks, 7);
        let report = scope.finish(&[1.0, 2.0, 3.0, 4.0]).expect("enabled");
        Telemetry::disable();
        assert_eq!(report.phase_count(Phase::Inject), 1);
        assert_eq!(report.counter(Counter::LadderFallbacks), 7);
        assert_eq!(report.convergence.len(), 4);
        let last = report.convergence.last().unwrap();
        assert_eq!(last.runs, 4);
        assert!((last.mean - 2.5).abs() < 1e-6);
        assert!(last.std > 0.0 && last.half_width95 > 0.0);
        // Both renderings mention every phase and counter they carry.
        let text = report.to_string();
        assert!(text.contains("inject") && text.contains("ladder_fallbacks"));
        let json = report.to_json();
        assert!(json.contains("\"wall_ns\"") && json.contains("\"half_width95\""));
    }

    #[test]
    fn disabled_run_scope_yields_none() {
        let _guard = locked();
        Telemetry::disable();
        assert!(RunScope::begin().finish(&[1.0]).is_none());
    }

    #[test]
    fn convergence_stream_matches_direct_statistics() {
        let xs = [0.5f32, 1.5, 0.25, 2.0, 1.0];
        let points = convergence_stream(&xs);
        assert_eq!(points.len(), xs.len());
        assert_eq!(points[0].runs, 1);
        assert_eq!(points[0].std, 0.0);
        let mut stats = RunningStats::new();
        stats.extend_from_slice(&xs);
        let last = points.last().unwrap();
        assert!((last.mean - stats.mean()).abs() < 1e-6);
        assert!((last.std - stats.sample_std()).abs() < 1e-6);
    }
}
