//! Convolution kernels (1-D and 2-D) based on im2col/col2im.
//!
//! Layouts follow the deep-learning convention used throughout the paper:
//! 2-D activations are `[N, C, H, W]`, 1-D activations are `[N, C, L]`,
//! 2-D kernels are `[OutC, InC, KH, KW]` and 1-D kernels are `[OutC, InC, K]`.
//!
//! Both the forward products and the three gradient products needed for a
//! hand-written backward pass (`∂L/∂input`, `∂L/∂weight`, `∂L/∂bias`) are
//! provided; 1-D convolution is implemented by lifting to a 2-D convolution
//! with height 1 so there is a single, well-tested code path.

use crate::error::TensorError;
use crate::ops;
use crate::scratch::{uninit_slice, Scratch};
use crate::tensor::Tensor;
use crate::Result;

/// Spatial geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride applied to both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied to both spatial dimensions.
    pub pad: usize,
}

impl Conv2dSpec {
    /// Creates a square-kernel spec.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        Self {
            kh: kernel,
            kw: kernel,
            stride,
            pad,
        }
    }

    /// Output spatial size for an `(h, w)` input.
    ///
    /// # Errors
    ///
    /// Returns an error when the kernel (with padding) does not fit in the
    /// input or the stride is zero.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidArgument("stride must be > 0".into()));
        }
        let h_eff = h + 2 * self.pad;
        let w_eff = w + 2 * self.pad;
        if h_eff < self.kh || w_eff < self.kw {
            return Err(TensorError::InvalidArgument(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kh, self.kw, h_eff, w_eff
            )));
        }
        Ok((
            (h_eff - self.kh) / self.stride + 1,
            (w_eff - self.kw) / self.stride + 1,
        ))
    }
}

/// Unfolds an `[N, C, H, W]` input into a `[N*OH*OW, C*KH*KW]` matrix of
/// receptive-field patches (zero padded).
///
/// # Errors
///
/// Returns an error when the input is not rank-4 or the geometry is invalid.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    let (n, c, h, w) = as_nchw(input)?;
    let (oh, ow) = spec.output_hw(h, w)?;
    let patch = c * spec.kh * spec.kw;
    let rows = n * oh * ow;
    let mut cols = vec![0.0f32; rows * patch];
    im2col_into(input, spec, &mut cols)?;
    Tensor::from_vec(cols, &[rows, patch])
}

/// [`im2col`] into a caller-provided buffer of exactly
/// `N*OH*OW × C*KH*KW` elements (every element is overwritten), so repeated
/// forward passes can reuse one allocation — see [`conv2d_forward_with_scratch`].
///
/// # Errors
///
/// Returns an error when the input is not rank-4, the geometry is invalid or
/// the buffer length is wrong.
pub fn im2col_into(input: &Tensor, spec: &Conv2dSpec, cols: &mut [f32]) -> Result<()> {
    let (n, c, h, w) = as_nchw(input)?;
    im2col_generic(input.data(), n, c, h, w, spec, cols)
}

/// [`im2col_into`] over raw **i8 quantization codes** in NCHW layout, for the
/// quantized conv path: the patch matrix stays in the integer code domain so
/// it can feed the i8 GEMM directly. Zero padding inserts code `0`, which is
/// exact for the symmetric quantizers used throughout the workspace
/// (`0.0` maps to code `0`).
///
/// # Errors
///
/// Returns an error when `dims` is not rank-4, the geometry is invalid or a
/// buffer length is wrong.
pub fn im2col_codes_into(
    codes: &[i8],
    dims: &[usize],
    spec: &Conv2dSpec,
    cols: &mut [i8],
) -> Result<()> {
    if dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: dims.len(),
        });
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if codes.len() != n * c * h * w {
        return Err(TensorError::ShapeMismatch {
            lhs: dims.to_vec(),
            rhs: vec![codes.len()],
        });
    }
    im2col_generic(codes, n, c, h, w, spec, cols)
}

/// Element-type-generic patch unfolding shared by the f32 and i8 paths.
fn im2col_generic<T: Copy + Default>(
    data: &[T],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    cols: &mut [T],
) -> Result<()> {
    let (oh, ow) = spec.output_hw(h, w)?;
    let patch = c * spec.kh * spec.kw;
    let rows = n * oh * ow;
    if cols.len() != rows * patch {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![rows, patch],
            rhs: vec![cols.len()],
        });
    }
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                let row_base = row * patch;
                for ci in 0..c {
                    for ky in 0..spec.kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        let in_y = iy >= 0 && (iy as usize) < h;
                        for kx in 0..spec.kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            let col_idx = (ci * spec.kh + ky) * spec.kw + kx;
                            let value = if in_y && ix >= 0 && (ix as usize) < w {
                                data[((ni * c + ci) * h + iy as usize) * w + ix as usize]
                            } else {
                                T::default()
                            };
                            cols[row_base + col_idx] = value;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Folds a `[N*OH*OW, C*KH*KW]` patch-gradient matrix back onto an
/// `[N, C, H, W]` input gradient (the adjoint of [`im2col`]). Overlapping
/// patches accumulate.
///
/// # Errors
///
/// Returns an error when shapes do not correspond to the given geometry.
pub fn col2im(cols: &Tensor, input_dims: &[usize], spec: &Conv2dSpec) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (oh, ow) = spec.output_hw(h, w)?;
    let patch = c * spec.kh * spec.kw;
    let rows = n * oh * ow;
    let (rc, cc) = ops::as_matrix_dims(cols)?;
    if rc != rows || cc != patch {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![rows, patch],
            rhs: vec![rc, cc],
        });
    }
    let cd = cols.data();
    let mut out = vec![0.0f32; n * c * h * w];
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                let row_base = row * patch;
                for ci in 0..c {
                    for ky in 0..spec.kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        for kx in 0..spec.kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                let col_idx = (ci * spec.kh + ky) * spec.kw + kx;
                                out[((ni * c + ci) * h + iy as usize) * w + ix as usize] +=
                                    cd[row_base + col_idx];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, input_dims)
}

/// Result of a 2-D convolution forward pass, retaining the unfolded patches
/// needed by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dForward {
    /// Convolution output, `[N, OutC, OH, OW]`.
    pub output: Tensor,
    /// The im2col patch matrix, cached for the backward pass.
    pub cols: Tensor,
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, InC, H, W]`.
    pub grad_input: Tensor,
    /// Gradient w.r.t. the kernel, `[OutC, InC, KH, KW]`.
    pub grad_weight: Tensor,
    /// Gradient w.r.t. the bias, `[OutC]`.
    pub grad_bias: Tensor,
}

/// 2-D convolution forward pass.
///
/// `input` is `[N, InC, H, W]`, `weight` is `[OutC, InC, KH, KW]` and `bias`
/// (if given) is `[OutC]`.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent with `spec`.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Conv2dForward> {
    let (n, c, h, w) = as_nchw(input)?;
    let wd = weight.dims();
    if wd.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: wd.len(),
        });
    }
    let (oc, wc, wkh, wkw) = (wd[0], wd[1], wd[2], wd[3]);
    if wc != c || wkh != spec.kh || wkw != spec.kw {
        return Err(TensorError::InvalidArgument(format!(
            "weight shape {wd:?} inconsistent with input channels {c} and kernel {}x{}",
            spec.kh, spec.kw
        )));
    }
    let (oh, ow) = spec.output_hw(h, w)?;
    let cols = im2col(input, spec)?;
    let weight_mat = weight.reshape(&[oc, c * spec.kh * spec.kw])?;
    // [N*OH*OW, patch] @ [patch, OC] -> [N*OH*OW, OC]
    let out_mat = ops::matmul_a_bt(&cols, &weight_mat)?;
    let out = relayout_nchw(out_mat.data(), bias, n, oc, oh, ow);
    Ok(Conv2dForward {
        output: Tensor::from_vec(out, &[n, oc, oh, ow])?,
        cols,
    })
}

/// 2-D convolution forward pass for inference hot loops: identical math to
/// [`conv2d_forward`], but the im2col patch matrix and the GEMM staging
/// buffer live in the caller's [`Scratch`] (and the GEMM packing buffers in
/// a thread-local one), so steady-state calls only allocate the returned
/// output tensor. No patch matrix is retained — use [`conv2d_forward`] when
/// a backward pass will follow.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent with `spec`.
pub fn conv2d_forward_with_scratch(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let (n, c, h, w) = as_nchw(input)?;
    let wd = weight.dims();
    if wd.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: wd.len(),
        });
    }
    let (oc, wc, wkh, wkw) = (wd[0], wd[1], wd[2], wd[3]);
    if wc != c || wkh != spec.kh || wkw != spec.kw {
        return Err(TensorError::InvalidArgument(format!(
            "weight shape {wd:?} inconsistent with input channels {c} and kernel {}x{}",
            spec.kh, spec.kw
        )));
    }
    let (oh, ow) = spec.output_hw(h, w)?;
    let patch = c * spec.kh * spec.kw;
    let rows = n * oh * ow;
    let cols = uninit_slice(&mut scratch.cols, rows * patch);
    im2col_into(input, spec, cols)?;
    // [rows, patch] @ [oc, patch]ᵀ -> [rows, oc]
    let out_mat = uninit_slice(&mut scratch.out_mat, rows * oc);
    ops::gemm(
        false,
        true,
        rows,
        oc,
        patch,
        1.0,
        cols,
        weight.data(),
        0.0,
        out_mat,
    );
    let out = relayout_nchw(out_mat, bias, n, oc, oh, ow);
    Tensor::from_vec(out, &[n, oc, oh, ow])
}

/// Re-layouts a `[N*OH*OW, OC]` GEMM result into `[N, OC, OH, OW]`, adding
/// the per-channel bias on the way.
fn relayout_nchw(
    om: &[f32],
    bias: Option<&Tensor>,
    n: usize,
    oc: usize,
    oh: usize,
    ow: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                for ci in 0..oc {
                    let mut v = om[row * oc + ci];
                    if let Some(b) = bias {
                        v += b.data()[ci];
                    }
                    out[((ni * oc + ci) * oh + oy) * ow + ox] = v;
                }
            }
        }
    }
    out
}

/// 2-D convolution backward pass.
///
/// `grad_output` is `[N, OutC, OH, OW]`; `cols` is the patch matrix cached by
/// [`conv2d_forward`].
///
/// # Errors
///
/// Returns an error when shapes are inconsistent.
pub fn conv2d_backward(
    grad_output: &Tensor,
    cols: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    spec: &Conv2dSpec,
) -> Result<Conv2dGrads> {
    let god = grad_output.dims();
    if god.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: god.len(),
        });
    }
    let (n, oc, oh, ow) = (god[0], god[1], god[2], god[3]);
    let wd = weight.dims();
    let patch = wd[1] * wd[2] * wd[3];
    // Re-layout grad_output [N, OC, OH, OW] into matrix [N*OH*OW, OC].
    let gd = grad_output.data();
    let mut go_mat = vec![0.0f32; n * oh * ow * oc];
    for ni in 0..n {
        for ci in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (ni * oh + oy) * ow + ox;
                    go_mat[row * oc + ci] = gd[((ni * oc + ci) * oh + oy) * ow + ox];
                }
            }
        }
    }
    let go_mat = Tensor::from_vec(go_mat, &[n * oh * ow, oc])?;
    let weight_mat = weight.reshape(&[oc, patch])?;
    // grad_cols = go_mat @ weight_mat : [rows, patch]
    let grad_cols = ops::matmul(&go_mat, &weight_mat)?;
    let grad_input = col2im(&grad_cols, input_dims, spec)?;
    // grad_weight = go_matᵀ @ cols : [OC, patch]
    let grad_weight = ops::matmul_at_b(&go_mat, cols)?.reshape(wd)?;
    // grad_bias = column sums of go_mat
    let grad_bias = ops::sum_axis(&go_mat, 0)?;
    Ok(Conv2dGrads {
        grad_input,
        grad_weight,
        grad_bias,
    })
}

/// Lifts a `[N, C, L]` tensor to `[N, C, 1, L]` so 1-D convolutions reuse the
/// 2-D kernels.
///
/// # Errors
///
/// Returns an error when the input is not rank-3.
pub fn lift_1d(input: &Tensor) -> Result<Tensor> {
    let d = input.dims();
    if d.len() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: d.len(),
        });
    }
    input.reshape(&[d[0], d[1], 1, d[2]])
}

/// Squeezes a `[N, C, 1, L]` tensor back to `[N, C, L]`.
///
/// # Errors
///
/// Returns an error when the input is not rank-4 with height 1.
pub fn squeeze_1d(input: &Tensor) -> Result<Tensor> {
    let d = input.dims();
    if d.len() != 4 || d[2] != 1 {
        return Err(TensorError::InvalidArgument(format!(
            "expected [N, C, 1, L], got {d:?}"
        )));
    }
    input.reshape(&[d[0], d[1], d[3]])
}

fn as_nchw(t: &Tensor) -> Result<(usize, usize, usize, usize)> {
    let d = t.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: d.len(),
        });
    }
    Ok((d[0], d[1], d[2], d[3]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn reference_conv2d(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: &Conv2dSpec,
    ) -> Tensor {
        let (n, c, h, w) = as_nchw(input).unwrap();
        let wd = weight.dims();
        let oc = wd[0];
        let (oh, ow) = spec.output_hw(h, w).unwrap();
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for ni in 0..n {
            for co in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map(|b| b.data()[co]).unwrap_or(0.0);
                        for ci in 0..c {
                            for ky in 0..spec.kh {
                                for kx in 0..spec.kw {
                                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                    if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w
                                    {
                                        let xv =
                                            input.get(&[ni, ci, iy as usize, ix as usize]).unwrap();
                                        let wv = weight.get(&[co, ci, ky, kx]).unwrap();
                                        acc += xv * wv;
                                    }
                                }
                            }
                        }
                        out.set(&[ni, co, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn output_geometry() {
        let spec = Conv2dSpec::new(3, 1, 1);
        assert_eq!(spec.output_hw(8, 8).unwrap(), (8, 8));
        let spec = Conv2dSpec::new(3, 2, 1);
        assert_eq!(spec.output_hw(8, 8).unwrap(), (4, 4));
        let spec = Conv2dSpec::new(5, 1, 0);
        assert!(spec.output_hw(3, 3).is_err());
        let bad = Conv2dSpec {
            kh: 1,
            kw: 1,
            stride: 0,
            pad: 0,
        };
        assert!(bad.output_hw(4, 4).is_err());
    }

    #[test]
    fn forward_matches_naive_reference() {
        let mut rng = Rng::seed_from(2);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = Conv2dSpec::new(3, stride, pad);
            let input = Tensor::randn(&[2, 3, 6, 6], 0.0, 1.0, &mut rng);
            let weight = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.5, &mut rng);
            let bias = Tensor::randn(&[4], 0.0, 0.5, &mut rng);
            let got = conv2d_forward(&input, &weight, Some(&bias), &spec).unwrap();
            let expected = reference_conv2d(&input, &weight, Some(&bias), &spec);
            assert!(
                got.output.approx_eq(&expected, 1e-4),
                "mismatch for stride {stride} pad {pad}"
            );
        }
    }

    #[test]
    fn im2col_col2im_adjointness() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair, which is exactly what backward needs.
        let mut rng = Rng::seed_from(3);
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let cols = im2col(&x, &spec).unwrap();
        let y = Tensor::randn(cols.dims(), 0.0, 1.0, &mut rng);
        let lhs: f32 = cols
            .data()
            .iter()
            .zip(y.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        let back = col2im(&y, x.dims(), &spec).unwrap();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(back.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-2, "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = Rng::seed_from(4);
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn(&[3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let bias = Tensor::randn(&[3], 0.0, 0.5, &mut rng);

        // Loss = sum(output); grad_output = ones.
        let fwd = conv2d_forward(&input, &weight, Some(&bias), &spec).unwrap();
        let grad_out = Tensor::ones(fwd.output.dims());
        let grads = conv2d_backward(&grad_out, &fwd.cols, &weight, input.dims(), &spec).unwrap();

        let eps = 1e-2f32;
        // Check a few weight coordinates against central differences.
        for &idx in &[0usize, 7, 20, 35] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let lp = conv2d_forward(&input, &wp, Some(&bias), &spec)
                .unwrap()
                .output
                .sum();
            let lm = conv2d_forward(&input, &wm, Some(&bias), &spec)
                .unwrap()
                .output
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.grad_weight.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "weight grad {idx}: numerical {num} analytic {ana}"
            );
        }
        // Check a few input coordinates.
        for &idx in &[0usize, 5, 17, 31] {
            let mut xp = input.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = input.clone();
            xm.data_mut()[idx] -= eps;
            let lp = conv2d_forward(&xp, &weight, Some(&bias), &spec)
                .unwrap()
                .output
                .sum();
            let lm = conv2d_forward(&xm, &weight, Some(&bias), &spec)
                .unwrap()
                .output
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.grad_input.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "input grad {idx}: numerical {num} analytic {ana}"
            );
        }
        // Bias gradient: each output position contributes 1.
        let per_channel = (fwd.output.numel() / 3) as f32;
        for &g in grads.grad_bias.data() {
            assert!((g - per_channel).abs() < 1e-3);
        }
    }

    #[test]
    fn lift_and_squeeze_1d() {
        let x = Tensor::linspace(0.0, 1.0, 12).reshape(&[2, 2, 3]).unwrap();
        let lifted = lift_1d(&x).unwrap();
        assert_eq!(lifted.dims(), &[2, 2, 1, 3]);
        let back = squeeze_1d(&lifted).unwrap();
        assert!(back.approx_eq(&x, 0.0));
        assert!(lift_1d(&Tensor::zeros(&[2, 2])).is_err());
        assert!(squeeze_1d(&Tensor::zeros(&[2, 2, 2, 3])).is_err());
    }

    #[test]
    fn conv_rejects_inconsistent_weight() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = Tensor::zeros(&[1, 3, 8, 8]);
        let weight = Tensor::zeros(&[4, 2, 3, 3]); // wrong in-channels
        assert!(conv2d_forward(&input, &weight, None, &spec).is_err());
        let mut scratch = Scratch::new();
        assert!(conv2d_forward_with_scratch(&input, &weight, None, &spec, &mut scratch).is_err());
    }

    #[test]
    fn scratch_forward_matches_allocating_forward() {
        let mut rng = Rng::seed_from(10);
        let mut scratch = Scratch::new();
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = Conv2dSpec::new(3, stride, pad);
            let input = Tensor::randn(&[2, 3, 7, 7], 0.0, 1.0, &mut rng);
            let weight = Tensor::randn(&[5, 3, 3, 3], 0.0, 0.5, &mut rng);
            let bias = Tensor::randn(&[5], 0.0, 0.5, &mut rng);
            let reference = conv2d_forward(&input, &weight, Some(&bias), &spec)
                .unwrap()
                .output;
            let got =
                conv2d_forward_with_scratch(&input, &weight, Some(&bias), &spec, &mut scratch)
                    .unwrap();
            assert!(got.approx_eq(&reference, 1e-5), "stride {stride} pad {pad}");
        }
    }

    #[test]
    fn scratch_forward_reuses_buffers_across_calls() {
        let mut rng = Rng::seed_from(11);
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = Tensor::randn(&[2, 4, 12, 12], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn(&[8, 4, 3, 3], 0.0, 0.5, &mut rng);
        let mut scratch = Scratch::new();
        conv2d_forward_with_scratch(&input, &weight, None, &spec, &mut scratch).unwrap();
        let warm = scratch.capacity();
        for _ in 0..3 {
            conv2d_forward_with_scratch(&input, &weight, None, &spec, &mut scratch).unwrap();
        }
        assert_eq!(scratch.capacity(), warm, "steady state must not reallocate");
    }

    #[test]
    fn im2col_into_rejects_wrong_buffer_length() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = Tensor::zeros(&[1, 2, 5, 5]);
        let mut too_small = vec![0.0f32; 7];
        assert!(im2col_into(&input, &spec, &mut too_small).is_err());
    }

    #[test]
    fn im2col_codes_agrees_with_f32_im2col() {
        // Integer-valued input: the i8 unfolding must produce exactly the
        // same patch matrix as the f32 path (zero padding = code 0).
        let mut rng = Rng::seed_from(12);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = Conv2dSpec::new(3, stride, pad);
            let codes: Vec<i8> = (0..2 * 3 * 6 * 6)
                .map(|_| (rng.normal(0.0, 40.0).round().clamp(-127.0, 127.0)) as i8)
                .collect();
            let dims = [2usize, 3, 6, 6];
            let as_f32: Vec<f32> = codes.iter().map(|&c| f32::from(c)).collect();
            let input = Tensor::from_vec(as_f32, &dims).unwrap();
            let expected = im2col(&input, &spec).unwrap();
            let mut cols = vec![0i8; expected.numel()];
            im2col_codes_into(&codes, &dims, &spec, &mut cols).unwrap();
            for (got, want) in cols.iter().zip(expected.data().iter()) {
                assert_eq!(f32::from(*got), *want, "stride {stride} pad {pad}");
            }
        }
        // Error paths: wrong rank, wrong code count, wrong buffer length.
        let spec = Conv2dSpec::new(3, 1, 1);
        let mut cols = vec![0i8; 8];
        assert!(im2col_codes_into(&[0i8; 4], &[2, 2], &spec, &mut cols).is_err());
        assert!(im2col_codes_into(&[0i8; 4], &[1, 2, 5, 5], &spec, &mut cols).is_err());
        assert!(im2col_codes_into(&[0i8; 50], &[1, 2, 5, 5], &spec, &mut cols).is_err());
    }
}
