//! Convolution kernels (1-D and 2-D) based on im2col/col2im.
//!
//! Layouts follow the deep-learning convention used throughout the paper:
//! 2-D activations are `[N, C, H, W]`, 1-D activations are `[N, C, L]`,
//! 2-D kernels are `[OutC, InC, KH, KW]` and 1-D kernels are `[OutC, InC, K]`.
//!
//! Both the forward products and the three gradient products needed for a
//! hand-written backward pass (`∂L/∂input`, `∂L/∂weight`, `∂L/∂bias`) are
//! provided; 1-D convolution is implemented by lifting to a 2-D convolution
//! with height 1 so there is a single, well-tested code path.

use crate::error::TensorError;
use crate::gemm::{gemm_prepacked, PackedA};
use crate::ops;
use crate::scratch::{uninit_slice, Scratch};
use crate::telemetry;
use crate::tensor::Tensor;
use crate::Result;

/// Spatial geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride applied to both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied to both spatial dimensions.
    pub pad: usize,
}

impl Conv2dSpec {
    /// Creates a square-kernel spec.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        Self {
            kh: kernel,
            kw: kernel,
            stride,
            pad,
        }
    }

    /// Output spatial size for an `(h, w)` input.
    ///
    /// # Errors
    ///
    /// Returns an error when the kernel (with padding) does not fit in the
    /// input or the stride is zero.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidArgument("stride must be > 0".into()));
        }
        let h_eff = h + 2 * self.pad;
        let w_eff = w + 2 * self.pad;
        if h_eff < self.kh || w_eff < self.kw {
            return Err(TensorError::InvalidArgument(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kh, self.kw, h_eff, w_eff
            )));
        }
        Ok((
            (h_eff - self.kh) / self.stride + 1,
            (w_eff - self.kw) / self.stride + 1,
        ))
    }
}

/// The derived geometry of one 2-D convolution applied to a concrete input
/// shape — the single source of truth for the im2col output-shape arithmetic
/// that used to be recomputed ad hoc at every call site (tensor kernels,
/// `invnorm_nn` layers, the plan compiler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output height.
    pub oh: usize,
    /// Output width.
    pub ow: usize,
    /// im2col patch length `C·KH·KW` (the GEMM reduction dimension).
    pub patch: usize,
    /// im2col row count `N·OH·OW` (the GEMM m dimension).
    pub rows: usize,
}

impl ConvShape {
    /// Output dims `[N, OC, OH, OW]` for `oc` output channels.
    pub fn output_dims(&self, oc: usize) -> [usize; 4] {
        [self.n, oc, self.oh, self.ow]
    }
}

/// Computes the im2col/output geometry of `spec` applied to an
/// `[N, C, H, W]` input.
///
/// # Errors
///
/// Returns an error when `input_dims` is not rank-4 or the geometry is
/// invalid (kernel larger than the padded input, zero stride).
pub fn conv_out_shape(input_dims: &[usize], spec: &Conv2dSpec) -> Result<ConvShape> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (oh, ow) = spec.output_hw(h, w)?;
    Ok(ConvShape {
        n,
        c,
        h,
        w,
        oh,
        ow,
        patch: c * spec.kh * spec.kw,
        rows: n * oh * ow,
    })
}

/// Unfolds an `[N, C, H, W]` input into a `[N*OH*OW, C*KH*KW]` matrix of
/// receptive-field patches (zero padded).
///
/// # Errors
///
/// Returns an error when the input is not rank-4 or the geometry is invalid.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    let shape = conv_out_shape(input.dims(), spec)?;
    let mut cols = vec![0.0f32; shape.rows * shape.patch];
    im2col_into(input, spec, &mut cols)?;
    Tensor::from_vec(cols, &[shape.rows, shape.patch])
}

/// [`im2col`] into a caller-provided buffer of exactly
/// `N*OH*OW × C*KH*KW` elements (every element is overwritten), so repeated
/// forward passes can reuse one allocation — see [`conv2d_forward_with_scratch`].
///
/// # Errors
///
/// Returns an error when the input is not rank-4, the geometry is invalid or
/// the buffer length is wrong.
pub fn im2col_into(input: &Tensor, spec: &Conv2dSpec, cols: &mut [f32]) -> Result<()> {
    let (n, c, h, w) = as_nchw(input)?;
    im2col_generic(input.data(), n, c, h, w, spec, cols)
}

/// [`im2col_into`] over raw **i8 quantization codes** in NCHW layout, for the
/// quantized conv path: the patch matrix stays in the integer code domain so
/// it can feed the i8 GEMM directly. Zero padding inserts code `0`, which is
/// exact for the symmetric quantizers used throughout the workspace
/// (`0.0` maps to code `0`).
///
/// # Errors
///
/// Returns an error when `dims` is not rank-4, the geometry is invalid or a
/// buffer length is wrong.
pub fn im2col_codes_into(
    codes: &[i8],
    dims: &[usize],
    spec: &Conv2dSpec,
    cols: &mut [i8],
) -> Result<()> {
    if dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: dims.len(),
        });
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if codes.len() != n * c * h * w {
        return Err(TensorError::ShapeMismatch {
            lhs: dims.to_vec(),
            rhs: vec![codes.len()],
        });
    }
    im2col_generic(codes, n, c, h, w, spec, cols)
}

/// [`im2col_into`] over a raw element slice in NCHW layout — the entry point
/// compiled plans use to unfold activations living in arena buffers without
/// materializing a tensor. Element-type generic (f32 activations, i8 codes).
///
/// # Errors
///
/// Returns an error when `dims` is not rank-4, the geometry is invalid or a
/// buffer length is wrong.
pub fn im2col_slice_into<T: Copy + Default>(
    data: &[T],
    dims: &[usize],
    spec: &Conv2dSpec,
    cols: &mut [T],
) -> Result<()> {
    if dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: dims.len(),
        });
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if data.len() != n * c * h * w {
        return Err(TensorError::ShapeMismatch {
            lhs: dims.to_vec(),
            rhs: vec![data.len()],
        });
    }
    im2col_generic(data, n, c, h, w, spec, cols)
}

/// Element-type-generic patch unfolding shared by the f32 and i8 paths.
fn im2col_generic<T: Copy + Default>(
    data: &[T],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    cols: &mut [T],
) -> Result<()> {
    let _span = telemetry::span(telemetry::Phase::Im2col);
    let (oh, ow) = spec.output_hw(h, w)?;
    let patch = c * spec.kh * spec.kw;
    let rows = n * oh * ow;
    if cols.len() != rows * patch {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![rows, patch],
            rhs: vec![cols.len()],
        });
    }
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                let row_base = row * patch;
                for ci in 0..c {
                    for ky in 0..spec.kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        let in_y = iy >= 0 && (iy as usize) < h;
                        for kx in 0..spec.kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            let col_idx = (ci * spec.kh + ky) * spec.kw + kx;
                            let value = if in_y && ix >= 0 && (ix as usize) < w {
                                data[((ni * c + ci) * h + iy as usize) * w + ix as usize]
                            } else {
                                T::default()
                            };
                            cols[row_base + col_idx] = value;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Folds a `[N*OH*OW, C*KH*KW]` patch-gradient matrix back onto an
/// `[N, C, H, W]` input gradient (the adjoint of [`im2col`]). Overlapping
/// patches accumulate.
///
/// # Errors
///
/// Returns an error when shapes do not correspond to the given geometry.
pub fn col2im(cols: &Tensor, input_dims: &[usize], spec: &Conv2dSpec) -> Result<Tensor> {
    let (rc, cc) = ops::as_matrix_dims(cols)?;
    let mut out = vec![0.0f32; input_dims.iter().product()];
    col2im_into(cols.data(), rc, cc, input_dims, spec, &mut out)?;
    Tensor::from_vec(out, input_dims)
}

/// [`col2im`] into a caller-provided buffer of exactly `N*C*H*W` elements
/// (zeroed, then accumulated into), so the training backward pass can reuse
/// one allocation across steps — see [`conv2d_backward_into`].
///
/// # Errors
///
/// Returns an error when shapes do not correspond to the given geometry.
pub fn col2im_into(
    cols: &[f32],
    cols_rows: usize,
    cols_cols: usize,
    input_dims: &[usize],
    spec: &Conv2dSpec,
    out: &mut [f32],
) -> Result<()> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (oh, ow) = spec.output_hw(h, w)?;
    let patch = c * spec.kh * spec.kw;
    let rows = n * oh * ow;
    if cols_rows != rows || cols_cols != patch || cols.len() != rows * patch {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![rows, patch],
            rhs: vec![cols_rows, cols_cols],
        });
    }
    if out.len() != n * c * h * w {
        return Err(TensorError::ShapeMismatch {
            lhs: input_dims.to_vec(),
            rhs: vec![out.len()],
        });
    }
    out.fill(0.0);
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                let row_base = row * patch;
                for ci in 0..c {
                    for ky in 0..spec.kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        for kx in 0..spec.kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                let col_idx = (ci * spec.kh + ky) * spec.kw + kx;
                                out[((ni * c + ci) * h + iy as usize) * w + ix as usize] +=
                                    cols[row_base + col_idx];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Result of a 2-D convolution forward pass, retaining the unfolded patches
/// needed by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dForward {
    /// Convolution output, `[N, OutC, OH, OW]`.
    pub output: Tensor,
    /// The im2col patch matrix, cached for the backward pass.
    pub cols: Tensor,
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, InC, H, W]`.
    pub grad_input: Tensor,
    /// Gradient w.r.t. the kernel, `[OutC, InC, KH, KW]`.
    pub grad_weight: Tensor,
    /// Gradient w.r.t. the bias, `[OutC]`.
    pub grad_bias: Tensor,
}

/// 2-D convolution forward pass.
///
/// `input` is `[N, InC, H, W]`, `weight` is `[OutC, InC, KH, KW]` and `bias`
/// (if given) is `[OutC]`.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent with `spec`.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Conv2dForward> {
    let (n, c, h, w) = as_nchw(input)?;
    let wd = weight.dims();
    if wd.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: wd.len(),
        });
    }
    let (oc, wc, wkh, wkw) = (wd[0], wd[1], wd[2], wd[3]);
    if wc != c || wkh != spec.kh || wkw != spec.kw {
        return Err(TensorError::InvalidArgument(format!(
            "weight shape {wd:?} inconsistent with input channels {c} and kernel {}x{}",
            spec.kh, spec.kw
        )));
    }
    let (oh, ow) = spec.output_hw(h, w)?;
    let cols = im2col(input, spec)?;
    let weight_mat = weight.reshape(&[oc, c * spec.kh * spec.kw])?;
    // [N*OH*OW, patch] @ [patch, OC] -> [N*OH*OW, OC]
    let out_mat = ops::matmul_a_bt(&cols, &weight_mat)?;
    let out = relayout_nchw(out_mat.data(), bias, n, oc, oh, ow);
    Ok(Conv2dForward {
        output: Tensor::from_vec(out, &[n, oc, oh, ow])?,
        cols,
    })
}

/// 2-D convolution forward pass for inference hot loops: identical math to
/// [`conv2d_forward`], but the im2col patch matrix and the GEMM staging
/// buffer live in the caller's [`Scratch`] (and the GEMM packing buffers in
/// a thread-local one), so steady-state calls only allocate the returned
/// output tensor. No patch matrix is retained — use [`conv2d_forward`] when
/// a backward pass will follow.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent with `spec`.
pub fn conv2d_forward_with_scratch(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let (n, c, _, _) = as_nchw(input)?;
    let wd = weight.dims();
    if wd.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: wd.len(),
        });
    }
    let (oc, wc, wkh, wkw) = (wd[0], wd[1], wd[2], wd[3]);
    if wc != c || wkh != spec.kh || wkw != spec.kw {
        return Err(TensorError::InvalidArgument(format!(
            "weight shape {wd:?} inconsistent with input channels {c} and kernel {}x{}",
            spec.kh, spec.kw
        )));
    }
    let ConvShape {
        oh,
        ow,
        patch,
        rows,
        ..
    } = conv_out_shape(input.dims(), spec)?;
    let cols = uninit_slice(&mut scratch.cols, rows * patch);
    im2col_into(input, spec, cols)?;
    // [rows, patch] @ [oc, patch]ᵀ -> [rows, oc]
    let out_mat = uninit_slice(&mut scratch.out_mat, rows * oc);
    ops::gemm(
        false,
        true,
        rows,
        oc,
        patch,
        1.0,
        cols,
        weight.data(),
        0.0,
        out_mat,
    );
    let out = relayout_nchw(out_mat, bias, n, oc, oh, ow);
    Tensor::from_vec(out, &[n, oc, oh, ow])
}

/// Re-layouts a `[N*OH*OW, OC]` GEMM result into `[N, OC, OH, OW]`, adding
/// the per-channel bias on the way.
fn relayout_nchw(
    om: &[f32],
    bias: Option<&Tensor>,
    n: usize,
    oc: usize,
    oh: usize,
    ow: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; n * oc * oh * ow];
    relayout_nchw_into(om, bias, n, oc, oh, ow, &mut out);
    out
}

/// [`relayout_nchw`] into a caller-provided slice of exactly `N*OC*OH*OW`
/// elements (every element is overwritten), adding the per-channel bias on
/// the way. Public so compiled plans can re-layout GEMM results straight
/// into arena buffers.
pub fn relayout_nchw_into(
    om: &[f32],
    bias: Option<&Tensor>,
    n: usize,
    oc: usize,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    relayout_nchw_strided(om, oc, 0, bias, n, oc, oh, ow, out);
}

/// [`relayout_nchw_into`] reading a `[N*OH*OW, ld]` GEMM result at column
/// offset `col0` — the extraction step of the batch-fused wide GEMM, where
/// realization `b` owns columns `[b·OC, (b+1)·OC)` of one `[rows, B·OC]`
/// product. Public so batched compiled plans can extract realizations
/// straight into arena buffers.
#[allow(clippy::too_many_arguments)]
pub fn relayout_nchw_strided(
    om: &[f32],
    ld: usize,
    col0: usize,
    bias: Option<&Tensor>,
    n: usize,
    oc: usize,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                for ci in 0..oc {
                    let mut v = om[row * ld + col0 + ci];
                    if let Some(b) = bias {
                        v += b.data()[ci];
                    }
                    out[((ni * oc + ci) * oh + oy) * ow + ox] = v;
                }
            }
        }
    }
}

/// Batched-weights 2-D convolution forward pass for the Monte-Carlo engine:
/// evaluates `batch` weight realizations (stacked `[B, OC, IC, KH, KW]`,
/// flattened) in one call.
///
/// With `shared == true` the input `[N, C, H, W]` is the same for every
/// realization: it is unfolded **once**, the patch matrix is packed **once**
/// (into `packed`) and reused against all `batch` kernel realizations — the
/// pack-once/reuse-many discipline that amortizes im2col and A-panel packing
/// across the batch. With `shared == false` the input is per-realization
/// (`[B·N, C, H, W]`, realization `b` owning rows `[b·N, (b+1)·N)`); the
/// unfold still happens in a single im2col call over the stacked batch.
///
/// The output is always per-realization: `[B·N, OC, OH, OW]`. Per
/// realization, the arithmetic is **bit-identical** to
/// [`conv2d_forward_with_scratch`] on that realization's input and weights.
/// The bias (applied digitally, outside the crossbar) is shared.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent with `spec`, the stacked
/// weight length is not `batch` realizations, or (for `shared == false`) the
/// leading input dimension is not divisible by `batch`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward_batched(
    input: &Tensor,
    shared: bool,
    batch: usize,
    stacked_weight: &[f32],
    weight_dims: &[usize],
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    packed: &mut PackedA,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let (n_total, c, _, _) = as_nchw(input)?;
    if weight_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: weight_dims.len(),
        });
    }
    let (oc, wc, wkh, wkw) = (
        weight_dims[0],
        weight_dims[1],
        weight_dims[2],
        weight_dims[3],
    );
    if wc != c || wkh != spec.kh || wkw != spec.kw {
        return Err(TensorError::InvalidArgument(format!(
            "weight shape {weight_dims:?} inconsistent with input channels {c} and kernel {}x{}",
            spec.kh, spec.kw
        )));
    }
    if batch == 0 {
        return Err(TensorError::InvalidArgument(
            "batched conv needs batch >= 1".into(),
        ));
    }
    let per_w = oc * c * spec.kh * spec.kw;
    if stacked_weight.len() != batch * per_w {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![batch, per_w],
            rhs: vec![stacked_weight.len()],
        });
    }
    let n_per = if shared {
        n_total
    } else {
        if n_total % batch != 0 {
            return Err(TensorError::InvalidArgument(format!(
                "per-realization input rows {n_total} not divisible by batch {batch}"
            )));
        }
        n_total / batch
    };
    let ConvShape { oh, ow, patch, .. } = conv_out_shape(input.dims(), spec)?;
    let rows_per = n_per * oh * ow;
    let per_out = n_per * oc * oh * ow;
    let mut out = vec![0.0f32; batch * per_out];
    // Split-borrow the scratch fields so the patch matrix, the GEMM staging
    // buffer and the B-panel packing buffer can be held simultaneously.
    let Scratch {
        cols: cols_buf,
        out_mat: om_buf,
        packed_b: packed_b_buf,
        ..
    } = scratch;
    let cols = uninit_slice(cols_buf, n_total * oh * ow * patch);
    im2col_into(input, spec, cols)?;
    if shared {
        // Fuse the B realizations into ONE wide product: the stacked kernels
        // `[B·OC, patch]` are already contiguous, so
        // `[rows, patch] @ [B·OC, patch]ᵀ → [rows, B·OC]` evaluates every
        // realization in a single GEMM. Each output element keeps exactly the
        // per-element k-accumulation order of a per-realization GEMM (the
        // n-blocking never reorders a dot product), so this is bit-identical
        // to B separate products — but the shared patch panel is packed and
        // streamed once instead of B times, and a small OC no longer wastes
        // the wide microkernel tile.
        let om = uninit_slice(om_buf, rows_per * batch * oc);
        crate::gemm::gemm(
            false,
            true,
            rows_per,
            batch * oc,
            patch,
            1.0,
            cols,
            stacked_weight,
            0.0,
            om,
        );
        for b in 0..batch {
            relayout_nchw_strided(
                om,
                batch * oc,
                b * oc,
                bias,
                n_per,
                oc,
                oh,
                ow,
                &mut out[b * per_out..][..per_out],
            );
        }
    } else {
        // Per-realization inputs form a block-diagonal product that cannot
        // be fused; pack each realization's patch slice once and reuse the
        // blocked traversal.
        let om = uninit_slice(om_buf, rows_per * oc);
        for b in 0..batch {
            packed.pack(
                false,
                &cols[b * rows_per * patch..][..rows_per * patch],
                rows_per,
                patch,
            );
            let weight_b = &stacked_weight[b * per_w..][..per_w];
            // [rows, patch] @ [oc, patch]ᵀ -> [rows, oc]
            gemm_prepacked(packed, true, oc, 1.0, weight_b, 0.0, om, packed_b_buf);
            relayout_nchw_into(
                om,
                bias,
                n_per,
                oc,
                oh,
                ow,
                &mut out[b * per_out..][..per_out],
            );
        }
    }
    Tensor::from_vec(out, &[batch * n_per, oc, oh, ow])
}

/// 2-D convolution backward pass.
///
/// `grad_output` is `[N, OutC, OH, OW]`; `cols` is the patch matrix cached by
/// [`conv2d_forward`].
///
/// # Errors
///
/// Returns an error when shapes are inconsistent.
pub fn conv2d_backward(
    grad_output: &Tensor,
    cols: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    spec: &Conv2dSpec,
) -> Result<Conv2dGrads> {
    let god = grad_output.dims();
    if god.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: god.len(),
        });
    }
    let (n, oc, oh, ow) = (god[0], god[1], god[2], god[3]);
    let wd = weight.dims();
    let patch = wd[1] * wd[2] * wd[3];
    // Re-layout grad_output [N, OC, OH, OW] into matrix [N*OH*OW, OC].
    let gd = grad_output.data();
    let mut go_mat = vec![0.0f32; n * oh * ow * oc];
    for ni in 0..n {
        for ci in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (ni * oh + oy) * ow + ox;
                    go_mat[row * oc + ci] = gd[((ni * oc + ci) * oh + oy) * ow + ox];
                }
            }
        }
    }
    let go_mat = Tensor::from_vec(go_mat, &[n * oh * ow, oc])?;
    let weight_mat = weight.reshape(&[oc, patch])?;
    // grad_cols = go_mat @ weight_mat : [rows, patch]
    let grad_cols = ops::matmul(&go_mat, &weight_mat)?;
    let grad_input = col2im(&grad_cols, input_dims, spec)?;
    // grad_weight = go_matᵀ @ cols : [OC, patch]
    let grad_weight = ops::matmul_at_b(&go_mat, cols)?.reshape(wd)?;
    // grad_bias = column sums of go_mat
    let grad_bias = ops::sum_axis(&go_mat, 0)?;
    Ok(Conv2dGrads {
        grad_input,
        grad_weight,
        grad_bias,
    })
}

/// 2-D convolution backward pass for training hot loops: identical math to
/// [`conv2d_backward`], but the gradient staging buffers (the re-laid-out
/// `grad_output` matrix, the patch-gradient matrix and the per-channel bias
/// sums) live in the caller's [`Scratch`], and the weight/bias gradients are
/// **accumulated in place** (`+=`) instead of being returned as fresh
/// tensors. Steady-state backward steps therefore allocate only the returned
/// input-gradient tensor.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_into(
    grad_output: &Tensor,
    cols: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    spec: &Conv2dSpec,
    grad_weight: &mut Tensor,
    grad_bias: Option<&mut Tensor>,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let god = grad_output.dims();
    if god.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: god.len(),
        });
    }
    let (n, oc, oh, ow) = (god[0], god[1], god[2], god[3]);
    let wd = weight.dims().to_vec();
    let patch = wd[1] * wd[2] * wd[3];
    let rows = n * oh * ow;
    let (cr, cc) = ops::as_matrix_dims(cols)?;
    if cr != rows || cc != patch {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![rows, patch],
            rhs: vec![cr, cc],
        });
    }
    if grad_weight.dims() != wd {
        return Err(TensorError::ShapeMismatch {
            lhs: wd,
            rhs: grad_weight.dims().to_vec(),
        });
    }
    let Scratch {
        cols: grad_cols_buf,
        out_mat: go_buf,
        step: bias_buf,
        ..
    } = scratch;
    // Re-layout grad_output [N, OC, OH, OW] into matrix [N*OH*OW, OC].
    let gd = grad_output.data();
    let go_mat = uninit_slice(go_buf, rows * oc);
    for ni in 0..n {
        for ci in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (ni * oh + oy) * ow + ox;
                    go_mat[row * oc + ci] = gd[((ni * oc + ci) * oh + oy) * ow + ox];
                }
            }
        }
    }
    // grad_weight += go_matᵀ @ cols : [OC, patch], fused with β = 1.
    crate::gemm::gemm(
        true,
        false,
        oc,
        patch,
        rows,
        1.0,
        go_mat,
        cols.data(),
        1.0,
        grad_weight.data_mut(),
    );
    if let Some(gb) = grad_bias {
        if gb.numel() != oc {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![oc],
                rhs: gb.dims().to_vec(),
            });
        }
        // Column sums of go_mat, staged so the accumulation into the live
        // gradient keeps the same summation order as `sum_axis` + add.
        let sums = uninit_slice(bias_buf, oc);
        sums.fill(0.0);
        for row in 0..rows {
            for (s, &g) in sums.iter_mut().zip(&go_mat[row * oc..(row + 1) * oc]) {
                *s += g;
            }
        }
        for (g, &s) in gb.data_mut().iter_mut().zip(sums.iter()) {
            *g += s;
        }
    }
    // grad_cols = go_mat @ weight_mat : [rows, patch]
    let grad_cols = uninit_slice(grad_cols_buf, rows * patch);
    crate::gemm::gemm(
        false,
        false,
        rows,
        patch,
        oc,
        1.0,
        go_mat,
        weight.data(),
        0.0,
        grad_cols,
    );
    let mut grad_input = vec![0.0f32; input_dims.iter().product()];
    col2im_into(grad_cols, rows, patch, input_dims, spec, &mut grad_input)?;
    Tensor::from_vec(grad_input, input_dims)
}

/// Lifts a `[N, C, L]` tensor to `[N, C, 1, L]` so 1-D convolutions reuse the
/// 2-D kernels.
///
/// # Errors
///
/// Returns an error when the input is not rank-3.
pub fn lift_1d(input: &Tensor) -> Result<Tensor> {
    let d = input.dims();
    if d.len() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: d.len(),
        });
    }
    input.reshape(&[d[0], d[1], 1, d[2]])
}

/// Squeezes a `[N, C, 1, L]` tensor back to `[N, C, L]`.
///
/// # Errors
///
/// Returns an error when the input is not rank-4 with height 1.
pub fn squeeze_1d(input: &Tensor) -> Result<Tensor> {
    let d = input.dims();
    if d.len() != 4 || d[2] != 1 {
        return Err(TensorError::InvalidArgument(format!(
            "expected [N, C, 1, L], got {d:?}"
        )));
    }
    input.reshape(&[d[0], d[1], d[3]])
}

fn as_nchw(t: &Tensor) -> Result<(usize, usize, usize, usize)> {
    let d = t.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: d.len(),
        });
    }
    Ok((d[0], d[1], d[2], d[3]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn reference_conv2d(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: &Conv2dSpec,
    ) -> Tensor {
        let (n, c, h, w) = as_nchw(input).unwrap();
        let wd = weight.dims();
        let oc = wd[0];
        let (oh, ow) = spec.output_hw(h, w).unwrap();
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for ni in 0..n {
            for co in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map(|b| b.data()[co]).unwrap_or(0.0);
                        for ci in 0..c {
                            for ky in 0..spec.kh {
                                for kx in 0..spec.kw {
                                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                    if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w
                                    {
                                        let xv =
                                            input.get(&[ni, ci, iy as usize, ix as usize]).unwrap();
                                        let wv = weight.get(&[co, ci, ky, kx]).unwrap();
                                        acc += xv * wv;
                                    }
                                }
                            }
                        }
                        out.set(&[ni, co, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn output_geometry() {
        let spec = Conv2dSpec::new(3, 1, 1);
        assert_eq!(spec.output_hw(8, 8).unwrap(), (8, 8));
        let spec = Conv2dSpec::new(3, 2, 1);
        assert_eq!(spec.output_hw(8, 8).unwrap(), (4, 4));
        let spec = Conv2dSpec::new(5, 1, 0);
        assert!(spec.output_hw(3, 3).is_err());
        let bad = Conv2dSpec {
            kh: 1,
            kw: 1,
            stride: 0,
            pad: 0,
        };
        assert!(bad.output_hw(4, 4).is_err());
    }

    #[test]
    fn forward_matches_naive_reference() {
        let mut rng = Rng::seed_from(2);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = Conv2dSpec::new(3, stride, pad);
            let input = Tensor::randn(&[2, 3, 6, 6], 0.0, 1.0, &mut rng);
            let weight = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.5, &mut rng);
            let bias = Tensor::randn(&[4], 0.0, 0.5, &mut rng);
            let got = conv2d_forward(&input, &weight, Some(&bias), &spec).unwrap();
            let expected = reference_conv2d(&input, &weight, Some(&bias), &spec);
            assert!(
                got.output.approx_eq(&expected, 1e-4),
                "mismatch for stride {stride} pad {pad}"
            );
        }
    }

    #[test]
    fn im2col_col2im_adjointness() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair, which is exactly what backward needs.
        let mut rng = Rng::seed_from(3);
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let cols = im2col(&x, &spec).unwrap();
        let y = Tensor::randn(cols.dims(), 0.0, 1.0, &mut rng);
        let lhs: f32 = cols
            .data()
            .iter()
            .zip(y.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        let back = col2im(&y, x.dims(), &spec).unwrap();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(back.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-2, "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = Rng::seed_from(4);
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn(&[3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let bias = Tensor::randn(&[3], 0.0, 0.5, &mut rng);

        // Loss = sum(output); grad_output = ones.
        let fwd = conv2d_forward(&input, &weight, Some(&bias), &spec).unwrap();
        let grad_out = Tensor::ones(fwd.output.dims());
        let grads = conv2d_backward(&grad_out, &fwd.cols, &weight, input.dims(), &spec).unwrap();

        let eps = 1e-2f32;
        // Check a few weight coordinates against central differences.
        for &idx in &[0usize, 7, 20, 35] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let lp = conv2d_forward(&input, &wp, Some(&bias), &spec)
                .unwrap()
                .output
                .sum();
            let lm = conv2d_forward(&input, &wm, Some(&bias), &spec)
                .unwrap()
                .output
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.grad_weight.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "weight grad {idx}: numerical {num} analytic {ana}"
            );
        }
        // Check a few input coordinates.
        for &idx in &[0usize, 5, 17, 31] {
            let mut xp = input.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = input.clone();
            xm.data_mut()[idx] -= eps;
            let lp = conv2d_forward(&xp, &weight, Some(&bias), &spec)
                .unwrap()
                .output
                .sum();
            let lm = conv2d_forward(&xm, &weight, Some(&bias), &spec)
                .unwrap()
                .output
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.grad_input.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "input grad {idx}: numerical {num} analytic {ana}"
            );
        }
        // Bias gradient: each output position contributes 1.
        let per_channel = (fwd.output.numel() / 3) as f32;
        for &g in grads.grad_bias.data() {
            assert!((g - per_channel).abs() < 1e-3);
        }
    }

    #[test]
    fn lift_and_squeeze_1d() {
        let x = Tensor::linspace(0.0, 1.0, 12).reshape(&[2, 2, 3]).unwrap();
        let lifted = lift_1d(&x).unwrap();
        assert_eq!(lifted.dims(), &[2, 2, 1, 3]);
        let back = squeeze_1d(&lifted).unwrap();
        assert!(back.approx_eq(&x, 0.0));
        assert!(lift_1d(&Tensor::zeros(&[2, 2])).is_err());
        assert!(squeeze_1d(&Tensor::zeros(&[2, 2, 2, 3])).is_err());
    }

    #[test]
    fn conv_rejects_inconsistent_weight() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = Tensor::zeros(&[1, 3, 8, 8]);
        let weight = Tensor::zeros(&[4, 2, 3, 3]); // wrong in-channels
        assert!(conv2d_forward(&input, &weight, None, &spec).is_err());
        let mut scratch = Scratch::new();
        assert!(conv2d_forward_with_scratch(&input, &weight, None, &spec, &mut scratch).is_err());
    }

    #[test]
    fn scratch_forward_matches_allocating_forward() {
        let mut rng = Rng::seed_from(10);
        let mut scratch = Scratch::new();
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = Conv2dSpec::new(3, stride, pad);
            let input = Tensor::randn(&[2, 3, 7, 7], 0.0, 1.0, &mut rng);
            let weight = Tensor::randn(&[5, 3, 3, 3], 0.0, 0.5, &mut rng);
            let bias = Tensor::randn(&[5], 0.0, 0.5, &mut rng);
            let reference = conv2d_forward(&input, &weight, Some(&bias), &spec)
                .unwrap()
                .output;
            let got =
                conv2d_forward_with_scratch(&input, &weight, Some(&bias), &spec, &mut scratch)
                    .unwrap();
            assert!(got.approx_eq(&reference, 1e-5), "stride {stride} pad {pad}");
        }
    }

    #[test]
    fn scratch_forward_reuses_buffers_across_calls() {
        let mut rng = Rng::seed_from(11);
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = Tensor::randn(&[2, 4, 12, 12], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn(&[8, 4, 3, 3], 0.0, 0.5, &mut rng);
        let mut scratch = Scratch::new();
        conv2d_forward_with_scratch(&input, &weight, None, &spec, &mut scratch).unwrap();
        let warm = scratch.capacity();
        for _ in 0..3 {
            conv2d_forward_with_scratch(&input, &weight, None, &spec, &mut scratch).unwrap();
        }
        assert_eq!(scratch.capacity(), warm, "steady state must not reallocate");
    }

    #[test]
    fn batched_forward_matches_per_realization_scratch_forward() {
        let mut rng = Rng::seed_from(20);
        let spec = Conv2dSpec::new(3, 1, 1);
        let batch = 3usize;
        let (n, c, h, w, oc) = (2usize, 3usize, 6usize, 6usize, 4usize);
        let weights: Vec<Tensor> = (0..batch)
            .map(|_| Tensor::randn(&[oc, c, 3, 3], 0.0, 0.5, &mut rng))
            .collect();
        let stacked: Vec<f32> = weights.iter().flat_map(|t| t.data().to_vec()).collect();
        let bias = Tensor::randn(&[oc], 0.0, 0.5, &mut rng);
        let mut packed = PackedA::new();
        let mut scratch = Scratch::new();

        // Shared input: one im2col, one pack, `batch` kernel realizations.
        let x = Tensor::randn(&[n, c, h, w], 0.0, 1.0, &mut rng);
        let got = conv2d_forward_batched(
            &x,
            true,
            batch,
            &stacked,
            &[oc, c, 3, 3],
            Some(&bias),
            &spec,
            &mut packed,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(got.dims(), &[batch * n, oc, h, w]);
        let per = n * oc * h * w;
        for (b, wt) in weights.iter().enumerate() {
            let mut s = Scratch::new();
            let expected = conv2d_forward_with_scratch(&x, wt, Some(&bias), &spec, &mut s).unwrap();
            let slice = &got.data()[b * per..(b + 1) * per];
            let identical = slice
                .iter()
                .zip(expected.data().iter())
                .all(|(a, e)| a.to_bits() == e.to_bits());
            assert!(identical, "shared-input realization {b} diverged");
        }

        // Per-realization input: one im2col over the stacked batch.
        let xs: Vec<Tensor> = (0..batch)
            .map(|_| Tensor::randn(&[n, c, h, w], 0.0, 1.0, &mut rng))
            .collect();
        let stacked_x: Vec<f32> = xs.iter().flat_map(|t| t.data().to_vec()).collect();
        let x_all = Tensor::from_vec(stacked_x, &[batch * n, c, h, w]).unwrap();
        let got = conv2d_forward_batched(
            &x_all,
            false,
            batch,
            &stacked,
            &[oc, c, 3, 3],
            Some(&bias),
            &spec,
            &mut packed,
            &mut scratch,
        )
        .unwrap();
        for (b, (wt, xb)) in weights.iter().zip(&xs).enumerate() {
            let mut s = Scratch::new();
            let expected = conv2d_forward_with_scratch(xb, wt, Some(&bias), &spec, &mut s).unwrap();
            let slice = &got.data()[b * per..(b + 1) * per];
            let identical = slice
                .iter()
                .zip(expected.data().iter())
                .all(|(a, e)| a.to_bits() == e.to_bits());
            assert!(identical, "per-realization input {b} diverged");
        }
    }

    #[test]
    fn batched_forward_validates_shapes() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::zeros(&[2, 3, 6, 6]);
        let mut packed = PackedA::new();
        let mut scratch = Scratch::new();
        // Wrong stacked length.
        assert!(conv2d_forward_batched(
            &x,
            true,
            2,
            &[0.0; 10],
            &[4, 3, 3, 3],
            None,
            &spec,
            &mut packed,
            &mut scratch,
        )
        .is_err());
        // Per-realization rows not divisible by batch.
        let stacked = vec![0.0f32; 3 * 4 * 3 * 3 * 3];
        assert!(conv2d_forward_batched(
            &x,
            false,
            3,
            &stacked,
            &[4, 3, 3, 3],
            None,
            &spec,
            &mut packed,
            &mut scratch,
        )
        .is_err());
    }

    #[test]
    fn backward_into_matches_allocating_backward() {
        let mut rng = Rng::seed_from(21);
        for &(stride, pad) in &[(1usize, 1usize), (2, 1)] {
            let spec = Conv2dSpec::new(3, stride, pad);
            let input = Tensor::randn(&[2, 3, 6, 6], 0.0, 1.0, &mut rng);
            let weight = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.5, &mut rng);
            let fwd = conv2d_forward(&input, &weight, None, &spec).unwrap();
            let grad_out = Tensor::randn(fwd.output.dims(), 0.0, 1.0, &mut rng);
            let reference =
                conv2d_backward(&grad_out, &fwd.cols, &weight, input.dims(), &spec).unwrap();

            let mut scratch = Scratch::new();
            let mut gw = Tensor::zeros(weight.dims());
            let mut gb = Tensor::zeros(&[4]);
            let gi = conv2d_backward_into(
                &grad_out,
                &fwd.cols,
                &weight,
                input.dims(),
                &spec,
                &mut gw,
                Some(&mut gb),
                &mut scratch,
            )
            .unwrap();
            assert!(gi.approx_eq(&reference.grad_input, 1e-5));
            assert!(gw.approx_eq(&reference.grad_weight, 1e-5));
            assert!(gb.approx_eq(&reference.grad_bias, 1e-4));

            // Accumulation semantics: a second call doubles the gradients.
            conv2d_backward_into(
                &grad_out,
                &fwd.cols,
                &weight,
                input.dims(),
                &spec,
                &mut gw,
                Some(&mut gb),
                &mut scratch,
            )
            .unwrap();
            assert!(gw.approx_eq(&reference.grad_weight.scale(2.0), 1e-4));

            // Steady state: no further scratch growth.
            let warm = scratch.capacity();
            for _ in 0..2 {
                conv2d_backward_into(
                    &grad_out,
                    &fwd.cols,
                    &weight,
                    input.dims(),
                    &spec,
                    &mut gw,
                    Some(&mut gb),
                    &mut scratch,
                )
                .unwrap();
            }
            assert_eq!(scratch.capacity(), warm, "stride {stride} pad {pad}");
        }
    }

    #[test]
    fn im2col_into_rejects_wrong_buffer_length() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = Tensor::zeros(&[1, 2, 5, 5]);
        let mut too_small = vec![0.0f32; 7];
        assert!(im2col_into(&input, &spec, &mut too_small).is_err());
    }

    #[test]
    fn im2col_codes_agrees_with_f32_im2col() {
        // Integer-valued input: the i8 unfolding must produce exactly the
        // same patch matrix as the f32 path (zero padding = code 0).
        let mut rng = Rng::seed_from(12);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = Conv2dSpec::new(3, stride, pad);
            let codes: Vec<i8> = (0..2 * 3 * 6 * 6)
                .map(|_| (rng.normal(0.0, 40.0).round().clamp(-127.0, 127.0)) as i8)
                .collect();
            let dims = [2usize, 3, 6, 6];
            let as_f32: Vec<f32> = codes.iter().map(|&c| f32::from(c)).collect();
            let input = Tensor::from_vec(as_f32, &dims).unwrap();
            let expected = im2col(&input, &spec).unwrap();
            let mut cols = vec![0i8; expected.numel()];
            im2col_codes_into(&codes, &dims, &spec, &mut cols).unwrap();
            for (got, want) in cols.iter().zip(expected.data().iter()) {
                assert_eq!(f32::from(*got), *want, "stride {stride} pad {pad}");
            }
        }
        // Error paths: wrong rank, wrong code count, wrong buffer length.
        let spec = Conv2dSpec::new(3, 1, 1);
        let mut cols = vec![0i8; 8];
        assert!(im2col_codes_into(&[0i8; 4], &[2, 2], &spec, &mut cols).is_err());
        assert!(im2col_codes_into(&[0i8; 4], &[1, 2, 5, 5], &spec, &mut cols).is_err());
        assert!(im2col_codes_into(&[0i8; 50], &[1, 2, 5, 5], &spec, &mut cols).is_err());
    }
}
