//! Dense linear-algebra and reduction kernels.
//!
//! These free functions operate on [`Tensor`]s interpreted as matrices
//! (rank-2) or batches of rows, and provide the handful of primitives the
//! layer implementations need: matrix products (including the transposed
//! variants used in backward passes), transposition, row-wise softmax /
//! log-softmax, and single-axis reductions.
//!
//! All three matrix-product entry points route into the cache-blocked,
//! register-tiled [`gemm`] kernel (see [`crate::gemm`]); the original naive
//! triple loops are retained verbatim in [`reference`] as the correctness
//! oracle for tests and the baseline for the `layer_throughput` benchmark.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

pub use crate::gemm::{gemm, gemm_with_scratch};
pub use crate::qgemm::{qgemm, qgemm_with_scratch};

/// Matrix product `a @ b` for `a: [m, k]` and `b: [k, n]`.
///
/// # Errors
///
/// Returns an error when either input is not rank-2 or the inner dimensions
/// disagree.
///
/// # Example
///
/// ```
/// use invnorm_tensor::{ops, Tensor};
/// # fn main() -> Result<(), invnorm_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert!(ops::matmul(&a, &i)?.approx_eq(&a, 1e-6));
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(a)?;
    let (k2, n) = as_matrix_dims(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm(
        false,
        false,
        m,
        n,
        k,
        1.0,
        a.data(),
        b.data(),
        0.0,
        &mut out,
    );
    Tensor::from_vec(out, &[m, n])
}

/// Matrix product `aᵀ @ b` for `a: [k, m]` and `b: [k, n]` without forming the
/// transpose explicitly. Used for weight gradients.
///
/// # Errors
///
/// Returns an error when either input is not rank-2 or the shared dimension
/// disagrees.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = as_matrix_dims(a)?;
    let (k2, n) = as_matrix_dims(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm(true, false, m, n, k, 1.0, a.data(), b.data(), 0.0, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Matrix product `a @ bᵀ` for `a: [m, k]` and `b: [n, k]` without forming the
/// transpose explicitly. Used for input gradients.
///
/// # Errors
///
/// Returns an error when either input is not rank-2 or the shared dimension
/// disagrees.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(a)?;
    let (n, k2) = as_matrix_dims(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm(false, true, m, n, k, 1.0, a.data(), b.data(), 0.0, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Shape-checked tensor wrapper over [`gemm`]:
/// `c ← α · op(a) · op(b) + β · c`.
///
/// Backward passes use `beta == 1.0` to accumulate weight gradients directly
/// into the gradient tensor, fusing the former `matmul + add_assign` pair
/// into one pass with no temporary allocation.
///
/// # Errors
///
/// Returns an error when an operand is not rank-2 or the shapes are
/// inconsistent with `c`'s `[m, n]`.
pub fn gemm_into(
    trans_a: bool,
    trans_b: bool,
    alpha: f32,
    a: &Tensor,
    b: &Tensor,
    beta: f32,
    c: &mut Tensor,
) -> Result<()> {
    let (ar, ac) = as_matrix_dims(a)?;
    let (br, bc) = as_matrix_dims(b)?;
    let (m, k) = if trans_a { (ac, ar) } else { (ar, ac) };
    let (kb, n) = if trans_b { (bc, br) } else { (br, bc) };
    if k != kb {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: kb,
        });
    }
    let (cr, cc) = as_matrix_dims(c)?;
    if cr != m || cc != n {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, n],
            rhs: vec![cr, cc],
        });
    }
    gemm(
        trans_a,
        trans_b,
        m,
        n,
        k,
        alpha,
        a.data(),
        b.data(),
        beta,
        c.data_mut(),
    );
    Ok(())
}

/// The seed's original naive matrix-product kernels, retained verbatim as
/// the correctness oracle for the blocked [`gemm`] and as the baseline the
/// `layer_throughput` benchmark measures speedups against.
///
/// Note the data-dependent `if a_ip == 0.0 { continue; }` branch in
/// [`reference::matmul`]: it makes dense throughput depend on activation
/// sparsity and poisons the hot loop with a branch per k-step — exactly what
/// the blocked kernel eliminates.
pub mod reference {
    use super::{as_matrix_dims, Result, Tensor, TensorError};

    /// Naive `a @ b` (row-major ikj loop with the historical sparsity skip).
    ///
    /// # Errors
    ///
    /// Returns an error when either input is not rank-2 or the inner
    /// dimensions disagree.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, k) = as_matrix_dims(a)?;
        let (k2, n) = as_matrix_dims(b)?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: k2,
            });
        }
        let ad = a.data();
        let bd = b.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &ad[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &bd[p * n..(p + 1) * n];
                for (j, &b_pj) in b_row.iter().enumerate() {
                    out_row[j] += a_ip * b_pj;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Naive `aᵀ @ b` for `a: [k, m]`, `b: [k, n]`.
    ///
    /// # Errors
    ///
    /// Returns an error when either input is not rank-2 or the shared
    /// dimension disagrees.
    pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (k, m) = as_matrix_dims(a)?;
        let (k2, n) = as_matrix_dims(b)?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: k2,
            });
        }
        let ad = a.data();
        let bd = b.data();
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &ad[p * m..(p + 1) * m];
            let b_row = &bd[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (j, &b_pj) in b_row.iter().enumerate() {
                    out_row[j] += a_pi * b_pj;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Naive integer oracle for the blocked i8 GEMM in [`crate::qgemm`]:
    /// `op(A) · op(B)` over i8 codes with exact i32 accumulation, in the
    /// textbook ijk order. The blocked kernel must match this **bit-exactly**
    /// (integer arithmetic is exact, so any summation order agrees).
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the given dimensions.
    pub fn qmatmul_i8(
        trans_a: bool,
        trans_b: bool,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
    ) -> Vec<i32> {
        assert_eq!(a.len(), m * k, "A must hold m*k codes");
        assert_eq!(b.len(), k * n, "B must hold k*n codes");
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut dot = 0i32;
                for p in 0..k {
                    let av = if trans_a { a[p * m + i] } else { a[i * k + p] };
                    let bv = if trans_b { b[j * k + p] } else { b[p * n + j] };
                    dot += i32::from(av) * i32::from(bv);
                }
                out[i * n + j] = dot;
            }
        }
        out
    }

    /// Naive `a @ bᵀ` for `a: [m, k]`, `b: [n, k]`.
    ///
    /// # Errors
    ///
    /// Returns an error when either input is not rank-2 or the shared
    /// dimension disagrees.
    pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, k) = as_matrix_dims(a)?;
        let (n, k2) = as_matrix_dims(b)?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: k2,
            });
        }
        let ad = a.data();
        let bd = b.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &ad[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, out_ij) in out_row.iter_mut().enumerate() {
                let b_row = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                *out_ij = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns an error when the input is not rank-2.
pub fn transpose2d(a: &Tensor) -> Result<Tensor> {
    let (m, n) = as_matrix_dims(a)?;
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// Numerically stable softmax applied independently to each row of a rank-2
/// tensor `[rows, cols]`.
///
/// The row max and the denominator sum are sequential scalar reductions (so
/// the result is independent of the kernel tier); the exp and normalization
/// passes go through the tier-dispatched [`crate::vecmath`] kernels, which
/// are per-lane and bit-identical across tiers.
///
/// # Errors
///
/// Returns an error when the input is not rank-2.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let (rows, cols) = as_matrix_dims(logits)?;
    let ld = logits.data();
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &ld[r * cols..(r + 1) * cols];
        let out_row = &mut out[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        crate::vecmath::exp_sub(row, out_row, max);
        let denom = out_row.iter().sum::<f32>();
        crate::vecmath::div_scalar_mut(out_row, denom);
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Numerically stable log-softmax applied independently to each row.
///
/// Reductions stay sequential scalar code and the exp pass is the
/// tier-dispatched [`crate::vecmath`] kernel, as in [`softmax_rows`].
///
/// # Errors
///
/// Returns an error when the input is not rank-2.
pub fn log_softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let (rows, cols) = as_matrix_dims(logits)?;
    let ld = logits.data();
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &ld[r * cols..(r + 1) * cols];
        let out_row = &mut out[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // Use the output row as scratch for the exp values, then overwrite.
        crate::vecmath::exp_sub(row, out_row, max);
        let log_denom = out_row.iter().sum::<f32>().ln();
        for (o, &x) in out_row.iter_mut().zip(row.iter()) {
            *o = x - max - log_denom;
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Index of the maximum entry of each row of a rank-2 tensor.
///
/// # Errors
///
/// Returns an error when the input is not rank-2.
pub fn argmax_rows(scores: &Tensor) -> Result<Vec<usize>> {
    let (rows, cols) = as_matrix_dims(scores)?;
    let data = scores.data();
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        let mut best = 0usize;
        let mut best_val = f32::NEG_INFINITY;
        for (j, &x) in row.iter().enumerate() {
            if x > best_val {
                best_val = x;
                best = j;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// Sums a tensor along one axis, removing that axis.
///
/// # Errors
///
/// Returns an error when `axis` is out of range.
pub fn sum_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    reduce_axis(t, axis, |acc, x| acc + x, 0.0, |acc, _| acc)
}

/// Averages a tensor along one axis, removing that axis.
///
/// # Errors
///
/// Returns an error when `axis` is out of range.
pub fn mean_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    let n = t.shape().dim(axis)? as f32;
    reduce_axis(t, axis, |acc, x| acc + x, 0.0, move |acc, _| acc / n)
}

fn reduce_axis(
    t: &Tensor,
    axis: usize,
    combine: impl Fn(f32, f32) -> f32,
    init: f32,
    finish: impl Fn(f32, usize) -> f32,
) -> Result<Tensor> {
    let dims = t.dims();
    if axis >= dims.len() {
        return Err(TensorError::AxisOutOfRange {
            axis,
            rank: dims.len(),
        });
    }
    let axis_len = dims[axis];
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();
    let data = t.data();
    let mut out = vec![init; outer * inner];
    for o in 0..outer {
        for a in 0..axis_len {
            let base = (o * axis_len + a) * inner;
            for i in 0..inner {
                let idx = o * inner + i;
                out[idx] = combine(out[idx], data[base + i]);
            }
        }
    }
    for v in &mut out {
        *v = finish(*v, axis_len);
    }
    let mut new_dims: Vec<usize> = dims[..axis].to_vec();
    new_dims.extend_from_slice(&dims[axis + 1..]);
    if new_dims.is_empty() {
        new_dims.push(1);
    }
    Tensor::from_vec(out, &new_dims)
}

/// Interprets a tensor as a matrix, returning `(rows, cols)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] when the tensor is not rank-2.
pub fn as_matrix_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use proptest::prelude::*;

    #[test]
    fn matmul_identity_and_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            matmul(&v, &a),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn transposed_products_match_explicit_transpose() {
        let mut rng = Rng::seed_from(0);
        let a = Tensor::randn(&[4, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[4, 5], 0.0, 1.0, &mut rng);
        let expected = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        let got = matmul_at_b(&a, &b).unwrap();
        assert!(got.approx_eq(&expected, 1e-4));

        let c = Tensor::randn(&[6, 3], 0.0, 1.0, &mut rng);
        let d = Tensor::randn(&[5, 3], 0.0, 1.0, &mut rng);
        let expected = matmul(&c, &transpose2d(&d).unwrap()).unwrap();
        let got = matmul_a_bt(&c, &d).unwrap();
        assert!(got.approx_eq(&expected, 1e-4));
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[3, 7], 0.0, 1.0, &mut rng);
        let back = transpose2d(&transpose2d(&a).unwrap()).unwrap();
        assert!(a.approx_eq(&back, 0.0));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_shift_invariant() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        for r in 0..2 {
            let s: f32 = p.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        let shifted = logits.shift(100.0);
        let p2 = softmax_rows(&shifted).unwrap();
        assert!(p.approx_eq(&p2, 1e-5));
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 2.0, 1.0, 1.0, 1.0], &[2, 3]).unwrap();
        let p = softmax_rows(&logits).unwrap().map(|x| x.ln());
        let lp = log_softmax_rows(&logits).unwrap();
        assert!(p.approx_eq(&lp, 1e-5));
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0, 0.0], &[1, 3]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        assert!(!p.has_non_finite());
        assert!((p.data()[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let scores = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.3], &[2, 3]).unwrap();
        assert_eq!(argmax_rows(&scores).unwrap(), vec![1, 0]);
    }

    #[test]
    fn sum_and_mean_axis() {
        let t = Tensor::from_vec((1..=12).map(|x| x as f32).collect(), &[2, 3, 2]).unwrap();
        let s0 = sum_axis(&t, 0).unwrap();
        assert_eq!(s0.dims(), &[3, 2]);
        assert_eq!(s0.data()[0], 1.0 + 7.0);
        let m1 = mean_axis(&t, 1).unwrap();
        assert_eq!(m1.dims(), &[2, 2]);
        assert!((m1.data()[0] - (1.0 + 3.0 + 5.0) / 3.0).abs() < 1e-6);
        assert!(sum_axis(&t, 3).is_err());
    }

    #[test]
    fn sum_axis_scalar_result_keeps_rank_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let s = sum_axis(&t, 0).unwrap();
        assert_eq!(s.dims(), &[1]);
        assert_eq!(s.data(), &[6.0]);
    }

    #[test]
    fn gemm_into_accumulates_and_checks_shapes() {
        let mut rng = Rng::seed_from(20);
        let a = Tensor::randn(&[5, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
        let product = matmul(&a, &b).unwrap();
        // beta = 1 accumulates into existing contents.
        let mut c = Tensor::ones(&[5, 4]);
        gemm_into(false, false, 1.0, &a, &b, 1.0, &mut c).unwrap();
        let expected = product.add(&Tensor::ones(&[5, 4])).unwrap();
        assert!(c.approx_eq(&expected, 1e-5));
        // Transposed variants agree with the matmul helpers.
        let at = transpose2d(&a).unwrap();
        let mut c = Tensor::zeros(&[5, 4]);
        gemm_into(true, false, 1.0, &at, &b, 0.0, &mut c).unwrap();
        assert!(c.approx_eq(&product, 1e-5));
        // Mismatched output shape is rejected.
        let mut wrong = Tensor::zeros(&[4, 5]);
        assert!(gemm_into(false, false, 1.0, &a, &b, 0.0, &mut wrong).is_err());
        // Mismatched inner dimension is rejected.
        let bad = Tensor::zeros(&[2, 4]);
        let mut c = Tensor::zeros(&[5, 4]);
        assert!(gemm_into(false, false, 1.0, &a, &bad, 0.0, &mut c).is_err());
    }

    #[test]
    fn gemv_shapes_match_reference() {
        // m == 1 (row-vector GEMV) and n == 1 (matrix-vector) paths.
        let mut rng = Rng::seed_from(21);
        let a = Tensor::randn(&[1, 37], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[37, 19], 0.0, 1.0, &mut rng);
        assert!(matmul(&a, &b)
            .unwrap()
            .approx_eq(&reference::matmul(&a, &b).unwrap(), 1e-4));
        let c = Tensor::randn(&[23, 41], 0.0, 1.0, &mut rng);
        let v = Tensor::randn(&[41, 1], 0.0, 1.0, &mut rng);
        assert!(matmul(&c, &v)
            .unwrap()
            .approx_eq(&reference::matmul(&c, &v).unwrap(), 1e-4));
    }

    #[test]
    fn blocked_kernel_handles_sparse_inputs_like_reference() {
        // The retained naive kernel skips zero activations; the branch-free
        // blocked kernel must produce the same values anyway.
        let mut rng = Rng::seed_from(22);
        let mut a = Tensor::randn(&[30, 50], 0.0, 1.0, &mut rng);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::randn(&[50, 20], 0.0, 1.0, &mut rng);
        assert!(matmul(&a, &b)
            .unwrap()
            .approx_eq(&reference::matmul(&a, &b).unwrap(), 1e-4));
    }

    proptest::proptest! {
        #[test]
        fn prop_blocked_matmul_matches_naive_reference(
            m in 1usize..40,
            k in 1usize..70,
            n in 1usize..40,
            seed in 0u32..1000,
        ) {
            let mut rng = Rng::seed_from(seed as u64);
            let a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
            let blocked = matmul(&a, &b).unwrap();
            let naive = reference::matmul(&a, &b).unwrap();
            prop_assert!(blocked.approx_eq(&naive, 1e-3), "m={} k={} n={}", m, k, n);
        }

        #[test]
        fn prop_transposed_products_match_naive_reference(
            m in 1usize..24,
            k in 1usize..48,
            n in 1usize..24,
            seed in 0u32..1000,
        ) {
            let mut rng = Rng::seed_from(1000 + seed as u64);
            let a_t = Tensor::randn(&[k, m], 0.0, 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
            prop_assert!(matmul_at_b(&a_t, &b)
                .unwrap()
                .approx_eq(&reference::matmul_at_b(&a_t, &b).unwrap(), 1e-3));
            let a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
            let b_t = Tensor::randn(&[n, k], 0.0, 1.0, &mut rng);
            prop_assert!(matmul_a_bt(&a, &b_t)
                .unwrap()
                .approx_eq(&reference::matmul_a_bt(&a, &b_t).unwrap(), 1e-3));
        }
    }
}
