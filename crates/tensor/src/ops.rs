//! Dense linear-algebra and reduction kernels.
//!
//! These free functions operate on [`Tensor`]s interpreted as matrices
//! (rank-2) or batches of rows, and provide the handful of primitives the
//! layer implementations need: matrix products (including the transposed
//! variants used in backward passes), transposition, row-wise softmax /
//! log-softmax, and single-axis reductions.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Matrix product `a @ b` for `a: [m, k]` and `b: [k, n]`.
///
/// # Errors
///
/// Returns an error when either input is not rank-2 or the inner dimensions
/// disagree.
///
/// # Example
///
/// ```
/// use invnorm_tensor::{ops, Tensor};
/// # fn main() -> Result<(), invnorm_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert!(ops::matmul(&a, &i)?.approx_eq(&a, 1e-6));
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(a)?;
    let (k2, n) = as_matrix_dims(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &bd[p * n..(p + 1) * n];
            for (j, &b_pj) in b_row.iter().enumerate() {
                out_row[j] += a_ip * b_pj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Matrix product `aᵀ @ b` for `a: [k, m]` and `b: [k, n]` without forming the
/// transpose explicitly. Used for weight gradients.
///
/// # Errors
///
/// Returns an error when either input is not rank-2 or the shared dimension
/// disagrees.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = as_matrix_dims(a)?;
    let (k2, n) = as_matrix_dims(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    for p in 0..k {
        let a_row = &ad[p * m..(p + 1) * m];
        let b_row = &bd[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, &b_pj) in b_row.iter().enumerate() {
                out_row[j] += a_pi * b_pj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Matrix product `a @ bᵀ` for `a: [m, k]` and `b: [n, k]` without forming the
/// transpose explicitly. Used for input gradients.
///
/// # Errors
///
/// Returns an error when either input is not rank-2 or the shared dimension
/// disagrees.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(a)?;
    let (n, k2) = as_matrix_dims(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, out_ij) in out_row.iter_mut().enumerate() {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *out_ij = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns an error when the input is not rank-2.
pub fn transpose2d(a: &Tensor) -> Result<Tensor> {
    let (m, n) = as_matrix_dims(a)?;
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// Numerically stable softmax applied independently to each row of a rank-2
/// tensor `[rows, cols]`.
///
/// # Errors
///
/// Returns an error when the input is not rank-2.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let (rows, cols) = as_matrix_dims(logits)?;
    let ld = logits.data();
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &ld[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (j, &x) in row.iter().enumerate() {
            let e = (x - max).exp();
            out[r * cols + j] = e;
            denom += e;
        }
        for j in 0..cols {
            out[r * cols + j] /= denom;
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Numerically stable log-softmax applied independently to each row.
///
/// # Errors
///
/// Returns an error when the input is not rank-2.
pub fn log_softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let (rows, cols) = as_matrix_dims(logits)?;
    let ld = logits.data();
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &ld[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_denom = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
        for (j, &x) in row.iter().enumerate() {
            out[r * cols + j] = x - max - log_denom;
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Index of the maximum entry of each row of a rank-2 tensor.
///
/// # Errors
///
/// Returns an error when the input is not rank-2.
pub fn argmax_rows(scores: &Tensor) -> Result<Vec<usize>> {
    let (rows, cols) = as_matrix_dims(scores)?;
    let data = scores.data();
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        let mut best = 0usize;
        let mut best_val = f32::NEG_INFINITY;
        for (j, &x) in row.iter().enumerate() {
            if x > best_val {
                best_val = x;
                best = j;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// Sums a tensor along one axis, removing that axis.
///
/// # Errors
///
/// Returns an error when `axis` is out of range.
pub fn sum_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    reduce_axis(t, axis, |acc, x| acc + x, 0.0, |acc, _| acc)
}

/// Averages a tensor along one axis, removing that axis.
///
/// # Errors
///
/// Returns an error when `axis` is out of range.
pub fn mean_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    let n = t.shape().dim(axis)? as f32;
    reduce_axis(t, axis, |acc, x| acc + x, 0.0, move |acc, _| acc / n)
}

fn reduce_axis(
    t: &Tensor,
    axis: usize,
    combine: impl Fn(f32, f32) -> f32,
    init: f32,
    finish: impl Fn(f32, usize) -> f32,
) -> Result<Tensor> {
    let dims = t.dims();
    if axis >= dims.len() {
        return Err(TensorError::AxisOutOfRange {
            axis,
            rank: dims.len(),
        });
    }
    let axis_len = dims[axis];
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();
    let data = t.data();
    let mut out = vec![init; outer * inner];
    for o in 0..outer {
        for a in 0..axis_len {
            let base = (o * axis_len + a) * inner;
            for i in 0..inner {
                let idx = o * inner + i;
                out[idx] = combine(out[idx], data[base + i]);
            }
        }
    }
    for v in &mut out {
        *v = finish(*v, axis_len);
    }
    let mut new_dims: Vec<usize> = dims[..axis].to_vec();
    new_dims.extend_from_slice(&dims[axis + 1..]);
    if new_dims.is_empty() {
        new_dims.push(1);
    }
    Tensor::from_vec(out, &new_dims)
}

/// Interprets a tensor as a matrix, returning `(rows, cols)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] when the tensor is not rank-2.
pub fn as_matrix_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn matmul_identity_and_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(matmul(&v, &a), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn transposed_products_match_explicit_transpose() {
        let mut rng = Rng::seed_from(0);
        let a = Tensor::randn(&[4, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[4, 5], 0.0, 1.0, &mut rng);
        let expected = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        let got = matmul_at_b(&a, &b).unwrap();
        assert!(got.approx_eq(&expected, 1e-4));

        let c = Tensor::randn(&[6, 3], 0.0, 1.0, &mut rng);
        let d = Tensor::randn(&[5, 3], 0.0, 1.0, &mut rng);
        let expected = matmul(&c, &transpose2d(&d).unwrap()).unwrap();
        let got = matmul_a_bt(&c, &d).unwrap();
        assert!(got.approx_eq(&expected, 1e-4));
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[3, 7], 0.0, 1.0, &mut rng);
        let back = transpose2d(&transpose2d(&a).unwrap()).unwrap();
        assert!(a.approx_eq(&back, 0.0));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_shift_invariant() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        for r in 0..2 {
            let s: f32 = p.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        let shifted = logits.shift(100.0);
        let p2 = softmax_rows(&shifted).unwrap();
        assert!(p.approx_eq(&p2, 1e-5));
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 2.0, 1.0, 1.0, 1.0], &[2, 3]).unwrap();
        let p = softmax_rows(&logits).unwrap().map(|x| x.ln());
        let lp = log_softmax_rows(&logits).unwrap();
        assert!(p.approx_eq(&lp, 1e-5));
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0, 0.0], &[1, 3]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        assert!(!p.has_non_finite());
        assert!((p.data()[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let scores = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.3], &[2, 3]).unwrap();
        assert_eq!(argmax_rows(&scores).unwrap(), vec![1, 0]);
    }

    #[test]
    fn sum_and_mean_axis() {
        let t = Tensor::from_vec((1..=12).map(|x| x as f32).collect(), &[2, 3, 2]).unwrap();
        let s0 = sum_axis(&t, 0).unwrap();
        assert_eq!(s0.dims(), &[3, 2]);
        assert_eq!(s0.data()[0], 1.0 + 7.0);
        let m1 = mean_axis(&t, 1).unwrap();
        assert_eq!(m1.dims(), &[2, 2]);
        assert!((m1.data()[0] - (1.0 + 3.0 + 5.0) / 3.0).abs() < 1e-6);
        assert!(sum_axis(&t, 3).is_err());
    }

    #[test]
    fn sum_axis_scalar_result_keeps_rank_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let s = sum_axis(&t, 0).unwrap();
        assert_eq!(s.dims(), &[1]);
        assert_eq!(s.data(), &[6.0]);
    }
}
