//! Shape metadata and stride arithmetic for row-major tensors.

use crate::error::TensorError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// The shape of a tensor: the extent of each dimension, outermost first.
///
/// Shapes are stored row-major; [`Shape::strides`] returns the element stride
/// of each dimension for the contiguous layout used by [`crate::Tensor`].
///
/// # Example
///
/// ```
/// use invnorm_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// Returns the dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (the tensor rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements described by this shape.
    ///
    /// The empty (rank-0) shape describes a single scalar element.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements, for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Returns the extent of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.dims.len(),
            })
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank does not match or any coordinate is
    /// out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                expected: self.dims.len(),
                actual: index.len(),
            });
        }
        let strides = self.strides();
        let mut off = 0usize;
        for (axis, (&i, (&d, &s))) in index
            .iter()
            .zip(self.dims.iter().zip(strides.iter()))
            .enumerate()
        {
            if i >= d {
                return Err(TensorError::AxisOutOfRange {
                    axis,
                    rank: self.dims.len(),
                });
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Checks whether two shapes are identical.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn offset_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[0, 0, 3]).unwrap(), 3);
        assert_eq!(s.offset(&[0, 1, 0]).unwrap(), 4);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
    }

    #[test]
    fn offset_errors() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::AxisOutOfRange { .. })
        ));
    }

    #[test]
    fn dim_accessor() {
        let s = Shape::new(&[5, 7]);
        assert_eq!(s.dim(0).unwrap(), 5);
        assert_eq!(s.dim(1).unwrap(), 7);
        assert!(s.dim(2).is_err());
    }

    #[test]
    fn conversions_and_display() {
        let s: Shape = vec![1, 2].into();
        assert_eq!(s.dims(), &[1, 2]);
        let s2: Shape = (&[1usize, 2][..]).into();
        assert!(s.same_as(&s2));
        assert_eq!(format!("{s}"), "[1, 2]");
    }
}
