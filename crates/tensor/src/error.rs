//! Error types for tensor operations.

use std::fmt;

/// Error returned by fallible tensor operations.
///
/// All shape-sensitive operations in this crate validate their inputs and
/// return a descriptive [`TensorError`] rather than panicking, so that layer
/// code built on top can propagate configuration mistakes to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data length.
    ShapeDataMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The operation requires a tensor of a particular rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor provided.
        actual: usize,
    },
    /// Inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// Columns of the left matrix.
        lhs_cols: usize,
        /// Rows of the right matrix.
        rhs_rows: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A broadcast between two shapes is not defined.
    BroadcastError {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// A parameter had an invalid value (zero batch, zero groups, ...).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but {actual} were provided"
            ),
            TensorError::ShapeMismatch { lhs, rhs } => {
                write!(f, "shape mismatch: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected} tensor, got rank {actual}")
            }
            TensorError::MatmulDimMismatch { lhs_cols, rhs_rows } => write!(
                f,
                "matmul inner dimensions disagree: lhs has {lhs_cols} columns, rhs has {rhs_rows} rows"
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank} tensor")
            }
            TensorError::BroadcastError { lhs, rhs } => {
                write!(f, "cannot broadcast {lhs:?} with {rhs:?}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = TensorError::ShapeDataMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(err.to_string().contains('4'));
        assert!(err.to_string().contains('3'));

        let err = TensorError::MatmulDimMismatch {
            lhs_cols: 2,
            rhs_rows: 5,
        };
        assert!(err.to_string().contains("inner dimensions"));

        let err = TensorError::InvalidArgument("groups must divide channels".into());
        assert!(err.to_string().contains("groups"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
