//! Cache-blocked, register-tiled, parallel f32 GEMM.
//!
//! This is the compute core every dense layer in the workspace funnels into:
//! `C ← α · op(A) · op(B) + β · C` with optional transposition of either
//! operand, in the classic three-level blocking scheme (Goto/BLIS):
//!
//! * the k-dimension is split into panels of [`KC`] so a packed strip of B
//!   stays resident in L1 while the microkernel streams over it;
//! * the m-dimension is split into blocks of [`MC`] so the packed A block
//!   stays resident in L2;
//! * the innermost microkernel computes an `mr × nr` tile of C entirely in
//!   registers — branch-free, with no loads or stores of C inside the k-loop
//!   (the naive kernel's biggest cost after its data-dependent sparsity
//!   branch).
//!
//! The microkernel (and with it the `mr × nr` register-tile geometry) is
//! selected **at runtime** through [`crate::dispatch`]: a portable 4×8
//! scalar kernel that works everywhere, a 6×16 AVX2+FMA kernel, and a 14×32
//! AVX-512 kernel. The tier is resolved once per process; packed operands
//! remember the tier they were laid out for, so prepacked multiplies stay
//! coherent even if tests pin a different tier afterwards.
//!
//! Both operands are packed into contiguous, tile-major buffers before the
//! microkernel runs, with edge tiles zero-padded so the microkernel never
//! needs bounds checks. Packing buffers come from a caller-supplied
//! [`Scratch`] (or a thread-local one for the convenience entry point), so
//! steady-state calls allocate nothing.
//!
//! Large products are parallelized over [`MC`]-row blocks with rayon: worker
//! threads claim row blocks from an atomic counter (work stealing) and each
//! element of C is written by exactly one worker with a fixed, sequential
//! k-accumulation order — results are therefore **bit-identical** for every
//! thread count and schedule. Across kernel tiers, the AVX2 and AVX-512
//! kernels share the same per-element FMA accumulation order and produce
//! bit-identical results; only the portable tier (separate multiply + add
//! roundings) diverges. The active tier is thus the sole reproducibility
//! boundary, and it is surfaced via telemetry.
//!
//! lint: no_alloc

use crate::arena::DirtyRows;
use crate::dispatch::{self, KernelTier};
use crate::scratch::{uninit_slice, Scratch};
use crate::telemetry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// k-panel size: a KC×nr strip of packed B stays L1-resident.
pub const KC: usize = 256;
/// m-block size: an MC×KC block of packed A (128 KiB) stays L2-resident.
pub const MC: usize = 128;
/// n-panel size: bounds the packed-B buffer at KC×NC (256 KiB).
pub const NC: usize = 256;

/// Minimum `m·n·k` before the row-block loop is parallelized; below this the
/// fork/steal overhead outweighs the work.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 21;

/// Elements in the largest microkernel tile (AVX-512's 14×32); sizes the
/// stack accumulator every tier writes a prefix of.
const MAX_TILE: usize = 14 * 32;

/// A microkernel: computes the full `mr × nr` register tile over one packed
/// k-panel and writes it row-major (leading dimension `nr`) into `acc`,
/// overwriting the `mr * nr` prefix.
///
/// # Safety
///
/// The callee may use the SIMD features of the tier it belongs to; callers
/// must only invoke kernels obtained from [`f32_kernel`] with a tier the
/// host supports. Slice bounds are asserted by each kernel.
type MicrokernelF32 = unsafe fn(kc: usize, pa: &[f32], pb: &[f32], acc: &mut [f32]);

/// One tier's f32 GEMM kernel: its register-tile geometry plus the
/// microkernel that fills such a tile.
#[derive(Clone, Copy)]
pub(crate) struct F32Kernel {
    /// Rows of C computed per microkernel tile.
    pub(crate) mr: usize,
    /// Columns of C computed per microkernel tile.
    pub(crate) nr: usize,
    micro: MicrokernelF32,
}

/// Portable 4×8 kernel: small enough not to spill on baseline SSE2.
const PORTABLE_F32: F32Kernel = F32Kernel {
    mr: 4,
    nr: 8,
    micro: microkernel_portable,
};

/// AVX2+FMA 6×16 kernel: twelve independent 256-bit FMA accumulator chains —
/// enough to cover FMA latency at two FMAs per cycle.
#[cfg(target_arch = "x86_64")]
const AVX2_F32: F32Kernel = F32Kernel {
    mr: 6,
    nr: 16,
    micro: microkernel_avx2,
};

/// AVX-512 14×32 kernel: 28 of the 32 zmm registers hold accumulators, the
/// rest stream packed B and the scalar broadcast.
#[cfg(target_arch = "x86_64")]
const AVX512_F32: F32Kernel = F32Kernel {
    mr: 14,
    nr: 32,
    micro: microkernel_avx512,
};

/// The f32 GEMM kernel for a dispatch tier.
pub(crate) fn f32_kernel(tier: KernelTier) -> F32Kernel {
    match tier {
        KernelTier::Portable => PORTABLE_F32,
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => AVX2_F32,
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx512 => AVX512_F32,
        // Non-x86 hosts never detect (nor may they force) the SIMD tiers.
        #[cfg(not(target_arch = "x86_64"))]
        _ => PORTABLE_F32,
    }
}

thread_local! {
    static LOCAL_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// General matrix multiply-accumulate `C ← α · op(A) · op(B) + β · C`.
///
/// `op(A)` is `A` (`[m, k]`, row-major) or `Aᵀ` (stored `[k, m]`) when
/// `trans_a` is set; likewise `op(B)` is `[k, n]` or stored `[n, k]` when
/// `trans_b` is set. `C` is always `[m, n]` row-major. With `beta == 0.0`,
/// `C` is overwritten without being read (so it may hold garbage, including
/// NaNs); with `beta == 1.0` the product accumulates into `C`, which lets
/// backward passes fuse their `+=` instead of allocating a temporary.
///
/// Packing buffers are borrowed from a thread-local [`Scratch`]; use
/// [`gemm_with_scratch`] to supply your own. Large products run in parallel;
/// results are bit-identical for every thread count.
///
/// # Panics
///
/// Panics when a slice length disagrees with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    let _span = telemetry::span(telemetry::Phase::Gemm);
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        scale_in_place(c, beta);
        return;
    }
    let kern = f32_kernel(dispatch::active());
    let row_blocks = m.div_ceil(MC);
    let workers = rayon::current_num_threads().min(row_blocks);
    if workers > 1 && m * n * k >= PARALLEL_FLOP_THRESHOLD {
        gemm_parallel(
            &kern, trans_a, trans_b, m, n, k, alpha, a, b, beta, c, workers,
        );
    } else {
        LOCAL_SCRATCH.with(|s| {
            gemm_with_scratch_impl(
                &kern,
                trans_a,
                trans_b,
                m,
                n,
                k,
                alpha,
                a,
                b,
                beta,
                c,
                &mut s.borrow_mut(),
            );
        });
    }
}

/// Single-threaded [`gemm`] with an explicit packing workspace, for callers
/// that manage buffer reuse themselves (layers, the conv path).
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_scratch(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    scratch: &mut Scratch,
) {
    let _span = telemetry::span(telemetry::Phase::Gemm);
    let kern = f32_kernel(dispatch::active());
    gemm_with_scratch_impl(
        &kern, trans_a, trans_b, m, n, k, alpha, a, b, beta, c, scratch,
    );
}

/// Shared body of [`gemm`]'s single-threaded path and [`gemm_with_scratch`],
/// so each public entry opens exactly one telemetry span.
#[allow(clippy::too_many_arguments)]
fn gemm_with_scratch_impl(
    kern: &F32Kernel,
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    scratch: &mut Scratch,
) {
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        scale_in_place(c, beta);
        return;
    }
    let (mr, nr) = (kern.mr, kern.nr);
    let packed_b = uninit_slice(&mut scratch.packed_b, KC * NC.min(n.next_multiple_of(nr)));
    let packed_a = uninit_slice(&mut scratch.packed_a, MC.next_multiple_of(mr) * KC);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(nr, trans_b, b, k, n, pc, kc, jc, nc, packed_b);
            let beta_block = if pc == 0 { beta } else { 1.0 };
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(mr, trans_a, a, m, k, ic, mc, pc, kc, packed_a);
                block_kernel(
                    kern, packed_a, packed_b, c, n, ic, mc, jc, nc, kc, alpha, beta_block,
                );
            }
        }
    }
}

/// Work-stealing parallel path: row blocks are claimed from an atomic
/// counter; each worker packs its own A blocks, while the packed B panel for
/// the current `(jc, pc)` stage is shared read-only across workers.
// lint: alloc_ok(per-call packing scratch: one shared B panel plus one A
// panel per worker, allocated at entry — steady-state callers go through
// `PackedA`/`PackedB` plans that hoist even these)
#[allow(clippy::too_many_arguments)]
fn gemm_parallel(
    kern: &F32Kernel,
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    workers: usize,
) {
    let (mr, nr) = (kern.mr, kern.nr);
    let row_blocks = m.div_ceil(MC);
    let mut packed_b_buf = vec![0.0f32; KC * NC.min(n.next_multiple_of(nr))];
    let c_ptr = SendPtr(c.as_mut_ptr());
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(nr, trans_b, b, k, n, pc, kc, jc, nc, &mut packed_b_buf);
            let packed_b = &packed_b_buf;
            let beta_block = if pc == 0 { beta } else { 1.0 };
            let next = AtomicUsize::new(0);
            rayon::scope(|s| {
                for _ in 0..workers {
                    let next = &next;
                    let c_ptr = &c_ptr;
                    let kern = *kern;
                    s.spawn(move || {
                        let mut packed_a = vec![0.0f32; MC.next_multiple_of(mr) * KC];
                        loop {
                            let blk = next.fetch_add(1, Ordering::Relaxed);
                            if blk >= row_blocks {
                                break;
                            }
                            let ic = blk * MC;
                            let mc = MC.min(m - ic);
                            pack_a(mr, trans_a, a, m, k, ic, mc, pc, kc, &mut packed_a);
                            // SAFETY: each row block `[ic, ic+mc)` is claimed
                            // by exactly one worker (atomic counter), so the
                            // C rows written here are disjoint between
                            // workers for the lifetime of this scope.
                            let c_rows = unsafe {
                                std::slice::from_raw_parts_mut(c_ptr.0.add(ic * n), mc * n)
                            };
                            block_kernel(
                                &kern, &packed_a, packed_b, c_rows, n, 0, mc, jc, nc, kc, alpha,
                                beta_block,
                            );
                        }
                    });
                }
            });
        }
    }
}

/// Raw pointer wrapper so scoped workers can share the output buffer; safety
/// rests on the disjoint row-block claim discipline in [`gemm_parallel`].
struct SendPtr(*mut f32);
// SAFETY: SendPtr is only handed to scoped workers that write disjoint
// row blocks of C (each `mc` block is claimed by exactly one worker via the
// fetch_add ticket in `gemm_parallel`), so concurrent access never aliases.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Elements-per-block stride of one packed `(k-panel, m-block)` A block
/// inside a [`PackedA`] buffer for a tier with the given `mr`: every block
/// occupies a fixed-size slot (edge blocks use a prefix of theirs) so
/// offsets are index arithmetic.
fn a_block_stride(mr: usize) -> usize {
    MC.div_ceil(mr) * mr * KC
}

/// A fully packed `op(A)` operand: every `(k-panel, m-block)` of A in the
/// exact strip layout the microkernel consumes.
///
/// [`gemm`] re-packs A on every call; when the *same* A is multiplied against
/// many different B matrices — the batched Monte-Carlo forward pass, where
/// one activation panel meets B perturbed weight realizations — packing once
/// via [`PackedA::pack`] and calling [`gemm_prepacked`] per B amortizes that
/// work. Results are **bit-identical** to [`gemm_with_scratch`] (same packed
/// values, same block traversal, same accumulation order).
///
/// The layout depends on the kernel tier's `mr`, so the operand records the
/// tier active when it was packed and prepacked multiplies always use that
/// tier's kernel.
///
/// The buffer grows monotonically and never shrinks, so steady-state repacks
/// allocate nothing.
#[derive(Debug, Default, Clone)]
pub struct PackedA {
    m: usize,
    k: usize,
    tier: KernelTier,
    buf: Vec<f32>,
}

impl PackedA {
    /// Creates an empty handle; the buffer grows on first [`PackedA::pack`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows of the packed operand.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Shared (reduction) dimension of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The kernel tier whose strip layout this operand was packed for.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Packs `op(A)` (`[m, k]`, or stored `[k, m]` when `trans_a`) in full.
    ///
    /// # Panics
    ///
    /// Panics when the slice length disagrees with `m * k`.
    pub fn pack(&mut self, trans_a: bool, a: &[f32], m: usize, k: usize) {
        let _span = telemetry::span(telemetry::Phase::Pack);
        assert_eq!(a.len(), m * k, "A must hold m*k elements");
        self.m = m;
        self.k = k;
        self.tier = dispatch::active();
        let mr = f32_kernel(self.tier).mr;
        let stride = a_block_stride(mr);
        let m_blocks = m.div_ceil(MC);
        let k_panels = k.div_ceil(KC);
        let buf = uninit_slice(&mut self.buf, m_blocks * k_panels * stride);
        for (pi, pc) in (0..k).step_by(KC).enumerate() {
            let kc = KC.min(k - pc);
            for (bi, ic) in (0..m).step_by(MC).enumerate() {
                let mc = MC.min(m - ic);
                let slot = &mut buf[(pi * m_blocks + bi) * stride..][..stride];
                pack_a(mr, trans_a, a, m, k, ic, mc, pc, kc, slot);
            }
        }
    }
}

/// [`gemm_with_scratch`] with a pre-packed A operand (see [`PackedA`]):
/// `C ← α · op(A) · op(B) + β · C` where only B is packed per call, into the
/// caller's reusable `packed_b` buffer.
///
/// Runs on the kernel tier `packed_a` was packed for. Bit-identical to
/// [`gemm`] / [`gemm_with_scratch`] on that tier for the same operands.
///
/// # Panics
///
/// Panics when a slice length disagrees with the packed dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_prepacked(
    packed_a: &PackedA,
    trans_b: bool,
    n: usize,
    alpha: f32,
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    packed_b_buf: &mut Vec<f32>,
) {
    let _span = telemetry::span(telemetry::Phase::Gemm);
    let (m, k) = (packed_a.m, packed_a.k);
    assert_eq!(b.len(), k * n, "B must hold k*n elements");
    assert_eq!(c.len(), m * n, "C must hold m*n elements");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        scale_in_place(c, beta);
        return;
    }
    let kern = f32_kernel(packed_a.tier);
    let (mr, nr) = (kern.mr, kern.nr);
    let stride = a_block_stride(mr);
    let m_blocks = m.div_ceil(MC);
    let packed_b = uninit_slice(packed_b_buf, KC * NC.min(n.next_multiple_of(nr)));
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for (pi, pc) in (0..k).step_by(KC).enumerate() {
            let kc = KC.min(k - pc);
            pack_b(nr, trans_b, b, k, n, pc, kc, jc, nc, packed_b);
            let beta_block = if pc == 0 { beta } else { 1.0 };
            for (bi, ic) in (0..m).step_by(MC).enumerate() {
                let mc = MC.min(m - ic);
                let pa = &packed_a.buf[(pi * m_blocks + bi) * stride..];
                block_kernel(
                    &kern, pa, packed_b, c, n, ic, mc, jc, nc, kc, alpha, beta_block,
                );
            }
        }
    }
}

/// A fully packed `op(B)` operand: every `(n-panel, k-panel)` of B in the
/// exact nr-strip layout the microkernel consumes — the weight-side
/// counterpart of [`PackedA`].
///
/// This is the cache a compiled inference plan keeps per weighted layer: the
/// clean weight matrix is packed **once** at plan-compile time, and between
/// Monte-Carlo fault realizations only the strips covering rows the injector
/// actually touched are re-packed ([`PackedB::repack_rows`]). For sparse
/// fault models that removes the dominant per-run re-packing cost of the
/// direct path, which packs the full weight operand on every forward.
///
/// Panels are stored in fixed-stride slots, so offsets are index arithmetic,
/// and results through [`gemm_prepacked_b`] / [`gemm_prepacked_ab`] are
/// **bit-identical** to [`gemm_with_scratch`] (same packed values, same block
/// traversal, same accumulation order). Like [`PackedA`], the operand
/// records the kernel tier whose strip width it was packed for.
#[derive(Debug, Default, Clone)]
pub struct PackedB {
    k: usize,
    n: usize,
    trans_b: bool,
    tier: KernelTier,
    k_panels: usize,
    slot: usize,
    buf: Vec<f32>,
}

impl PackedB {
    /// Creates an empty handle; the buffer grows on first [`PackedB::pack`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared (reduction) dimension of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the packed operand (rows of the stored matrix when
    /// `trans_b` — e.g. output features of a `[out, in]` weight).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The kernel tier whose strip layout this operand was packed for.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Packs `op(B)` (`[k, n]`, or stored `[n, k]` when `trans_b`) in full.
    ///
    /// # Panics
    ///
    /// Panics when the slice length disagrees with `k * n`.
    pub fn pack(&mut self, trans_b: bool, b: &[f32], k: usize, n: usize) {
        let _span = telemetry::span(telemetry::Phase::Pack);
        assert_eq!(b.len(), k * n, "B must hold k*n elements");
        self.k = k;
        self.n = n;
        self.trans_b = trans_b;
        self.tier = dispatch::active();
        let nr = f32_kernel(self.tier).nr;
        self.k_panels = k.div_ceil(KC).max(1);
        // Fixed slot stride: a full (NC, KC) panel packs to NC-padded × KC
        // elements; edge panels use a prefix of their slot.
        self.slot = KC * NC.min(n.next_multiple_of(nr)).max(nr);
        let n_panels = n.div_ceil(NC).max(1);
        let buf = uninit_slice(&mut self.buf, n_panels * self.k_panels * self.slot);
        for (ji, jc) in (0..n).step_by(NC).enumerate() {
            let nc = NC.min(n - jc);
            for (pi, pc) in (0..k).step_by(KC).enumerate() {
                let kc = KC.min(k - pc);
                let slot = &mut buf[(ji * self.k_panels + pi) * self.slot..][..self.slot];
                pack_b(nr, trans_b, b, k, n, pc, kc, jc, nc, slot);
            }
        }
    }

    /// The packed panel for n-panel `ji` and k-panel `pi`.
    fn panel(&self, ji: usize, pi: usize) -> &[f32] {
        &self.buf[(ji * self.k_panels + pi) * self.slot..][..self.slot]
    }

    /// Overwrites this operand with `src` scaled by a constant `factor`.
    ///
    /// Because packing is a pure permutation with zero padding (and
    /// `0.0 · factor == 0.0`), the result is bit-identical to packing a
    /// weight matrix whose every element was multiplied by `factor` — the
    /// retention-drift realization, applied without touching the unpacked
    /// weights at all.
    ///
    /// # Panics
    ///
    /// Panics when the two operands were packed with different dimensions or
    /// under different kernel tiers.
    pub fn scale_from(&mut self, src: &PackedB, factor: f32) {
        let _span = telemetry::span(telemetry::Phase::Repack);
        telemetry::count(telemetry::Counter::UniformScales, 1);
        assert_eq!(
            (self.k, self.n, self.trans_b, self.tier),
            (src.k, src.n, src.trans_b, src.tier),
            "packed operands disagree on shape or kernel tier"
        );
        let len = self.packed_len();
        for (d, &s) in self.buf[..len].iter_mut().zip(&src.buf[..len]) {
            *d = s * factor;
        }
    }

    /// Packed elements covering the current dimensions.
    fn packed_len(&self) -> usize {
        self.n.div_ceil(NC).max(1) * self.k_panels * self.slot
    }

    /// Overwrites this operand with a copy of `src` (used when a plan leaves
    /// the uniformly-scaled regime and must restore the clean panels before
    /// sparse re-packing).
    ///
    /// # Panics
    ///
    /// Panics when the two operands were packed with different dimensions or
    /// under different kernel tiers.
    pub fn copy_from(&mut self, src: &PackedB) {
        assert_eq!(
            (self.k, self.n, self.trans_b, self.tier),
            (src.k, src.n, src.trans_b, src.tier),
            "packed operands disagree on shape or kernel tier"
        );
        let len = self.packed_len();
        self.buf[..len].copy_from_slice(&src.buf[..len]);
    }

    /// Re-packs only the nr-strips covering rows marked in `dirty` from the
    /// (updated) source matrix `b` — rows meaning columns of `op(B)`, i.e.
    /// rows of the stored `[n, k]` weight when `trans_b`.
    ///
    /// `base` offsets the lookup into `dirty`: row `j` of this operand
    /// consults mark `base + j`, so one dirty set over `batch · n` rows can
    /// drive the per-realization panels of a stacked batched plan (each
    /// realization passes its own `base = b · n`). Single-operand callers
    /// pass `0`.
    ///
    /// After the call the packed operand equals `pack(trans_b, b, k, n)`
    /// **provided** every column that changed since the last pack/repack is
    /// marked (callers union the previous realization's dirty set so
    /// reverted rows are restored too).
    ///
    /// # Panics
    ///
    /// Panics when `b` or `dirty` disagree with the packed dimensions.
    pub fn repack_rows(&mut self, b: &[f32], dirty: &DirtyRows, base: usize) {
        let _span = telemetry::span(telemetry::Phase::Repack);
        assert_eq!(b.len(), self.k * self.n, "B must hold k*n elements");
        assert!(dirty.rows() >= base + self.n, "dirty set must cover n rows");
        let (k, n, trans_b) = (self.k, self.n, self.trans_b);
        let nr = f32_kernel(self.tier).nr;
        let mut repacked_rows = 0u64;
        for (ji, jc) in (0..n).step_by(NC).enumerate() {
            let nc = NC.min(n - jc);
            for jr in (0..nc).step_by(nr) {
                let j0 = jc + jr;
                if !dirty.any_in(base + j0, base + (j0 + nr).min(n)) {
                    continue;
                }
                let cols = nr.min(nc - jr);
                repacked_rows += cols as u64;
                for (pi, pc) in (0..k).step_by(KC).enumerate() {
                    let kc = KC.min(k - pc);
                    let slot = (ji * self.k_panels + pi) * self.slot;
                    let strip = &mut self.buf[slot + (jr / nr) * (kc * nr)..][..kc * nr];
                    let mut dst = 0;
                    for p in 0..kc {
                        for j in 0..nr {
                            strip[dst] = if j < cols {
                                if trans_b {
                                    b[(j0 + j) * k + pc + p]
                                } else {
                                    b[(pc + p) * n + j0 + j]
                                }
                            } else {
                                0.0
                            };
                            dst += 1;
                        }
                    }
                }
            }
        }
        telemetry::count(telemetry::Counter::RowsRepacked, repacked_rows);
    }

    /// Writes a single element of the packed operand in place: stored row
    /// `row` (an output feature of a `[n, k]` weight packed with `trans_b`),
    /// reduction index `kidx`.
    ///
    /// This is the packed-domain injection primitive for sparse fault
    /// models: a stuck-at realization touching a handful of cells lands
    /// straight in the panels in O(1) per cell, instead of re-packing every
    /// dirty row's full k extent through [`PackedB::repack_rows`]. Writing
    /// the same value this way is bit-identical to a re-pack (packing is a
    /// pure permutation).
    ///
    /// # Panics
    ///
    /// Panics when the operand was not packed with `trans_b`, or the indices
    /// are out of range.
    pub fn write_cell(&mut self, row: usize, kidx: usize, value: f32) {
        telemetry::count(telemetry::Counter::CellScatters, 1);
        assert!(self.trans_b, "write_cell addresses trans_b packed operands");
        assert!(row < self.n && kidx < self.k, "cell out of range");
        let nr = f32_kernel(self.tier).nr;
        let ji = row / NC;
        let jc = ji * NC;
        let jr = ((row - jc) / nr) * nr;
        let pi = kidx / KC;
        let pc = pi * KC;
        let kc = KC.min(self.k - pc);
        let p = kidx - pc;
        let pos = (ji * self.k_panels + pi) * self.slot  // panel slot
            + (jr / nr) * (kc * nr)                      // nr-strip within it
            + p * nr                                     // k step within strip
            + (row - jc - jr);
        self.buf[pos] = value;
    }
}

/// GEMM with a cached pre-packed B operand (see [`PackedB`]):
/// `C ← α · op(A) · op(B) + β · C` where only A is packed per call, blockwise
/// into the caller's [`Scratch`].
///
/// Runs on the kernel tier `packed_b` was packed for. Bit-identical to
/// [`gemm`] / [`gemm_with_scratch`] on that tier for the same operands.
///
/// # Panics
///
/// Panics when a slice length disagrees with the packed dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_prepacked_b(
    trans_a: bool,
    m: usize,
    alpha: f32,
    a: &[f32],
    packed_b: &PackedB,
    beta: f32,
    c: &mut [f32],
    scratch: &mut Scratch,
) {
    let _span = telemetry::span(telemetry::Phase::Gemm);
    let (k, n) = (packed_b.k, packed_b.n);
    assert_eq!(a.len(), m * k, "A must hold m*k elements");
    assert_eq!(c.len(), m * n, "C must hold m*n elements");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        scale_in_place(c, beta);
        return;
    }
    let kern = f32_kernel(packed_b.tier);
    let mr = kern.mr;
    let packed_a = uninit_slice(&mut scratch.packed_a, MC.next_multiple_of(mr) * KC);
    for (ji, jc) in (0..n).step_by(NC).enumerate() {
        let nc = NC.min(n - jc);
        for (pi, pc) in (0..k).step_by(KC).enumerate() {
            let kc = KC.min(k - pc);
            let pb = packed_b.panel(ji, pi);
            let beta_block = if pc == 0 { beta } else { 1.0 };
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(mr, trans_a, a, m, k, ic, mc, pc, kc, packed_a);
                block_kernel(
                    &kern, packed_a, pb, c, n, ic, mc, jc, nc, kc, alpha, beta_block,
                );
            }
        }
    }
}

/// GEMM with **both** operands pre-packed ([`PackedA`] × [`PackedB`]): the
/// fully amortized steady state of a compiled plan whose input activation is
/// constant across Monte-Carlo runs — per call, no packing happens at all.
///
/// Runs on the kernel tier the operands were packed for. Bit-identical to
/// [`gemm`] / [`gemm_with_scratch`] on that tier for the same operands.
///
/// # Panics
///
/// Panics when the packed reduction dimensions disagree, the operands were
/// packed under different kernel tiers, or `c` has the wrong length.
pub fn gemm_prepacked_ab(
    packed_a: &PackedA,
    packed_b: &PackedB,
    alpha: f32,
    beta: f32,
    c: &mut [f32],
) {
    let _span = telemetry::span(telemetry::Phase::Gemm);
    let (m, k) = (packed_a.m, packed_a.k);
    let n = packed_b.n;
    assert_eq!(k, packed_b.k, "packed operands disagree on k");
    assert_eq!(
        packed_a.tier, packed_b.tier,
        "packed operands disagree on kernel tier"
    );
    assert_eq!(c.len(), m * n, "C must hold m*n elements");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        scale_in_place(c, beta);
        return;
    }
    let kern = f32_kernel(packed_a.tier);
    let stride = a_block_stride(kern.mr);
    let m_blocks = m.div_ceil(MC);
    for (ji, jc) in (0..n).step_by(NC).enumerate() {
        let nc = NC.min(n - jc);
        for (pi, pc) in (0..k).step_by(KC).enumerate() {
            let kc = KC.min(k - pc);
            let pb = packed_b.panel(ji, pi);
            let beta_block = if pc == 0 { beta } else { 1.0 };
            for (bi, ic) in (0..m).step_by(MC).enumerate() {
                let mc = MC.min(m - ic);
                let pa = &packed_a.buf[(pi * m_blocks + bi) * stride..];
                block_kernel(&kern, pa, pb, c, n, ic, mc, jc, nc, kc, alpha, beta_block);
            }
        }
    }
}

fn check_dims(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must hold m*k elements");
    assert_eq!(b.len(), k * n, "B must hold k*n elements");
    assert_eq!(c.len(), m * n, "C must hold m*n elements");
}

fn scale_in_place(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for v in c {
            *v *= beta;
        }
    }
}

/// Packs the `mc × kc` block of `op(A)` starting at `(ic, pc)` into mr-row
/// strips laid out p-major (`packed[strip][p][r]`), zero-padding the ragged
/// final strip so the microkernel always reads full tiles.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    mr: usize,
    trans_a: bool,
    a: &[f32],
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    packed: &mut [f32],
) {
    let at = |i: usize, p: usize| -> f32 {
        if trans_a {
            a[p * m + i]
        } else {
            a[i * k + p]
        }
    };
    let mut dst = 0;
    for ir in (0..mc).step_by(mr) {
        let rows = mr.min(mc - ir);
        for p in 0..kc {
            for r in 0..mr {
                packed[dst] = if r < rows {
                    at(ic + ir + r, pc + p)
                } else {
                    0.0
                };
                dst += 1;
            }
        }
    }
}

/// Packs the `kc × nc` block of `op(B)` starting at `(pc, jc)` into nr-column
/// strips laid out p-major (`packed[strip][p][j]`), zero-padded like
/// [`pack_a`].
#[allow(clippy::too_many_arguments)]
fn pack_b(
    nr: usize,
    trans_b: bool,
    b: &[f32],
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    packed: &mut [f32],
) {
    let bt = |p: usize, j: usize| -> f32 {
        if trans_b {
            b[j * k + p]
        } else {
            b[p * n + j]
        }
    };
    let mut dst = 0;
    for jr in (0..nc).step_by(nr) {
        let cols = nr.min(nc - jr);
        for p in 0..kc {
            for j in 0..nr {
                packed[dst] = if j < cols {
                    bt(pc + p, jc + jr + j)
                } else {
                    0.0
                };
                dst += 1;
            }
        }
    }
}

/// Runs the microkernel over every `mr × nr` tile of an `mc × nc` block,
/// writing into `c` (row-major with leading dimension `n`) at row offset
/// `ic` and column offset `jc`.
#[allow(clippy::too_many_arguments)]
fn block_kernel(
    kern: &F32Kernel,
    packed_a: &[f32],
    packed_b: &[f32],
    c: &mut [f32],
    n: usize,
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    kc: usize,
    alpha: f32,
    beta: f32,
) {
    let (mr, nr) = (kern.mr, kern.nr);
    let mut acc = [0.0f32; MAX_TILE];
    for jr in (0..nc).step_by(nr) {
        let cols = nr.min(nc - jr);
        let pb = &packed_b[(jr / nr) * (kc * nr)..][..kc * nr];
        for ir in (0..mc).step_by(mr) {
            let rows = mr.min(mc - ir);
            let pa = &packed_a[(ir / mr) * (kc * mr)..][..kc * mr];
            // SAFETY: kernels come from `f32_kernel` with a tier the host
            // supports ([`dispatch::active`]/[`dispatch::force`] guarantee
            // that), and the slices cover kc·mr / kc·nr / mr·nr elements.
            unsafe { (kern.micro)(kc, pa, pb, &mut acc[..mr * nr]) };
            store_tile(
                &acc[..mr * nr],
                nr,
                c,
                n,
                ic + ir,
                jc + jr,
                rows,
                cols,
                alpha,
                beta,
            );
        }
    }
}

/// Portable 4×8 microkernel: plain scalar accumulation (separate multiply
/// and add roundings — the one f32 tier that is *not* bit-identical to the
/// FMA tiers), auto-vectorized by LLVM where the build target allows.
///
/// # Safety
///
/// Contains no unsafe operations of its own; it is `unsafe fn` only to
/// match the [`MicrokernelF32`] signature shared with the SIMD tiers.
/// Callable with any arguments (bounds are asserted).
unsafe fn microkernel_portable(kc: usize, pa: &[f32], pb: &[f32], acc_out: &mut [f32]) {
    const MR: usize = 4;
    const NR: usize = 8;
    assert!(pa.len() >= kc * MR && pb.len() >= kc * NR && acc_out.len() >= MR * NR);
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let bv: &[f32; NR] = pb[p * NR..p * NR + NR].try_into().expect("NR panel");
        let av: &[f32; MR] = pa[p * MR..p * MR + MR].try_into().expect("MR panel");
        for r in 0..MR {
            let ar = av[r];
            for j in 0..NR {
                acc[r][j] += ar * bv[j];
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        acc_out[r * NR..(r + 1) * NR].copy_from_slice(row);
    }
}

/// Hand-written 6×16 AVX2+FMA microkernel: twelve ymm accumulators, two
/// packed-B vector loads and six scalar broadcasts per k-step. `acc += Ā · B̄`
/// over one packed k-panel; branch-free, the accumulators live entirely in
/// vector registers, so the k-loop touches memory only to stream the packed
/// panels.
///
/// # Safety
///
/// The host must support AVX2 and FMA (guaranteed when the kernel is reached
/// through [`f32_kernel`] with a detected/forced tier).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_avx2(kc: usize, pa: &[f32], pb: &[f32], acc_out: &mut [f32]) {
    use core::arch::x86_64::{
        _mm256_broadcast_ss, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    const MR: usize = 6;
    const NR: usize = 16;
    assert!(pa.len() >= kc * MR && pb.len() >= kc * NR && acc_out.len() >= MR * NR);
    // SAFETY: the asserts above bound every pointer offset used below
    // (`pa`/`pb` hold full `kc`-deep packed panels, `acc_out` holds the full
    // MR×NR tile), and the fn-level contract guarantees the host supports
    // the SIMD features these intrinsics require.
    unsafe {
        let mut acc = [_mm256_setzero_ps(); 2 * MR];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            // Fixed trip count: fully unrolled, `acc` stays in registers.
            for r in 0..MR {
                let ar = _mm256_broadcast_ss(&*ap.add(r));
                acc[2 * r] = _mm256_fmadd_ps(ar, b0, acc[2 * r]);
                acc[2 * r + 1] = _mm256_fmadd_ps(ar, b1, acc[2 * r + 1]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        for r in 0..MR {
            _mm256_storeu_ps(acc_out.as_mut_ptr().add(r * NR), acc[2 * r]);
            _mm256_storeu_ps(acc_out.as_mut_ptr().add(r * NR + 8), acc[2 * r + 1]);
        }
    }
}

/// Hand-written 14×32 AVX-512 microkernel: 28 zmm accumulators (of 32), two
/// packed-B vector loads and fourteen scalar broadcasts per k-step. The
/// per-element accumulation is the same sequential k-order FMA chain as the
/// AVX2 kernel, so the two SIMD tiers are bit-identical — the wider tile
/// only changes which elements share a register, not how any element is
/// computed.
///
/// # Safety
///
/// The host must support AVX-512F (guaranteed when the kernel is reached
/// through [`f32_kernel`] with a detected/forced tier).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512(kc: usize, pa: &[f32], pb: &[f32], acc_out: &mut [f32]) {
    use core::arch::x86_64::{
        _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_set1_ps, _mm512_setzero_ps, _mm512_storeu_ps,
    };
    const MR: usize = 14;
    const NR: usize = 32;
    assert!(pa.len() >= kc * MR && pb.len() >= kc * NR && acc_out.len() >= MR * NR);
    // SAFETY: the asserts above bound every pointer offset used below
    // (`pa`/`pb` hold full `kc`-deep packed panels, `acc_out` holds the full
    // MR×NR tile), and the fn-level contract guarantees the host supports
    // the SIMD features these intrinsics require.
    unsafe {
        let mut acc = [_mm512_setzero_ps(); 2 * MR];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..kc {
            let b0 = _mm512_loadu_ps(bp);
            let b1 = _mm512_loadu_ps(bp.add(16));
            for r in 0..MR {
                let ar = _mm512_set1_ps(*ap.add(r));
                acc[2 * r] = _mm512_fmadd_ps(ar, b0, acc[2 * r]);
                acc[2 * r + 1] = _mm512_fmadd_ps(ar, b1, acc[2 * r + 1]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        for r in 0..MR {
            _mm512_storeu_ps(acc_out.as_mut_ptr().add(r * NR), acc[2 * r]);
            _mm512_storeu_ps(acc_out.as_mut_ptr().add(r * NR + 16), acc[2 * r + 1]);
        }
    }
}

/// Writes one accumulator tile (row-major, leading dimension `nr`) back to
/// C, applying `alpha`/`beta`. `beta == 0.0` overwrites without reading C.
#[allow(clippy::too_many_arguments)]
#[inline]
fn store_tile(
    acc: &[f32],
    nr: usize,
    c: &mut [f32],
    n: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    alpha: f32,
    beta: f32,
) {
    for r in 0..rows {
        let acc_row = &acc[r * nr..][..cols];
        let out = &mut c[(row0 + r) * n + col0..][..cols];
        if beta == 0.0 {
            for (o, &v) in out.iter_mut().zip(acc_row.iter()) {
                *o = alpha * v;
            }
        } else if beta == 1.0 {
            for (o, &v) in out.iter_mut().zip(acc_row.iter()) {
                *o += alpha * v;
            }
        } else {
            for (o, &v) in out.iter_mut().zip(acc_row.iter()) {
                *o = alpha * v + beta * *o;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Textbook reference used to validate the blocked kernel.
    #[allow(clippy::too_many_arguments)]
    fn gemm_reference(
        trans_a: bool,
        trans_b: bool,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut dot = 0.0f32;
                for p in 0..k {
                    let av = if trans_a { a[p * m + i] } else { a[i * k + p] };
                    let bv = if trans_b { b[j * k + p] } else { b[p * n + j] };
                    dot += av * bv;
                }
                let old = if beta == 0.0 {
                    0.0
                } else {
                    beta * c[i * n + j]
                };
                c[i * n + j] = alpha * dot + old;
            }
        }
    }

    fn random_vec(len: usize, rng: &mut Rng) -> Vec<f32> {
        (0..len).map(|_| rng.normal(0.0, 1.0)).collect()
    }

    #[test]
    fn matches_reference_over_odd_shapes() {
        let mut rng = Rng::seed_from(7);
        // Deliberately awkward shapes: non-multiples of any tier's mr/nr or
        // of KC, GEMV-like m=1 and n=1, k spanning several KC panels, tiny
        // everything.
        let shapes = [
            (1usize, 1usize, 1usize),
            (1, 17, 300),
            (5, 1, 3),
            (3, 7, 2),
            (4, 8, 256),
            (13, 29, 31),
            (33, 65, 17),
            (130, 9, 270),
            (2, 300, 5),
        ];
        for &(m, n, k) in &shapes {
            for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
                for &(alpha, beta) in &[(1.0f32, 0.0f32), (0.5, 1.0), (2.0, -0.5), (0.0, 2.0)] {
                    let a = random_vec(m * k, &mut rng);
                    let b = random_vec(k * n, &mut rng);
                    let seed_c = random_vec(m * n, &mut rng);
                    let mut expected = seed_c.clone();
                    gemm_reference(ta, tb, m, n, k, alpha, &a, &b, beta, &mut expected);
                    let mut got = seed_c.clone();
                    gemm(ta, tb, m, n, k, alpha, &a, &b, beta, &mut got);
                    for (idx, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
                        assert!(
                            (g - e).abs() <= 1e-3 * (1.0 + e.abs()),
                            "m={m} n={n} k={k} ta={ta} tb={tb} α={alpha} β={beta} idx={idx}: {g} vs {e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_dims_are_handled() {
        // m == 0 / n == 0: nothing to write.
        gemm(false, false, 0, 4, 3, 1.0, &[], &[0.0; 12], 0.0, &mut []);
        gemm(false, false, 4, 0, 3, 1.0, &[0.0; 12], &[], 0.0, &mut []);
        // k == 0: C ← β·C without touching A/B.
        let mut c = vec![2.0f32; 6];
        gemm(false, false, 2, 3, 0, 1.0, &[], &[], 0.5, &mut c);
        assert_eq!(c, vec![1.0; 6]);
        gemm(false, false, 2, 3, 0, 1.0, &[], &[], 0.0, &mut c);
        assert_eq!(c, vec![0.0; 6]);
    }

    #[test]
    fn beta_zero_overwrites_nan_garbage() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [f32::NAN; 1];
        gemm(false, false, 1, 1, 2, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c[0], 11.0);
    }

    #[test]
    fn scratch_reuse_is_alloc_free_after_warmup() {
        let mut rng = Rng::seed_from(9);
        let a = random_vec(64 * 48, &mut rng);
        let b = random_vec(48 * 32, &mut rng);
        let mut c = vec![0.0f32; 64 * 32];
        let mut scratch = Scratch::new();
        gemm_with_scratch(
            false,
            false,
            64,
            32,
            48,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            &mut scratch,
        );
        let cap = s_total(&scratch);
        for _ in 0..3 {
            gemm_with_scratch(
                false,
                false,
                64,
                32,
                48,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
                &mut scratch,
            );
        }
        assert_eq!(s_total(&scratch), cap, "repeat calls must not grow scratch");
    }

    fn s_total(s: &Scratch) -> usize {
        s.capacity()
    }

    #[test]
    fn prepacked_is_bit_identical_to_gemm() {
        let mut rng = Rng::seed_from(13);
        let shapes = [
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (64, 256, 512),
            (MC + 3, NC + 5, KC + 7),
            (2 * MC + 1, 9, 2 * KC + 3),
        ];
        let mut packed = PackedA::new();
        let mut packed_b_buf = Vec::new();
        for &(m, n, k) in &shapes {
            for &trans_a in &[false, true] {
                for &trans_b in &[false, true] {
                    for &(alpha, beta) in &[(1.0f32, 0.0f32), (0.5, 1.0)] {
                        let a = random_vec(m * k, &mut rng);
                        let b = random_vec(k * n, &mut rng);
                        let seed_c = random_vec(m * n, &mut rng);
                        let mut expected = seed_c.clone();
                        let mut scratch = Scratch::new();
                        gemm_with_scratch(
                            trans_a,
                            trans_b,
                            m,
                            n,
                            k,
                            alpha,
                            &a,
                            &b,
                            beta,
                            &mut expected,
                            &mut scratch,
                        );
                        packed.pack(trans_a, &a, m, k);
                        assert_eq!((packed.m(), packed.k()), (m, k));
                        assert_eq!(packed.tier(), dispatch::active());
                        let mut got = seed_c.clone();
                        gemm_prepacked(
                            &packed,
                            trans_b,
                            n,
                            alpha,
                            &b,
                            beta,
                            &mut got,
                            &mut packed_b_buf,
                        );
                        let identical = expected
                            .iter()
                            .zip(got.iter())
                            .all(|(x, y)| x.to_bits() == y.to_bits());
                        assert!(
                            identical,
                            "m={m} n={n} k={k} ta={trans_a} tb={trans_b} α={alpha} β={beta}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prepacked_a_is_reusable_across_many_b() {
        // The batched Monte-Carlo access pattern: one packed activation panel
        // multiplied against several perturbed weight matrices.
        let mut rng = Rng::seed_from(14);
        let (m, n, k) = (33, 17, 300);
        let a = random_vec(m * k, &mut rng);
        let mut packed = PackedA::new();
        packed.pack(false, &a, m, k);
        let warm = packed.buf.capacity();
        let mut packed_b_buf = Vec::new();
        for trial in 0..4 {
            let b = random_vec(k * n, &mut rng);
            let mut expected = vec![0.0f32; m * n];
            gemm(false, true, m, n, k, 1.0, &a, &b, 0.0, &mut expected);
            let mut got = vec![0.0f32; m * n];
            gemm_prepacked(&packed, true, n, 1.0, &b, 0.0, &mut got, &mut packed_b_buf);
            let identical = expected
                .iter()
                .zip(got.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(identical, "trial {trial}");
        }
        packed.pack(false, &a, m, k);
        assert_eq!(packed.buf.capacity(), warm, "repacking must not reallocate");
    }

    #[test]
    fn prepacked_b_is_bit_identical_to_gemm() {
        let mut rng = Rng::seed_from(15);
        let shapes = [
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (64, 256, 512),
            (MC + 3, NC + 5, KC + 7),
            (9, 2 * NC + 1, 2 * KC + 3),
        ];
        let mut packed = PackedB::new();
        let mut scratch = Scratch::new();
        for &(m, n, k) in &shapes {
            for &trans_a in &[false, true] {
                for &trans_b in &[false, true] {
                    for &(alpha, beta) in &[(1.0f32, 0.0f32), (0.5, 1.0)] {
                        let a = random_vec(m * k, &mut rng);
                        let b = random_vec(k * n, &mut rng);
                        let seed_c = random_vec(m * n, &mut rng);
                        let mut expected = seed_c.clone();
                        gemm_with_scratch(
                            trans_a,
                            trans_b,
                            m,
                            n,
                            k,
                            alpha,
                            &a,
                            &b,
                            beta,
                            &mut expected,
                            &mut Scratch::new(),
                        );
                        packed.pack(trans_b, &b, k, n);
                        assert_eq!((packed.k(), packed.n()), (k, n));
                        assert_eq!(packed.tier(), dispatch::active());
                        let mut got = seed_c.clone();
                        gemm_prepacked_b(
                            trans_a,
                            m,
                            alpha,
                            &a,
                            &packed,
                            beta,
                            &mut got,
                            &mut scratch,
                        );
                        let identical = expected
                            .iter()
                            .zip(got.iter())
                            .all(|(x, y)| x.to_bits() == y.to_bits());
                        assert!(
                            identical,
                            "prepacked_b m={m} n={n} k={k} ta={trans_a} tb={trans_b}"
                        );
                        // Fully prepacked path.
                        let mut pa = PackedA::new();
                        pa.pack(trans_a, &a, m, k);
                        let mut got_ab = seed_c.clone();
                        gemm_prepacked_ab(&pa, &packed, alpha, beta, &mut got_ab);
                        let identical = expected
                            .iter()
                            .zip(got_ab.iter())
                            .all(|(x, y)| x.to_bits() == y.to_bits());
                        assert!(
                            identical,
                            "prepacked_ab m={m} n={n} k={k} ta={trans_a} tb={trans_b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn repack_rows_restores_dirty_panels_exactly() {
        // The plan's access pattern: pack clean weights once, perturb a few
        // rows, repack only those rows, multiply; then revert some rows and
        // dirty others, repack the union, multiply again.
        let mut rng = Rng::seed_from(16);
        for &(n, k) in &[(7usize, 5usize), (NC + 9, KC + 3), (300, 40)] {
            let m = 13;
            let clean = random_vec(k * n, &mut rng);
            let a = random_vec(m * k, &mut rng);
            let mut packed = PackedB::new();
            packed.pack(true, &clean, k, n); // [n, k] weight layout
            let mut faulty = clean.clone();
            let mut dirty = DirtyRows::new(n);
            for row in [0usize, n / 2, n - 1] {
                for v in &mut faulty[row * k..(row + 1) * k] {
                    *v += 1.0;
                }
                dirty.mark(row);
            }
            packed.repack_rows(&faulty, &dirty, 0);
            let mut reference = PackedB::new();
            reference.pack(true, &faulty, k, n);
            let mut got = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            let mut scratch = Scratch::new();
            gemm_prepacked_b(false, m, 1.0, &a, &packed, 0.0, &mut got, &mut scratch);
            gemm_prepacked_b(false, m, 1.0, &a, &reference, 0.0, &mut want, &mut scratch);
            assert!(
                got.iter()
                    .zip(&want)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "n={n} k={k} dirty repack diverged"
            );
            // Revert row 0, dirty row 1: repacking the union must restore
            // the clean values of row 0 and pick up row 1.
            let mut next = clean.clone();
            for v in &mut next[k..2 * k] {
                *v -= 2.0;
            }
            let mut union = DirtyRows::new(n);
            union.merge(&dirty); // previously-faulty rows must be restored
            union.mark(1);
            packed.repack_rows(&next, &union, 0);
            let mut reference = PackedB::new();
            reference.pack(true, &next, k, n);
            gemm_prepacked_b(false, m, 1.0, &a, &packed, 0.0, &mut got, &mut scratch);
            gemm_prepacked_b(false, m, 1.0, &a, &reference, 0.0, &mut want, &mut scratch);
            assert!(
                got.iter()
                    .zip(&want)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "n={n} k={k} union repack diverged"
            );
        }
    }

    #[test]
    fn write_cell_matches_full_repack() {
        // The packed-domain injection primitive: scattering individual cell
        // values must leave the operand bit-identical to a full pack of the
        // same matrix, across interior cells, strip edges and panel edges.
        let mut rng = Rng::seed_from(61);
        let nr = f32_kernel(dispatch::active()).nr;
        for &(n, k) in &[(7usize, 5usize), (NC + 9, KC + 3), (300, 40)] {
            let clean = random_vec(k * n, &mut rng);
            let mut packed = PackedB::new();
            packed.pack(true, &clean, k, n);
            let mut faulty = clean.clone();
            let cells = [
                (0usize, 0usize),
                (n - 1, k - 1),
                (n / 2, k / 2),
                (nr.min(n - 1), 0),
                (n - 1, KC.min(k - 1)),
            ];
            for &(row, kidx) in &cells {
                let v = faulty[row * k + kidx] + 3.5;
                faulty[row * k + kidx] = v;
                packed.write_cell(row, kidx, v);
            }
            let mut reference = PackedB::new();
            reference.pack(true, &faulty, k, n);
            assert_eq!(packed.packed_len(), reference.packed_len());
            let identical = packed.buf[..packed.packed_len()]
                .iter()
                .zip(&reference.buf[..reference.packed_len()])
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "n={n} k={k} write_cell diverged from pack");
        }
    }

    #[test]
    fn repack_rows_with_base_offset_addresses_stacked_dirty_sets() {
        // One dirty set over batch·n rows drives per-realization panels.
        let mut rng = Rng::seed_from(62);
        let (n, k, m) = (10usize, 6usize, 4usize);
        let clean = random_vec(k * n, &mut rng);
        let a = random_vec(m * k, &mut rng);
        let mut faulty = clean.clone();
        for v in &mut faulty[3 * k..4 * k] {
            *v += 1.0;
        }
        let mut stacked = DirtyRows::new(3 * n);
        stacked.mark(2 * n + 3); // realization 2, row 3
        let mut packed = PackedB::new();
        packed.pack(true, &clean, k, n);
        // Base 0 and n see no marks — nothing repacked.
        packed.repack_rows(&faulty, &stacked, 0);
        packed.repack_rows(&faulty, &stacked, n);
        let mut want = vec![0.0f32; m * n];
        let mut got = vec![0.0f32; m * n];
        let mut scratch = Scratch::new();
        let mut reference = PackedB::new();
        reference.pack(true, &clean, k, n);
        gemm_prepacked_b(false, m, 1.0, &a, &packed, 0.0, &mut got, &mut scratch);
        gemm_prepacked_b(false, m, 1.0, &a, &reference, 0.0, &mut want, &mut scratch);
        assert!(got
            .iter()
            .zip(&want)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        // Base 2n sees the mark — row 3 repacked.
        packed.repack_rows(&faulty, &stacked, 2 * n);
        reference.pack(true, &faulty, k, n);
        gemm_prepacked_b(false, m, 1.0, &a, &packed, 0.0, &mut got, &mut scratch);
        gemm_prepacked_b(false, m, 1.0, &a, &reference, 0.0, &mut want, &mut scratch);
        // Only row 3 of the faulty matrix was marked, so columns j != 3 of
        // the product still match the clean reference; column 3 matches the
        // faulty one.
        let mut clean_ref = PackedB::new();
        clean_ref.pack(true, &clean, k, n);
        let mut clean_want = vec![0.0f32; m * n];
        gemm_prepacked_b(
            false,
            m,
            1.0,
            &a,
            &clean_ref,
            0.0,
            &mut clean_want,
            &mut scratch,
        );
        for i in 0..m {
            for j in 0..n {
                let expect = if j == 3 {
                    want[i * n + j]
                } else {
                    clean_want[i * n + j]
                };
                assert_eq!(got[i * n + j].to_bits(), expect.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn accumulation_order_is_thread_count_invariant() {
        // The sequential and parallel paths must agree bit-for-bit: same
        // k-accumulation order per element, only the (disjoint) row-block
        // assignment differs.
        let mut rng = Rng::seed_from(11);
        let (m, n, k) = (2 * MC + 3, NC + 5, KC + 7);
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let mut seq = vec![0.0f32; m * n];
        LOCAL_SCRATCH.with(|s| {
            gemm_with_scratch(
                false,
                false,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut seq,
                &mut s.borrow_mut(),
            );
        });
        let mut par = vec![0.0f32; m * n];
        let kern = f32_kernel(dispatch::active());
        gemm_parallel(&kern, false, false, m, n, k, 1.0, &a, &b, 0.0, &mut par, 4);
        let identical = seq
            .iter()
            .zip(par.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(
            identical,
            "parallel GEMM must be bit-identical to sequential"
        );
    }

    mod packed_b_props {
        use super::*;
        use proptest::prelude::*;

        // Round-trip property: repacking an arbitrary dirty subset of rows
        // from an updated matrix leaves the cached operand bit-identical to
        // a from-scratch pack of that matrix.
        proptest! {
            #[test]
            fn prop_repack_matches_direct_pack(
                n in 1usize..40,
                k in 1usize..20,
                seed in 0u32..1000,
                dirty_rows in proptest::collection::vec(0usize..40, 0..8),
            ) {
                let mut rng = Rng::seed_from(u64::from(seed));
                let clean: Vec<f32> = (0..k * n).map(|_| rng.normal(0.0, 1.0)).collect();
                let mut packed = PackedB::new();
                packed.pack(true, &clean, k, n);
                let mut faulty = clean.clone();
                let mut dirty = DirtyRows::new(n);
                for &row in dirty_rows.iter().filter(|&&r| r < n) {
                    for v in &mut faulty[row * k..(row + 1) * k] {
                        *v = -*v + 0.5;
                    }
                    dirty.mark(row);
                }
                packed.repack_rows(&faulty, &dirty, 0);
                let mut direct = PackedB::new();
                direct.pack(true, &faulty, k, n);
                prop_assert_eq!(packed.buf.len(), direct.buf.len());
                let identical = packed
                    .buf
                    .iter()
                    .zip(direct.buf.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                prop_assert!(identical, "cached repack diverged from direct pack");
            }
        }
    }
}
