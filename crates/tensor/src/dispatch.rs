//! Runtime SIMD kernel dispatch.
//!
//! The GEMM/qgemm microkernels and the vectorized elementwise paths
//! ([`crate::vecmath`]) are selected at **runtime** from a ladder of kernel
//! tiers rather than at compile time. A binary built for a generic `x86-64`
//! target therefore still runs the AVX2 or AVX-512 kernels when the host
//! supports them, and a binary built with `target-cpu=native` can still be
//! pinned to the portable tier for reproducibility experiments.
//!
//! The active tier is resolved **once** per process (first use) and cached in
//! an atomic, so the per-call dispatch cost is a single relaxed load. The
//! resolution order is:
//!
//! 1. an explicit [`force`] call (tests/benches),
//! 2. the `INVNORM_KERNEL_TIER` environment variable (`portable` / `avx2` /
//!    `avx512`), clamped to what the host actually supports,
//! 3. CPU feature detection via `is_x86_feature_detected!`.
//!
//! ## Reproducibility boundary
//!
//! Within a tier every engine, fault model, batch size, and thread count is
//! bit-identical — the tier is the *only* reproducibility boundary, and only
//! for f32 GEMM: the integer qgemm kernels are exact and bit-identical across
//! **all** tiers, the elementwise [`crate::vecmath`] ops are defined by
//! per-lane scalar semantics and bit-identical across all tiers, and the AVX2
//! and AVX-512 f32 GEMM kernels share the same per-element FMA accumulation
//! order and are bit-identical to each other. The only divergent pair is
//! portable f32 GEMM (separate multiply + add rounding steps) vs the FMA
//! tiers. The active tier is surfaced on every
//! [`RunTelemetry`](crate::telemetry::RunTelemetry) so results carry their
//! kernel provenance.

use std::sync::atomic::{AtomicU8, Ordering};

/// One rung of the runtime kernel ladder.
///
/// Tiers are totally ordered: `Portable < Avx2 < Avx512`. A tier is usable
/// only if the host CPU supports every feature it needs; [`detected`] returns
/// the best usable tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelTier {
    /// Scalar kernels, available on every target. The only f32 tier whose
    /// GEMM rounds multiply and add separately (no FMA).
    #[default]
    Portable = 0,
    /// AVX2 + FMA: 6×16 f32 GEMM tiles, `maddubs` sign-split i8 qgemm.
    Avx2 = 1,
    /// AVX-512F/BW/VNNI: 14×32 f32 GEMM tiles, `vpdpbusd` i8 qgemm.
    Avx512 = 2,
}

impl KernelTier {
    /// Stable lower-case name, used by telemetry and the
    /// `INVNORM_KERNEL_TIER` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Portable => "portable",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
        }
    }

    /// Parses a tier name as accepted by `INVNORM_KERNEL_TIER`
    /// (case-insensitive). Returns `None` for unknown names.
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "portable" | "scalar" => Some(KernelTier::Portable),
            "avx2" => Some(KernelTier::Avx2),
            "avx512" | "avx-512" => Some(KernelTier::Avx512),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> KernelTier {
        match v {
            0 => KernelTier::Portable,
            1 => KernelTier::Avx2,
            2 => KernelTier::Avx512,
            _ => unreachable!("invalid kernel tier tag {v}"),
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// `u8::MAX` marks "not yet resolved"; otherwise the tier discriminant.
const UNRESOLVED: u8 = u8::MAX;

// Ordering contract: Relaxed everywhere. ACTIVE is a monotonic cache of a
// pure function of the host CPU (plus an idempotent env read); racing
// resolvers compute the same value, and no other memory is published
// through it, so no acquire/release pairing is needed.
static ACTIVE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// Returns the best kernel tier the host CPU supports, ignoring overrides.
pub fn detected() -> KernelTier {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx512vnni")
        {
            return KernelTier::Avx512;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return KernelTier::Avx2;
        }
    }
    KernelTier::Portable
}

/// Returns the active kernel tier, resolving and caching it on first use.
///
/// Resolution honours `INVNORM_KERNEL_TIER` (clamped to [`detected`], with a
/// warning on stderr when the request exceeds the host's capabilities or is
/// unparseable) and otherwise uses feature detection.
pub fn active() -> KernelTier {
    match ACTIVE.load(Ordering::Relaxed) {
        UNRESOLVED => {
            let tier = resolve();
            // Competing first callers all compute the same value, so a plain
            // store is fine; `force` afterwards still wins.
            ACTIVE.store(tier as u8, Ordering::Relaxed);
            tier
        }
        v => KernelTier::from_u8(v),
    }
}

fn resolve() -> KernelTier {
    let best = detected();
    match std::env::var("INVNORM_KERNEL_TIER") {
        Ok(raw) => match KernelTier::parse(&raw) {
            Some(req) if req <= best => req,
            Some(req) => {
                eprintln!(
                    "invnorm: INVNORM_KERNEL_TIER={} exceeds host support; using {}",
                    req.name(),
                    best.name()
                );
                best
            }
            None => {
                eprintln!(
                    "invnorm: unrecognised INVNORM_KERNEL_TIER={raw:?} \
                     (expected portable|avx2|avx512); using {}",
                    best.name()
                );
                best
            }
        },
        Err(_) => best,
    }
}

/// Pins the active kernel tier for the rest of the process (until the next
/// [`force`] or [`reset`]).
///
/// Intended for tests and benches that exercise the tier matrix. Panics if
/// the host does not support `tier` — a forced tier silently falling back
/// would defeat the point of pinning.
///
/// This is process-global: callers that mix forced tiers with concurrent
/// kernel work must serialize externally (prepacked operands remember the
/// tier they were packed for, so packing and multiplying under different
/// forced tiers is caught by assertions, not silent corruption).
pub fn force(tier: KernelTier) {
    assert!(
        tier <= detected(),
        "cannot force kernel tier {} on a host that only supports {}",
        tier.name(),
        detected().name()
    );
    ACTIVE.store(tier as u8, Ordering::Relaxed);
}

/// Clears any cached or forced tier; the next [`active`] call re-resolves
/// from the environment and CPU detection.
pub fn reset() {
    ACTIVE.store(UNRESOLVED, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(KernelTier::parse("portable"), Some(KernelTier::Portable));
        assert_eq!(KernelTier::parse("scalar"), Some(KernelTier::Portable));
        assert_eq!(KernelTier::parse(" AVX2 "), Some(KernelTier::Avx2));
        assert_eq!(KernelTier::parse("avx512"), Some(KernelTier::Avx512));
        assert_eq!(KernelTier::parse("AVX-512"), Some(KernelTier::Avx512));
        assert_eq!(KernelTier::parse("neon"), None);
        assert_eq!(KernelTier::parse(""), None);
    }

    #[test]
    fn tier_order_matches_capability_ladder() {
        assert!(KernelTier::Portable < KernelTier::Avx2);
        assert!(KernelTier::Avx2 < KernelTier::Avx512);
    }

    #[test]
    fn names_round_trip() {
        for tier in [KernelTier::Portable, KernelTier::Avx2, KernelTier::Avx512] {
            assert_eq!(KernelTier::parse(tier.name()), Some(tier));
            assert_eq!(format!("{tier}"), tier.name());
        }
    }

    #[test]
    fn active_is_at_most_detected() {
        // Whatever the environment says, `active` never exceeds the host.
        assert!(active() <= detected());
    }
}
