//! Reusable workspace buffers for the compute kernels.
//!
//! The hot inference path of the Monte-Carlo evaluation protocol calls the
//! same GEMM / im2col shapes thousands of times; allocating fresh `Vec`s on
//! every call wastes a large fraction of the wall-clock on `malloc` and page
//! faults. A [`Scratch`] owns the intermediate buffers those kernels need and
//! grows them monotonically, so steady-state forward passes perform **zero**
//! heap allocations for intermediates (outputs that escape to the caller are
//! still owned tensors).
//!
//! Layers hold their own `Scratch` (e.g. `invnorm_nn::Conv2d`), and the
//! tensor-level entry points ([`crate::ops::matmul`] & friends) fall back to
//! a thread-local `Scratch` so even scratch-unaware callers reuse buffers.

/// Growable, reusable workspace for GEMM packing and im2col buffers.
///
/// Buffers are independent fields (rather than a keyed pool) so a kernel can
/// borrow several of them mutably at once.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    /// Packed A-panel storage for the blocked GEMM (MR-strip layout).
    pub packed_a: Vec<f32>,
    /// Packed B-panel storage for the blocked GEMM (NR-strip layout).
    pub packed_b: Vec<f32>,
    /// im2col patch matrix (`[N*OH*OW, C*KH*KW]`, row-major).
    pub cols: Vec<f32>,
    /// GEMM output staging in matrix layout before NCHW re-layout.
    pub out_mat: Vec<f32>,
    /// Per-timestep input slice / gate staging (LSTM).
    pub step: Vec<f32>,
    /// Packed A-panel storage for the quantized i8 GEMM (k-quad layout).
    /// (The quantized layers' activation/patch/accumulator buffers live in
    /// the layers themselves; `Scratch` only hosts the GEMM packing panels.)
    pub packed_a_i8: Vec<i8>,
    /// Packed B-panel storage for the quantized i8 GEMM (k-quad layout).
    pub packed_b_i8: Vec<i8>,
}

impl Scratch {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total capacity currently held across all buffers, in elements.
    pub fn capacity(&self) -> usize {
        self.packed_a.capacity()
            + self.packed_b.capacity()
            + self.cols.capacity()
            + self.out_mat.capacity()
            + self.step.capacity()
            + self.packed_a_i8.capacity()
            + self.packed_b_i8.capacity()
    }
}

/// Returns the first `len` elements of `buf`, growing it if needed (capacity
/// is monotone; no shrinking, and — crucially — no per-call `memset` when the
/// buffer is already large enough). Contents are unspecified — callers must
/// overwrite every element they read.
pub fn uninit_slice(buf: &mut Vec<f32>, len: usize) -> &mut [f32] {
    uninit_slice_of(buf, len)
}

/// Element-type-generic [`uninit_slice`], shared by the f32 and the quantized
/// (i8 / i32) kernel paths.
pub fn uninit_slice_of<T: Copy + Default>(buf: &mut Vec<T>, len: usize) -> &mut [T] {
    if buf.len() < len {
        buf.resize(len, T::default());
    }
    &mut buf[..len]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_monotonically() {
        let mut s = Scratch::new();
        uninit_slice(&mut s.cols, 128);
        let cap = s.cols.capacity();
        assert_eq!(uninit_slice(&mut s.cols, 16).len(), 16);
        assert!(s.cols.capacity() >= cap, "capacity must not shrink");
        assert!(s.capacity() >= 128);
    }

    #[test]
    fn uninit_slice_has_requested_length() {
        let mut buf = Vec::new();
        assert_eq!(uninit_slice(&mut buf, 7).len(), 7);
        assert_eq!(uninit_slice(&mut buf, 0).len(), 0);
    }
}
