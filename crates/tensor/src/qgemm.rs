//! Cache-blocked, register-tiled, parallel **i8 × i8 → i32** GEMM.
//!
//! This is the integer compute core of the quantized inference path:
//! `C ← op(A) · op(B)` (optionally accumulating into C) where A and B hold
//! signed 8-bit quantization codes and C holds exact 32-bit integer
//! accumulators. It mirrors the blocking structure of the f32 kernel in
//! [`crate::gemm`] (KC k-panels, MC row blocks, NC column panels, packed
//! operands, zero-padded edge tiles) with one integer-specific twist: the
//! k-dimension is packed in **quads of four** codes so the SIMD microkernels
//! can consume them with `maddubs`-pair or `vpdpbusd` quad products.
//!
//! The microkernel is selected at runtime through [`crate::dispatch`]:
//!
//! * **AVX2** uses the sign-split trick (as in the i8 dot kernels of
//!   llama.cpp and rten): `a·b == |a| · sign(b, a)`, which makes the
//!   unsigned-by-signed `_mm256_maddubs_epi16` applicable to two signed
//!   operands. Because codes are constrained to `[-127, 127]`, each i16 pair
//!   sum is at most `2 · 127² = 32258 < 32767`, so the saturating
//!   multiply-add can never saturate.
//! * **AVX-512 VNNI** replaces the `maddubs` + widen pair with a single
//!   `vpdpbusd` per B vector: the same sign-split feeds the unsigned×signed
//!   dot accumulate, whose 4-product sums (≤ `4 · 127² = 64516`) land in the
//!   i32 accumulators without any intermediate saturation at all, over an
//!   8×32 tile.
//! * The **portable** kernel is plain scalar quad accumulation.
//!
//! Integer arithmetic is exact, so every kernel tier, thread count and
//! prepacked variant returns the same integers as the naive reference oracle
//! in `ops::reference::qmatmul_i8` — the quantized path is **bit-exact
//! across the whole dispatch ladder**, unlike f32 where the portable tier
//! rounds differently.
//!
//! Accumulation depth is bounded: `k · 127² ≤ i32::MAX` requires
//! `k ≤ 133 152`, far beyond any layer in the workspace; the entry points
//! debug-assert it.
//!
//! lint: no_alloc

use crate::arena::DirtyRows;
use crate::dispatch::{self, KernelTier};
use crate::scratch::{uninit_slice_of, Scratch};
use crate::telemetry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// k-panel size (shared with the f32 kernel; the packed i8 strips are 4×
/// smaller, so they sit even deeper in L1).
pub const QKC: usize = 256;
/// m-block size.
pub const QMC: usize = 128;
/// n-panel size.
pub const QNC: usize = 256;
/// k-quad: the microkernel consumes four codes per k-step.
const KQ: usize = 4;

/// Maximum k supported without risking i32 accumulator overflow
/// (`k · 127² ≤ i32::MAX`).
pub const MAX_K: usize = (i32::MAX as usize) / (127 * 127);

/// Minimum `m·n·k` before the row-block loop is parallelized.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 21;

/// Elements in the largest quantized microkernel tile (VNNI's 8×32); sizes
/// the stack accumulator every tier writes a prefix of.
const QMAX_TILE: usize = 8 * 32;

/// A quantized microkernel: computes the full `qmr × qnr` register tile over
/// one packed k-panel (`quads` k-quads) and writes it row-major (leading
/// dimension `qnr`) into `acc`, overwriting the `qmr * qnr` prefix.
///
/// # Safety
///
/// The callee may use the SIMD features of the tier it belongs to; callers
/// must only invoke kernels obtained from [`q_kernel`] with a tier the host
/// supports. Slice bounds are asserted by each kernel.
type MicrokernelI8 = unsafe fn(quads: usize, pa: &[i8], pb: &[i8], acc: &mut [i32]);

/// One tier's quantized GEMM kernel: its register-tile geometry plus the
/// microkernel that fills such a tile.
#[derive(Clone, Copy)]
pub(crate) struct QKernel {
    /// Rows of C computed per microkernel tile.
    pub(crate) qmr: usize,
    /// Columns of C computed per microkernel tile.
    pub(crate) qnr: usize,
    micro: MicrokernelI8,
}

/// Portable 4×16 kernel (the AVX2 tile, scalar quad accumulation).
const PORTABLE_I8: QKernel = QKernel {
    qmr: 4,
    qnr: 16,
    micro: microkernel_portable,
};

/// AVX2 4×16 `maddubs` sign-split kernel: eight 256-bit i32 accumulators
/// plus the packed-B loads and the sign/abs temporaries fit the 16 ymm
/// registers without spilling.
#[cfg(target_arch = "x86_64")]
const AVX2_I8: QKernel = QKernel {
    qmr: 4,
    qnr: 16,
    micro: microkernel_avx2,
};

/// AVX-512 VNNI 8×32 `vpdpbusd` kernel: sixteen zmm accumulators plus the
/// loads and sign-split temporaries stay within the 32 zmm registers.
#[cfg(target_arch = "x86_64")]
const VNNI_I8: QKernel = QKernel {
    qmr: 8,
    qnr: 32,
    micro: microkernel_vnni,
};

/// The quantized GEMM kernel for a dispatch tier.
pub(crate) fn q_kernel(tier: KernelTier) -> QKernel {
    match tier {
        KernelTier::Portable => PORTABLE_I8,
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => AVX2_I8,
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx512 => VNNI_I8,
        // Non-x86 hosts never detect (nor may they force) the SIMD tiers.
        #[cfg(not(target_arch = "x86_64"))]
        _ => PORTABLE_I8,
    }
}

thread_local! {
    static LOCAL_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Integer matrix multiply `C ← op(A) · op(B)` (or `C += …` when
/// `accumulate`), for i8 codes in `[-127, 127]` and an i32 output.
///
/// `op(A)` is `A` (`[m, k]`, row-major) or `Aᵀ` (stored `[k, m]`) when
/// `trans_a` is set; likewise `op(B)` is `[k, n]` or stored `[n, k]` when
/// `trans_b` is set. `C` is always `[m, n]` row-major.
///
/// Results are **bit-exact** for every kernel tier, variant and thread count
/// (integer arithmetic, fixed per-element accumulation). Large products are
/// parallelized over row blocks.
///
/// # Panics
///
/// Panics when a slice length disagrees with the given dimensions. Debug
/// builds also assert `k ≤ MAX_K` and that no code is `-128` (the sign-split
/// microkernels require magnitudes ≤ 127; every quantizer in the workspace
/// clamps to `[-qmax, qmax]`).
#[allow(clippy::too_many_arguments)]
pub fn qgemm(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    accumulate: bool,
    c: &mut [i32],
) {
    let _span = telemetry::span(telemetry::Phase::Gemm);
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0);
        }
        return;
    }
    let kern = q_kernel(dispatch::active());
    let row_blocks = m.div_ceil(QMC);
    let workers = rayon::current_num_threads().min(row_blocks);
    if workers > 1 && m * n * k >= PARALLEL_FLOP_THRESHOLD {
        qgemm_parallel(
            &kern, trans_a, trans_b, m, n, k, a, b, accumulate, c, workers,
        );
    } else {
        LOCAL_SCRATCH.with(|s| {
            qgemm_with_scratch_impl(
                &kern,
                trans_a,
                trans_b,
                m,
                n,
                k,
                a,
                b,
                accumulate,
                c,
                &mut s.borrow_mut(),
            );
        });
    }
}

/// Single-threaded [`qgemm`] with an explicit packing workspace, for callers
/// that manage buffer reuse themselves (the quantized layers).
#[allow(clippy::too_many_arguments)]
pub fn qgemm_with_scratch(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    accumulate: bool,
    c: &mut [i32],
    scratch: &mut Scratch,
) {
    let _span = telemetry::span(telemetry::Phase::Gemm);
    let kern = q_kernel(dispatch::active());
    qgemm_with_scratch_impl(
        &kern, trans_a, trans_b, m, n, k, a, b, accumulate, c, scratch,
    );
}

/// Shared body of [`qgemm`]'s single-threaded path and
/// [`qgemm_with_scratch`], so each public entry opens exactly one telemetry
/// span.
#[allow(clippy::too_many_arguments)]
fn qgemm_with_scratch_impl(
    kern: &QKernel,
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    accumulate: bool,
    c: &mut [i32],
    scratch: &mut Scratch,
) {
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0);
        }
        return;
    }
    let (qmr, qnr) = (kern.qmr, kern.qnr);
    let kq_panel = QKC / KQ; // quads per full k-panel
    let packed_b = uninit_slice_of(
        &mut scratch.packed_b_i8,
        kq_panel * KQ * QNC.min(n.next_multiple_of(qnr)),
    );
    let packed_a = uninit_slice_of(
        &mut scratch.packed_a_i8,
        QMC.next_multiple_of(qmr) * kq_panel * KQ,
    );
    for jc in (0..n).step_by(QNC) {
        let nc = QNC.min(n - jc);
        for pc in (0..k).step_by(QKC) {
            let kc = QKC.min(k - pc);
            pack_b(qnr, trans_b, b, k, n, pc, kc, jc, nc, packed_b);
            let acc_block = accumulate || pc > 0;
            for ic in (0..m).step_by(QMC) {
                let mc = QMC.min(m - ic);
                pack_a(qmr, trans_a, a, m, k, ic, mc, pc, kc, packed_a);
                block_kernel(
                    kern, packed_a, packed_b, c, n, ic, mc, jc, nc, kc, acc_block,
                );
            }
        }
    }
}

/// Work-stealing parallel path mirroring `gemm_parallel`: row blocks are
/// claimed from an atomic counter, each worker packs its own A blocks, and
/// the packed B panel is shared read-only.
// lint: alloc_ok(per-call packing scratch: one shared B panel plus one A
// panel per worker, allocated at entry — steady-state callers go through
// `QPackedA`/`QPackedB` plans that hoist even these)
#[allow(clippy::too_many_arguments)]
fn qgemm_parallel(
    kern: &QKernel,
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    accumulate: bool,
    c: &mut [i32],
    workers: usize,
) {
    let (qmr, qnr) = (kern.qmr, kern.qnr);
    let row_blocks = m.div_ceil(QMC);
    let kq_panel = QKC / KQ;
    let mut packed_b_buf = vec![0i8; kq_panel * KQ * QNC.min(n.next_multiple_of(qnr))];
    let c_ptr = SendPtr(c.as_mut_ptr());
    for jc in (0..n).step_by(QNC) {
        let nc = QNC.min(n - jc);
        for pc in (0..k).step_by(QKC) {
            let kc = QKC.min(k - pc);
            pack_b(qnr, trans_b, b, k, n, pc, kc, jc, nc, &mut packed_b_buf);
            let packed_b = &packed_b_buf;
            let acc_block = accumulate || pc > 0;
            let next = AtomicUsize::new(0);
            rayon::scope(|s| {
                for _ in 0..workers {
                    let next = &next;
                    let c_ptr = &c_ptr;
                    let kern = *kern;
                    s.spawn(move || {
                        let mut packed_a = vec![0i8; QMC.next_multiple_of(qmr) * kq_panel * KQ];
                        loop {
                            let blk = next.fetch_add(1, Ordering::Relaxed);
                            if blk >= row_blocks {
                                break;
                            }
                            let ic = blk * QMC;
                            let mc = QMC.min(m - ic);
                            pack_a(qmr, trans_a, a, m, k, ic, mc, pc, kc, &mut packed_a);
                            // SAFETY: each row block `[ic, ic+mc)` is claimed
                            // by exactly one worker (atomic counter), so the
                            // C rows written here are disjoint between
                            // workers for the lifetime of this scope.
                            let c_rows = unsafe {
                                std::slice::from_raw_parts_mut(c_ptr.0.add(ic * n), mc * n)
                            };
                            block_kernel(
                                &kern, &packed_a, packed_b, c_rows, n, 0, mc, jc, nc, kc, acc_block,
                            );
                        }
                    });
                }
            });
        }
    }
}

/// Raw pointer wrapper so scoped workers can share the output buffer; safety
/// rests on the disjoint row-block claim discipline in [`qgemm_parallel`].
struct SendPtr(*mut i32);
// SAFETY: SendPtr is only handed to scoped workers that write disjoint
// row blocks of C (each `mc` block is claimed by exactly one worker via the
// fetch_add ticket in `qgemm_parallel`), so concurrent access never aliases.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Fixed slot stride of one packed `(k-panel, m-block)` A block inside a
/// [`QPackedA`] buffer for a tier with the given `qmr` (`QKC` is a multiple
/// of the k-quad, so a full panel packs to exactly `QMC'·QKC` codes).
fn qa_block_stride(qmr: usize) -> usize {
    QMC.div_ceil(qmr) * qmr * QKC
}

/// A fully packed i8 `op(A)` operand in the quad-major strip layout the
/// quantized microkernel consumes — the integer counterpart of
/// [`crate::gemm::PackedA`], used by the batched quantized Monte-Carlo path
/// to pack one activation-code panel once and reuse it against B perturbed
/// weight-code realizations. Bit-exact vs [`qgemm_with_scratch`]. Records
/// the kernel tier active when packed; prepacked multiplies use that tier.
#[derive(Debug, Default, Clone)]
pub struct QPackedA {
    m: usize,
    k: usize,
    tier: KernelTier,
    buf: Vec<i8>,
}

impl QPackedA {
    /// Creates an empty handle; the buffer grows on first [`QPackedA::pack`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows of the packed operand.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Shared (reduction) dimension of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The kernel tier whose strip layout this operand was packed for.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Packs `op(A)` (`[m, k]` codes, or stored `[k, m]` when `trans_a`).
    ///
    /// # Panics
    ///
    /// Panics when the slice length disagrees with `m * k`.
    pub fn pack(&mut self, trans_a: bool, a: &[i8], m: usize, k: usize) {
        let _span = telemetry::span(telemetry::Phase::Pack);
        assert_eq!(a.len(), m * k, "A must hold m*k codes");
        self.m = m;
        self.k = k;
        self.tier = dispatch::active();
        let qmr = q_kernel(self.tier).qmr;
        let stride = qa_block_stride(qmr);
        let m_blocks = m.div_ceil(QMC);
        let k_panels = k.div_ceil(QKC);
        let buf = uninit_slice_of(&mut self.buf, m_blocks * k_panels * stride);
        for (pi, pc) in (0..k).step_by(QKC).enumerate() {
            let kc = QKC.min(k - pc);
            for (bi, ic) in (0..m).step_by(QMC).enumerate() {
                let mc = QMC.min(m - ic);
                let slot = &mut buf[(pi * m_blocks + bi) * stride..][..stride];
                pack_a(qmr, trans_a, a, m, k, ic, mc, pc, kc, slot);
            }
        }
    }
}

/// [`qgemm_with_scratch`] with a pre-packed A operand (see [`QPackedA`]):
/// only B is packed per call, into the caller's reusable `packed_b` buffer.
/// Bit-exact vs every other kernel variant.
///
/// # Panics
///
/// Panics when a slice length disagrees with the packed dimensions.
#[allow(clippy::too_many_arguments)]
pub fn qgemm_prepacked(
    packed_a: &QPackedA,
    trans_b: bool,
    n: usize,
    b: &[i8],
    accumulate: bool,
    c: &mut [i32],
    packed_b_buf: &mut Vec<i8>,
) {
    let _span = telemetry::span(telemetry::Phase::Gemm);
    let (m, k) = (packed_a.m, packed_a.k);
    assert_eq!(b.len(), k * n, "B must hold k*n codes");
    assert_eq!(c.len(), m * n, "C must hold m*n accumulators");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0);
        }
        return;
    }
    let kern = q_kernel(packed_a.tier);
    let (qmr, qnr) = (kern.qmr, kern.qnr);
    let stride = qa_block_stride(qmr);
    let m_blocks = m.div_ceil(QMC);
    let kq_panel = QKC / KQ;
    let packed_b = uninit_slice_of(
        packed_b_buf,
        kq_panel * KQ * QNC.min(n.next_multiple_of(qnr)),
    );
    for jc in (0..n).step_by(QNC) {
        let nc = QNC.min(n - jc);
        for (pi, pc) in (0..k).step_by(QKC).enumerate() {
            let kc = QKC.min(k - pc);
            pack_b(qnr, trans_b, b, k, n, pc, kc, jc, nc, packed_b);
            let acc_block = accumulate || pc > 0;
            for (bi, ic) in (0..m).step_by(QMC).enumerate() {
                let mc = QMC.min(m - ic);
                let pa = &packed_a.buf[(pi * m_blocks + bi) * stride..];
                block_kernel(&kern, pa, packed_b, c, n, ic, mc, jc, nc, kc, acc_block);
            }
        }
    }
}

/// A fully packed i8 `op(B)` operand in the quad-major strip layout the
/// quantized microkernel consumes — the integer counterpart of
/// [`crate::gemm::PackedB`], cached by compiled plans for quantized layers
/// and re-packed only where a code-domain fault realization marked rows
/// dirty ([`QPackedB::repack_rows`]). Bit-exact vs [`qgemm_with_scratch`].
/// Records the kernel tier active when packed.
#[derive(Debug, Default, Clone)]
pub struct QPackedB {
    k: usize,
    n: usize,
    trans_b: bool,
    tier: KernelTier,
    k_panels: usize,
    slot: usize,
    buf: Vec<i8>,
}

impl QPackedB {
    /// Creates an empty handle; the buffer grows on first [`QPackedB::pack`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared (reduction) dimension of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the packed operand.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The kernel tier whose strip layout this operand was packed for.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Packs `op(B)` (`[k, n]` codes, or stored `[n, k]` when `trans_b`).
    ///
    /// # Panics
    ///
    /// Panics when the slice length disagrees with `k * n`.
    pub fn pack(&mut self, trans_b: bool, b: &[i8], k: usize, n: usize) {
        let _span = telemetry::span(telemetry::Phase::Pack);
        assert_eq!(b.len(), k * n, "B must hold k*n codes");
        self.k = k;
        self.n = n;
        self.trans_b = trans_b;
        self.tier = dispatch::active();
        let qnr = q_kernel(self.tier).qnr;
        self.k_panels = k.div_ceil(QKC).max(1);
        self.slot = QKC * QNC.min(n.next_multiple_of(qnr)).max(qnr);
        let n_panels = n.div_ceil(QNC).max(1);
        let buf = uninit_slice_of(&mut self.buf, n_panels * self.k_panels * self.slot);
        for (ji, jc) in (0..n).step_by(QNC).enumerate() {
            let nc = QNC.min(n - jc);
            for (pi, pc) in (0..k).step_by(QKC).enumerate() {
                let kc = QKC.min(k - pc);
                let slot = &mut buf[(ji * self.k_panels + pi) * self.slot..][..self.slot];
                pack_b(qnr, trans_b, b, k, n, pc, kc, jc, nc, slot);
            }
        }
    }

    /// The packed panel for n-panel `ji` and k-panel `pi`.
    fn panel(&self, ji: usize, pi: usize) -> &[i8] {
        &self.buf[(ji * self.k_panels + pi) * self.slot..][..self.slot]
    }

    /// Re-packs only the qnr-strips covering rows marked in `dirty` from the
    /// updated code matrix `b` (see [`crate::gemm::PackedB::repack_rows`] for
    /// the contract — every column changed since the last pack must be
    /// marked). `base` offsets the lookup into `dirty`, so one dirty set over
    /// `batch · n` rows can drive the per-realization panels of a stacked
    /// batched plan; single-operand callers pass `0`.
    ///
    /// # Panics
    ///
    /// Panics when `b` or `dirty` disagree with the packed dimensions.
    pub fn repack_rows(&mut self, b: &[i8], dirty: &DirtyRows, base: usize) {
        let _span = telemetry::span(telemetry::Phase::Repack);
        assert_eq!(b.len(), self.k * self.n, "B must hold k*n codes");
        assert!(dirty.rows() >= base + self.n, "dirty set must cover n rows");
        let (k, n, trans_b) = (self.k, self.n, self.trans_b);
        let qnr = q_kernel(self.tier).qnr;
        let mut repacked_rows = 0u64;
        for (ji, jc) in (0..n).step_by(QNC).enumerate() {
            let nc = QNC.min(n - jc);
            for jr in (0..nc).step_by(qnr) {
                let j0 = jc + jr;
                if !dirty.any_in(base + j0, base + (j0 + qnr).min(n)) {
                    continue;
                }
                let cols = qnr.min(nc - jr);
                repacked_rows += cols as u64;
                for (pi, pc) in (0..k).step_by(QKC).enumerate() {
                    let kc = QKC.min(k - pc);
                    let quads = kc.div_ceil(KQ);
                    let slot = (ji * self.k_panels + pi) * self.slot;
                    let strip =
                        &mut self.buf[slot + (jr / qnr) * (quads * KQ * qnr)..][..quads * KQ * qnr];
                    let mut dst = 0;
                    for q in 0..quads {
                        for j in 0..qnr {
                            for kk in 0..KQ {
                                let p = q * KQ + kk;
                                strip[dst] = if j < cols && p < kc {
                                    if trans_b {
                                        b[(j0 + j) * k + pc + p]
                                    } else {
                                        b[(pc + p) * n + j0 + j]
                                    }
                                } else {
                                    0
                                };
                                dst += 1;
                            }
                        }
                    }
                }
            }
        }
        telemetry::count(telemetry::Counter::RowsRepacked, repacked_rows);
    }

    /// Writes a single code of the packed operand in place: stored row `row`
    /// (an output feature of a `[n, k]` code matrix packed with `trans_b`),
    /// reduction index `kidx`.
    ///
    /// The integer-domain counterpart of
    /// [`crate::gemm::PackedB::write_cell`]: the packed-domain injection
    /// primitive for structured sparse fault models, whose exact fired-cell
    /// lists (whole crossbar lines, stuck cells) land straight in the
    /// quad-interleaved panels in O(1) per code instead of re-packing every
    /// dirty row's full k extent through [`QPackedB::repack_rows`]. Writing
    /// the same value this way is bit-identical to a re-pack (packing is a
    /// pure permutation with zero padding).
    ///
    /// # Panics
    ///
    /// Panics when the operand was not packed with `trans_b`, or the indices
    /// are out of range.
    pub fn write_cell(&mut self, row: usize, kidx: usize, value: i8) {
        telemetry::count(telemetry::Counter::CellScatters, 1);
        assert!(self.trans_b, "write_cell addresses trans_b packed operands");
        assert!(row < self.n && kidx < self.k, "cell out of range");
        let qnr = q_kernel(self.tier).qnr;
        let ji = row / QNC;
        let jc = ji * QNC;
        let jr = ((row - jc) / qnr) * qnr;
        let pi = kidx / QKC;
        let pc = pi * QKC;
        let kc = QKC.min(self.k - pc);
        let quads = kc.div_ceil(KQ);
        let p = kidx - pc;
        let pos = (ji * self.k_panels + pi) * self.slot // panel slot
            + (jr / qnr) * (quads * KQ * qnr)           // qnr-strip within it
            + (p / KQ) * (qnr * KQ)                     // quad step within strip
            + (row - jc - jr) * KQ                      // row within quad block
            + p % KQ; // code within quad
        self.buf[pos] = value;
    }
}

/// Integer GEMM with a cached pre-packed B operand (see [`QPackedB`]): only
/// A is packed per call, blockwise into the caller's [`Scratch`]. Bit-exact
/// vs every other kernel variant.
///
/// # Panics
///
/// Panics when a slice length disagrees with the packed dimensions.
pub fn qgemm_prepacked_b(
    trans_a: bool,
    m: usize,
    a: &[i8],
    packed_b: &QPackedB,
    accumulate: bool,
    c: &mut [i32],
    scratch: &mut Scratch,
) {
    let _span = telemetry::span(telemetry::Phase::Gemm);
    let (k, n) = (packed_b.k, packed_b.n);
    assert_eq!(a.len(), m * k, "A must hold m*k codes");
    assert_eq!(c.len(), m * n, "C must hold m*n accumulators");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0);
        }
        return;
    }
    let kern = q_kernel(packed_b.tier);
    let qmr = kern.qmr;
    let kq_panel = QKC / KQ;
    let packed_a = uninit_slice_of(
        &mut scratch.packed_a_i8,
        QMC.next_multiple_of(qmr) * kq_panel * KQ,
    );
    for (ji, jc) in (0..n).step_by(QNC).enumerate() {
        let nc = QNC.min(n - jc);
        for (pi, pc) in (0..k).step_by(QKC).enumerate() {
            let kc = QKC.min(k - pc);
            let pb = packed_b.panel(ji, pi);
            let acc_block = accumulate || pc > 0;
            for ic in (0..m).step_by(QMC) {
                let mc = QMC.min(m - ic);
                pack_a(qmr, trans_a, a, m, k, ic, mc, pc, kc, packed_a);
                block_kernel(&kern, packed_a, pb, c, n, ic, mc, jc, nc, kc, acc_block);
            }
        }
    }
}

/// Integer GEMM with **both** operands pre-packed ([`QPackedA`] ×
/// [`QPackedB`]): per call, no packing happens at all. Bit-exact vs every
/// other kernel variant.
///
/// # Panics
///
/// Panics when the packed reduction dimensions disagree, the operands were
/// packed under different kernel tiers, or `c` has the wrong length.
pub fn qgemm_prepacked_ab(
    packed_a: &QPackedA,
    packed_b: &QPackedB,
    accumulate: bool,
    c: &mut [i32],
) {
    let _span = telemetry::span(telemetry::Phase::Gemm);
    let (m, k) = (packed_a.m, packed_a.k);
    let n = packed_b.n;
    assert_eq!(k, packed_b.k, "packed operands disagree on k");
    assert_eq!(
        packed_a.tier, packed_b.tier,
        "packed operands disagree on kernel tier"
    );
    assert_eq!(c.len(), m * n, "C must hold m*n accumulators");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0);
        }
        return;
    }
    let kern = q_kernel(packed_a.tier);
    let stride = qa_block_stride(kern.qmr);
    let m_blocks = m.div_ceil(QMC);
    for (ji, jc) in (0..n).step_by(QNC).enumerate() {
        let nc = QNC.min(n - jc);
        for (pi, pc) in (0..k).step_by(QKC).enumerate() {
            let kc = QKC.min(k - pc);
            let pb = packed_b.panel(ji, pi);
            let acc_block = accumulate || pc > 0;
            for (bi, ic) in (0..m).step_by(QMC).enumerate() {
                let mc = QMC.min(m - ic);
                let pa = &packed_a.buf[(pi * m_blocks + bi) * stride..];
                block_kernel(&kern, pa, pb, c, n, ic, mc, jc, nc, kc, acc_block);
            }
        }
    }
}

fn check_dims(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert_eq!(a.len(), m * k, "A must hold m*k codes");
    assert_eq!(b.len(), k * n, "B must hold k*n codes");
    assert_eq!(c.len(), m * n, "C must hold m*n accumulators");
    debug_assert!(k <= MAX_K, "k={k} exceeds the i32 accumulation bound");
    debug_assert!(
        a.iter().all(|&x| x != i8::MIN) && b.iter().all(|&x| x != i8::MIN),
        "codes must lie in [-127, 127] (the sign-split microkernels need |code| ≤ 127)"
    );
}

/// Packs the `mc × kc` block of `op(A)` starting at `(ic, pc)` into qmr-row
/// strips laid out quad-major (`packed[strip][quad][r][0..4]`), zero-padding
/// both the ragged final strip and the ragged final k-quad.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    qmr: usize,
    trans_a: bool,
    a: &[i8],
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    packed: &mut [i8],
) {
    let at = |i: usize, p: usize| -> i8 {
        if trans_a {
            a[p * m + i]
        } else {
            a[i * k + p]
        }
    };
    let quads = kc.div_ceil(KQ);
    let mut dst = 0;
    for ir in (0..mc).step_by(qmr) {
        let rows = qmr.min(mc - ir);
        for q in 0..quads {
            for r in 0..qmr {
                for kk in 0..KQ {
                    let p = q * KQ + kk;
                    packed[dst] = if r < rows && p < kc {
                        at(ic + ir + r, pc + p)
                    } else {
                        0
                    };
                    dst += 1;
                }
            }
        }
    }
}

/// Packs the `kc × nc` block of `op(B)` starting at `(pc, jc)` into
/// qnr-column strips laid out quad-major (`packed[strip][quad][j][0..4]`),
/// zero-padded like [`pack_a`].
#[allow(clippy::too_many_arguments)]
fn pack_b(
    qnr: usize,
    trans_b: bool,
    b: &[i8],
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    packed: &mut [i8],
) {
    let bt = |p: usize, j: usize| -> i8 {
        if trans_b {
            b[j * k + p]
        } else {
            b[p * n + j]
        }
    };
    let quads = kc.div_ceil(KQ);
    let mut dst = 0;
    for jr in (0..nc).step_by(qnr) {
        let cols = qnr.min(nc - jr);
        for q in 0..quads {
            for j in 0..qnr {
                for kk in 0..KQ {
                    let p = q * KQ + kk;
                    packed[dst] = if j < cols && p < kc {
                        bt(pc + p, jc + jr + j)
                    } else {
                        0
                    };
                    dst += 1;
                }
            }
        }
    }
}

/// Runs the microkernel over every `qmr × qnr` tile of an `mc × nc` block,
/// writing into `c` (row-major with leading dimension `n`) at row offset
/// `ic` and column offset `jc`.
#[allow(clippy::too_many_arguments)]
fn block_kernel(
    kern: &QKernel,
    packed_a: &[i8],
    packed_b: &[i8],
    c: &mut [i32],
    n: usize,
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    kc: usize,
    accumulate: bool,
) {
    let (qmr, qnr) = (kern.qmr, kern.qnr);
    let quads = kc.div_ceil(KQ);
    let mut acc = [0i32; QMAX_TILE];
    for jr in (0..nc).step_by(qnr) {
        let cols = qnr.min(nc - jr);
        let pb = &packed_b[(jr / qnr) * (quads * KQ * qnr)..][..quads * KQ * qnr];
        for ir in (0..mc).step_by(qmr) {
            let rows = qmr.min(mc - ir);
            let pa = &packed_a[(ir / qmr) * (quads * KQ * qmr)..][..quads * KQ * qmr];
            // SAFETY: kernels come from `q_kernel` with a tier the host
            // supports ([`dispatch::active`]/[`dispatch::force`] guarantee
            // that), and the slices cover the asserted extents.
            unsafe { (kern.micro)(quads, pa, pb, &mut acc[..qmr * qnr]) };
            store_tile(
                &acc[..qmr * qnr],
                qnr,
                c,
                n,
                ic + ir,
                jc + jr,
                rows,
                cols,
                accumulate,
            );
        }
    }
}

/// Portable scalar variant of the quantized microkernel (identical packed
/// quad layout and — integers being exact — identical results to the SIMD
/// tiers).
///
/// # Safety
///
/// Contains no unsafe operations of its own; it is `unsafe fn` only to
/// match the [`MicrokernelI8`] signature shared with the SIMD tiers.
/// Callable with any arguments (bounds are asserted).
unsafe fn microkernel_portable(quads: usize, pa: &[i8], pb: &[i8], acc_out: &mut [i32]) {
    const QMR: usize = 4;
    const QNR: usize = 16;
    assert!(pa.len() >= quads * KQ * QMR && pb.len() >= quads * KQ * QNR);
    assert!(acc_out.len() >= QMR * QNR);
    let mut acc = [[0i32; QNR]; QMR];
    for q in 0..quads {
        let aq = &pa[q * QMR * KQ..][..QMR * KQ];
        let bq = &pb[q * QNR * KQ..][..QNR * KQ];
        for r in 0..QMR {
            let ar = &aq[r * KQ..][..KQ];
            for j in 0..QNR {
                let bj = &bq[j * KQ..][..KQ];
                let mut dot = 0i32;
                for kk in 0..KQ {
                    dot += i32::from(ar[kk]) * i32::from(bj[kk]);
                }
                acc[r][j] += dot;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        acc_out[r * QNR..(r + 1) * QNR].copy_from_slice(row);
    }
}

/// The register-resident 4×16 AVX2 i32 tile product over one packed k-panel,
/// consuming four codes per k-step: per k-quad, two 256-bit loads of packed
/// B (16 columns × 4 codes) and, per row, one 4-byte broadcast of packed A.
/// The signed×signed product is computed as `maddubs(|a|, sign(b, a))`
/// (never saturates for codes in `[-127, 127]`), widened to i32 with
/// `madd(…, 1)` and accumulated.
///
/// # Safety
///
/// The host must support AVX2 (guaranteed when the kernel is reached through
/// [`q_kernel`] with a detected/forced tier).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn microkernel_avx2(quads: usize, pa: &[i8], pb: &[i8], acc_out: &mut [i32]) {
    use core::arch::x86_64::{
        _mm256_abs_epi8, _mm256_add_epi32, _mm256_loadu_si256, _mm256_madd_epi16,
        _mm256_maddubs_epi16, _mm256_set1_epi16, _mm256_set1_epi32, _mm256_setzero_si256,
        _mm256_sign_epi8, _mm256_storeu_si256,
    };
    const QMR: usize = 4;
    const QNR: usize = 16;
    assert!(pa.len() >= quads * KQ * QMR && pb.len() >= quads * KQ * QNR);
    assert!(acc_out.len() >= QMR * QNR);
    // SAFETY: the asserts above bound every pointer offset used below
    // (`pa`/`pb` hold full `quads`-deep packed quad panels, `acc_out` holds
    // the full QMR×QNR tile), and the fn-level contract guarantees the host
    // supports the SIMD features these intrinsics require.
    unsafe {
        let ones = _mm256_set1_epi16(1);
        let mut acc = [_mm256_setzero_si256(); 2 * QMR];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..quads {
            let b0 = _mm256_loadu_si256(bp.cast());
            let b1 = _mm256_loadu_si256(bp.add(32).cast());
            for r in 0..QMR {
                // Broadcast the row's 4-code quad across all lanes.
                let aq = _mm256_set1_epi32(ap.add(r * KQ).cast::<i32>().read_unaligned());
                let abs_a = _mm256_abs_epi8(aq);
                let sb0 = _mm256_sign_epi8(b0, aq);
                let sb1 = _mm256_sign_epi8(b1, aq);
                // 16 i16 pair sums → 8 i32 quad sums per vector (one per column).
                let p0 = _mm256_madd_epi16(_mm256_maddubs_epi16(abs_a, sb0), ones);
                let p1 = _mm256_madd_epi16(_mm256_maddubs_epi16(abs_a, sb1), ones);
                acc[2 * r] = _mm256_add_epi32(acc[2 * r], p0);
                acc[2 * r + 1] = _mm256_add_epi32(acc[2 * r + 1], p1);
            }
            ap = ap.add(QMR * KQ);
            bp = bp.add(QNR * KQ);
        }
        for r in 0..QMR {
            _mm256_storeu_si256(acc_out.as_mut_ptr().add(r * QNR).cast(), acc[2 * r]);
            _mm256_storeu_si256(acc_out.as_mut_ptr().add(r * QNR + 8).cast(), acc[2 * r + 1]);
        }
    }
}

/// The register-resident 8×32 AVX-512 VNNI i32 tile product over one packed
/// k-panel: per k-quad, two 512-bit loads of packed B (32 columns × 4 codes)
/// and, per row, one 4-byte broadcast of packed A. `vpdpbusd` wants an
/// unsigned left operand, so the sign-split trick reappears in AVX-512 form:
/// there is no `vpsignb`, so `sign(b, a)` is emulated with a per-byte sign
/// mask of `a` (`vpmovb2m`) driving a masked subtract-from-zero of `b`. The
/// single `vpdpbusd` then replaces AVX2's `maddubs` + `madd` widening pair,
/// and its 4-product sums (≤ `4 · 127² = 64516`) accumulate into i32 lanes
/// with no intermediate saturation — exact, hence bit-identical to every
/// other tier.
///
/// # Safety
///
/// The host must support AVX-512F/BW/VNNI (guaranteed when the kernel is
/// reached through [`q_kernel`] with a detected/forced tier).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx512vnni")]
unsafe fn microkernel_vnni(quads: usize, pa: &[i8], pb: &[i8], acc_out: &mut [i32]) {
    use core::arch::x86_64::{
        _mm512_abs_epi8, _mm512_dpbusd_epi32, _mm512_loadu_si512, _mm512_mask_sub_epi8,
        _mm512_movepi8_mask, _mm512_set1_epi32, _mm512_setzero_si512, _mm512_storeu_si512,
    };
    const QMR: usize = 8;
    const QNR: usize = 32;
    assert!(pa.len() >= quads * KQ * QMR && pb.len() >= quads * KQ * QNR);
    assert!(acc_out.len() >= QMR * QNR);
    // SAFETY: the asserts above bound every pointer offset used below
    // (`pa`/`pb` hold full `quads`-deep packed quad panels, `acc_out` holds
    // the full QMR×QNR tile), and the fn-level contract guarantees the host
    // supports the SIMD features these intrinsics require.
    unsafe {
        let zero = _mm512_setzero_si512();
        let mut acc = [_mm512_setzero_si512(); 2 * QMR];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..quads {
            let b0 = _mm512_loadu_si512(bp.cast());
            let b1 = _mm512_loadu_si512(bp.add(64).cast());
            for r in 0..QMR {
                let aq = _mm512_set1_epi32(ap.add(r * KQ).cast::<i32>().read_unaligned());
                let abs_a = _mm512_abs_epi8(aq);
                // Negate the b bytes wherever the matching a byte is negative
                // (a == 0 contributes 0 via |a| regardless).
                let neg = _mm512_movepi8_mask(aq);
                let sb0 = _mm512_mask_sub_epi8(b0, neg, zero, b0);
                let sb1 = _mm512_mask_sub_epi8(b1, neg, zero, b1);
                acc[2 * r] = _mm512_dpbusd_epi32(acc[2 * r], abs_a, sb0);
                acc[2 * r + 1] = _mm512_dpbusd_epi32(acc[2 * r + 1], abs_a, sb1);
            }
            ap = ap.add(QMR * KQ);
            bp = bp.add(QNR * KQ);
        }
        for r in 0..QMR {
            _mm512_storeu_si512(acc_out.as_mut_ptr().add(r * QNR).cast(), acc[2 * r]);
            _mm512_storeu_si512(
                acc_out.as_mut_ptr().add(r * QNR + 16).cast(),
                acc[2 * r + 1],
            );
        }
    }
}

/// Writes one accumulator tile (row-major, leading dimension `qnr`) back to
/// C, overwriting or accumulating.
#[allow(clippy::too_many_arguments)]
#[inline]
fn store_tile(
    acc: &[i32],
    qnr: usize,
    c: &mut [i32],
    n: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    accumulate: bool,
) {
    for r in 0..rows {
        let acc_row = &acc[r * qnr..][..cols];
        let out = &mut c[(row0 + r) * n + col0..][..cols];
        if accumulate {
            for (o, &v) in out.iter_mut().zip(acc_row.iter()) {
                *o += v;
            }
        } else {
            for (o, &v) in out.iter_mut().zip(acc_row.iter()) {
                *o = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::reference;
    use crate::rng::Rng;
    use proptest::prelude::*;

    fn random_codes(len: usize, rng: &mut Rng) -> Vec<i8> {
        (0..len)
            .map(|_| (rng.normal(0.0, 48.0).round().clamp(-127.0, 127.0)) as i8)
            .collect()
    }

    #[test]
    fn matches_integer_oracle_over_odd_shapes() {
        let mut rng = Rng::seed_from(7);
        // Awkward shapes: non-multiples of any tier's qmr/qnr or of KQ/QKC,
        // GEMV-like m=1 and n=1, k spanning several QKC panels, tiny
        // everything.
        let shapes = [
            (1usize, 1usize, 1usize),
            (1, 17, 300),
            (5, 1, 3),
            (3, 7, 2),
            (4, 16, 256),
            (13, 29, 31),
            (33, 65, 17),
            (130, 9, 270),
            (2, 300, 5),
            (7, 19, 515),
        ];
        for &(m, n, k) in &shapes {
            for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
                let a = random_codes(m * k, &mut rng);
                let b = random_codes(k * n, &mut rng);
                let expected = reference::qmatmul_i8(ta, tb, m, n, k, &a, &b);
                let mut got = vec![0i32; m * n];
                qgemm(ta, tb, m, n, k, &a, &b, false, &mut got);
                assert_eq!(got, expected, "m={m} n={n} k={k} ta={ta} tb={tb}");
            }
        }
    }

    #[test]
    fn accumulate_adds_to_existing_contents() {
        let mut rng = Rng::seed_from(8);
        let (m, n, k) = (9, 11, 23);
        let a = random_codes(m * k, &mut rng);
        let b = random_codes(k * n, &mut rng);
        let product = reference::qmatmul_i8(false, false, m, n, k, &a, &b);
        let mut c: Vec<i32> = (0..m * n).map(|i| i as i32 - 40).collect();
        let expected: Vec<i32> = c.iter().zip(&product).map(|(x, p)| x + p).collect();
        qgemm(false, false, m, n, k, &a, &b, true, &mut c);
        assert_eq!(c, expected);
    }

    #[test]
    fn empty_dims_are_handled() {
        qgemm(false, false, 0, 4, 3, &[], &[0i8; 12], false, &mut []);
        qgemm(false, false, 4, 0, 3, &[0i8; 12], &[], false, &mut []);
        // k == 0: overwrite zeroes C, accumulate leaves it alone.
        let mut c = vec![5i32; 6];
        qgemm(false, false, 2, 3, 0, &[], &[], true, &mut c);
        assert_eq!(c, vec![5; 6]);
        qgemm(false, false, 2, 3, 0, &[], &[], false, &mut c);
        assert_eq!(c, vec![0; 6]);
    }

    #[test]
    fn extreme_codes_do_not_saturate() {
        // ±127 everywhere maximizes every intermediate the SIMD kernels
        // compute; any maddubs/dpbusd saturation would show up immediately.
        let (m, n, k) = (5, 33, 130);
        let a = vec![127i8; m * k];
        let b: Vec<i8> = (0..k * n)
            .map(|i| if i % 2 == 0 { 127 } else { -127 })
            .collect();
        let expected = reference::qmatmul_i8(false, false, m, n, k, &a, &b);
        let mut got = vec![0i32; m * n];
        qgemm(false, false, m, n, k, &a, &b, false, &mut got);
        assert_eq!(got, expected);
    }

    #[test]
    fn parallel_is_bit_exact_for_every_worker_count() {
        let mut rng = Rng::seed_from(11);
        let (m, n, k) = (2 * QMC + 3, QNC + 5, QKC + 7);
        let a = random_codes(m * k, &mut rng);
        let b = random_codes(k * n, &mut rng);
        let mut seq = vec![0i32; m * n];
        LOCAL_SCRATCH.with(|s| {
            qgemm_with_scratch(
                false,
                false,
                m,
                n,
                k,
                &a,
                &b,
                false,
                &mut seq,
                &mut s.borrow_mut(),
            );
        });
        let kern = q_kernel(dispatch::active());
        for workers in [2usize, 3, 5, 8] {
            let mut par = vec![0i32; m * n];
            qgemm_parallel(
                &kern, false, false, m, n, k, &a, &b, false, &mut par, workers,
            );
            assert_eq!(seq, par, "workers={workers}");
        }
    }

    #[test]
    fn prepacked_is_bit_exact_and_reusable() {
        let mut rng = Rng::seed_from(12);
        let shapes = [
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (13, 29, 31),
            (QMC + 3, QNC + 5, QKC + 7),
            (64, 256, 512),
        ];
        let mut packed = QPackedA::new();
        let mut packed_b_buf = Vec::new();
        for &(m, n, k) in &shapes {
            for &trans_a in &[false, true] {
                for &trans_b in &[false, true] {
                    let a = random_codes(m * k, &mut rng);
                    packed.pack(trans_a, &a, m, k);
                    assert_eq!((packed.m(), packed.k()), (m, k));
                    assert_eq!(packed.tier(), dispatch::active());
                    // One packed A against several B realizations — the
                    // batched quantized Monte-Carlo access pattern.
                    for _ in 0..2 {
                        let b = random_codes(k * n, &mut rng);
                        let expected = reference::qmatmul_i8(trans_a, trans_b, m, n, k, &a, &b);
                        let mut got = vec![0i32; m * n];
                        qgemm_prepacked(
                            &packed,
                            trans_b,
                            n,
                            &b,
                            false,
                            &mut got,
                            &mut packed_b_buf,
                        );
                        assert_eq!(got, expected, "m={m} n={n} k={k} ta={trans_a} tb={trans_b}");
                        // Accumulate path.
                        let mut acc = expected.clone();
                        qgemm_prepacked(&packed, trans_b, n, &b, true, &mut acc, &mut packed_b_buf);
                        let doubled: Vec<i32> = expected.iter().map(|&x| 2 * x).collect();
                        assert_eq!(acc, doubled);
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_alloc_free_after_warmup() {
        let mut rng = Rng::seed_from(9);
        let (m, n, k) = (64, 32, 48);
        let a = random_codes(m * k, &mut rng);
        let b = random_codes(k * n, &mut rng);
        let mut c = vec![0i32; m * n];
        let mut scratch = Scratch::new();
        qgemm_with_scratch(false, false, m, n, k, &a, &b, false, &mut c, &mut scratch);
        let cap = scratch.capacity();
        for _ in 0..3 {
            qgemm_with_scratch(false, false, m, n, k, &a, &b, false, &mut c, &mut scratch);
        }
        assert_eq!(
            scratch.capacity(),
            cap,
            "repeat calls must not grow scratch"
        );
    }

    #[test]
    fn prepacked_b_is_bit_exact_and_repacks_dirty_rows() {
        let mut rng = Rng::seed_from(21);
        let mut scratch = Scratch::new();
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (5, 19, 300),
            (33, QNC + 5, QKC + 7),
        ] {
            let a = random_codes(m * k, &mut rng);
            let b = random_codes(k * n, &mut rng);
            // Weight-style layout [n, k] with trans_b.
            let expected = reference::qmatmul_i8(false, true, m, n, k, &a, &b);
            let mut packed = QPackedB::new();
            packed.pack(true, &b, k, n);
            assert_eq!((packed.k(), packed.n()), (k, n));
            assert_eq!(packed.tier(), dispatch::active());
            let mut got = vec![0i32; m * n];
            qgemm_prepacked_b(false, m, &a, &packed, false, &mut got, &mut scratch);
            assert_eq!(got, expected, "qgemm_prepacked_b m={m} n={n} k={k}");
            let mut pa = QPackedA::new();
            pa.pack(false, &a, m, k);
            let mut got_ab = vec![0i32; m * n];
            qgemm_prepacked_ab(&pa, &packed, false, &mut got_ab);
            assert_eq!(got_ab, expected, "qgemm_prepacked_ab m={m} n={n} k={k}");

            // Perturb a few weight rows, repack only those, and check the
            // cached operand behaves like a from-scratch pack.
            let mut faulty = b.clone();
            let mut dirty = DirtyRows::new(n);
            for row in [0usize, n / 2, n - 1] {
                for c in &mut faulty[row * k..(row + 1) * k] {
                    *c = c.wrapping_add(3).clamp(-127, 127);
                }
                dirty.mark(row);
            }
            packed.repack_rows(&faulty, &dirty, 0);
            let expected = reference::qmatmul_i8(false, true, m, n, k, &a, &faulty);
            qgemm_prepacked_b(false, m, &a, &packed, false, &mut got, &mut scratch);
            assert_eq!(got, expected, "dirty repack m={m} n={n} k={k}");
            // Reverting the rows (union-marked) restores the clean product.
            packed.repack_rows(&b, &dirty, 0);
            let expected = reference::qmatmul_i8(false, true, m, n, k, &a, &b);
            qgemm_prepacked_b(false, m, &a, &packed, false, &mut got, &mut scratch);
            assert_eq!(got, expected, "revert repack m={m} n={n} k={k}");
        }
    }

    #[test]
    fn write_cell_is_bit_identical_to_repack() {
        // Scattering individual codes through `write_cell` must leave the
        // packed operand exactly as a from-scratch pack of the same matrix —
        // across quad, strip and panel boundaries.
        let mut rng = Rng::seed_from(33);
        let mut scratch = Scratch::new();
        let qnr = q_kernel(dispatch::active()).qnr;
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (4, 7, 9),
            (5, qnr + 3, KQ * 5 + 2),
            (9, QNC + 5, QKC + 7),
        ] {
            let a = random_codes(m * k, &mut rng);
            let b = random_codes(k * n, &mut rng);
            let mut faulty = b.clone();
            let mut packed = QPackedB::new();
            packed.pack(true, &b, k, n);
            // Touch a spread of cells, including the four corners.
            let mut cells = vec![(0usize, 0usize), (n - 1, 0), (0, k - 1), (n - 1, k - 1)];
            for i in 0..(n * k).min(37) {
                cells.push(((i * 7) % n, (i * 13) % k));
            }
            for &(row, kidx) in &cells {
                let v = faulty[row * k + kidx].wrapping_add(5).clamp(-127, 127);
                faulty[row * k + kidx] = v;
                packed.write_cell(row, kidx, v);
            }
            let expected = reference::qmatmul_i8(false, true, m, n, k, &a, &faulty);
            let mut got = vec![0i32; m * n];
            qgemm_prepacked_b(false, m, &a, &packed, false, &mut got, &mut scratch);
            assert_eq!(got, expected, "write_cell scatter m={m} n={n} k={k}");
        }
    }

    proptest! {
        #[test]
        fn prop_qgemm_matches_oracle(
            m in 1usize..24,
            k in 1usize..48,
            n in 1usize..24,
            seed in 0u32..1000,
        ) {
            let mut rng = Rng::seed_from(seed as u64);
            let a = random_codes(m * k, &mut rng);
            let b = random_codes(k * n, &mut rng);
            let expected = reference::qmatmul_i8(false, false, m, n, k, &a, &b);
            let mut got = vec![0i32; m * n];
            qgemm(false, false, m, n, k, &a, &b, false, &mut got);
            prop_assert_eq!(got, expected);
        }
    }
}
