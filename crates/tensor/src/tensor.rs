//! The owned, contiguous, row-major `f32` tensor type.

use crate::error::TensorError;
use crate::rng::Rng;
use crate::shape::Shape;
use crate::Result;
use serde::{Deserialize, Serialize};

/// An owned N-dimensional array of `f32` values stored contiguously in
/// row-major order.
///
/// `Tensor` intentionally has no view/stride machinery: every tensor owns its
/// buffer and is contiguous, which keeps the layer implementations in
/// `invnorm-nn` simple to reason about (important for hand-written backward
/// passes) at the cost of some extra copies.
///
/// # Example
///
/// ```
/// use invnorm_tensor::Tensor;
///
/// # fn main() -> Result<(), invnorm_tensor::TensorError> {
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// let doubled = x.scale(2.0);
/// assert_eq!(doubled.get(&[1, 2])?, 12.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ----------------------------------------------------------------- ctors

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when `data.len()` does not
    /// equal the number of elements implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Self { data, shape })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self {
            data: data.to_vec(),
            shape: Shape::new(&[data.len()]),
        }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            data: vec![value],
            shape: Shape::new(&[]),
        }
    }

    /// Creates a tensor with elements drawn from `N(mean, std)`.
    pub fn randn(dims: &[usize], mean: f32, std: f32, rng: &mut Rng) -> Self {
        let shape = Shape::new(dims);
        let data = rng.normal_vec(shape.numel(), mean, std);
        Self { data, shape }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = Shape::new(dims);
        let data = rng.uniform_vec(shape.numel(), lo, hi);
        Self { data, shape }
    }

    /// Creates a rank-1 tensor containing `n` evenly spaced values from `start`
    /// to `end` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n > 0, "linspace needs at least one point");
        if n == 1 {
            return Self::from_slice(&[start]);
        }
        let step = (end - start) / (n - 1) as f32;
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Self {
            data,
            shape: Shape::new(&[n]),
        }
    }

    // ------------------------------------------------------------- accessors

    /// The underlying flat buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of bounds or has the wrong rank.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        let off = self.shape.offset(index)?;
        Ok(self.data[off])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    // --------------------------------------------------------------- reshape

    /// Returns a copy of this tensor with a new shape containing the same
    /// number of elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.numel() != self.data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// Flattens to a rank-1 tensor.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            data: self.data.clone(),
            shape: Shape::new(&[self.data.len()]),
        }
    }

    // ---------------------------------------------------------- element-wise

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise division.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Accumulates `alpha * other` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `factor`, returning a new tensor.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Adds `offset` to every element, returning a new tensor.
    pub fn shift(&self, offset: f32) -> Tensor {
        self.map(|x| x + offset)
    }

    /// Clamps every element to `[lo, hi]`, returning a new tensor.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    // ------------------------------------------------------------ reductions

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for the empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Population variance of all elements (0 for the empty tensor).
    pub fn variance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.data.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / self.data.len() as f32
    }

    /// Standard deviation of all elements.
    pub fn std(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Minimum element (`+inf` for the empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`-inf` for the empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element in the flat buffer (0 for the empty
    /// tensor).
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        let mut best_val = f32::NEG_INFINITY;
        for (i, &x) in self.data.iter().enumerate() {
            if x > best_val {
                best_val = x;
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    // -------------------------------------------------------------- batching

    /// Extracts the `i`-th slice along the first dimension as a tensor of rank
    /// `rank - 1`.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors or if `i` is out of range.
    pub fn index_axis0(&self, i: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let n = self.dims()[0];
        if i >= n {
            return Err(TensorError::AxisOutOfRange {
                axis: 0,
                rank: self.rank(),
            });
        }
        let inner: usize = self.dims()[1..].iter().product();
        let start = i * inner;
        Ok(Tensor {
            data: self.data[start..start + inner].to_vec(),
            shape: Shape::new(&self.dims()[1..]),
        })
    }

    /// Stacks rank-`r` tensors with identical shapes into a rank-`r+1` tensor
    /// along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns an error if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("cannot stack zero tensors".into()))?;
        let mut data = Vec::with_capacity(first.numel() * items.len());
        for t in items {
            if !t.shape.same_as(&first.shape) {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.dims().to_vec(),
                    rhs: t.dims().to_vec(),
                });
            }
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Concatenates tensors along the first axis. All other dimensions must
    /// match.
    ///
    /// # Errors
    ///
    /// Returns an error if `items` is empty or trailing dimensions differ.
    pub fn concat_axis0(items: &[Tensor]) -> Result<Tensor> {
        let first = items
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("cannot concat zero tensors".into()))?;
        let tail = &first.dims()[1..];
        let mut total = 0usize;
        for t in items {
            if t.rank() != first.rank() || &t.dims()[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.dims().to_vec(),
                    rhs: t.dims().to_vec(),
                });
            }
            total += t.dims()[0];
        }
        let mut data = Vec::with_capacity(total * tail.iter().product::<usize>());
        for t in items {
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![total];
        dims.extend_from_slice(tail);
        Tensor::from_vec(data, &dims)
    }

    // ----------------------------------------------------------------- tests

    /// Returns `true` if every element differs from `other` by at most `tol`.
    ///
    /// Used heavily by the test suites; shape differences return `false`
    /// rather than erroring so this can sit directly inside `assert!`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape.same_as(&other.shape)
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(
            f,
            "[{}{}]",
            preview.join(", "),
            if self.numel() > 8 { ", …" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.rank(), 2);
        assert!(t.data().iter().all(|&x| x == 0.0));

        let t = Tensor::full(&[4], 2.5);
        assert!(t.data().iter().all(|&x| x == 2.5));

        let t = Tensor::from_vec(vec![1.0, 2.0], &[3]);
        assert!(matches!(t, Err(TensorError::ShapeDataMismatch { .. })));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 2, 2]);
        t.set(&[1, 0, 1], 7.0).unwrap();
        assert_eq!(t.get(&[1, 0, 1]).unwrap(), 7.0);
        assert_eq!(t.get(&[0, 0, 0]).unwrap(), 0.0);
        assert!(t.get(&[2, 0, 0]).is_err());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().data(), &[4.0, 2.5, 2.0]);

        let c = Tensor::zeros(&[4]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn scale_shift_clamp() {
        let a = Tensor::from_vec(vec![-2.0, 0.5, 3.0], &[3]).unwrap();
        assert_eq!(a.scale(2.0).data(), &[-4.0, 1.0, 6.0]);
        assert_eq!(a.shift(1.0).data(), &[-1.0, 1.5, 4.0]);
        assert_eq!(a.clamp(-1.0, 1.0).data(), &[-1.0, 0.5, 1.0]);
        assert_eq!(a.abs().data(), &[2.0, 0.5, 3.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.add_scaled(&g, -0.5).unwrap();
        assert_eq!(a.data(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.variance() - 1.25).abs() < 1e-6);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.argmax(), 3);
        assert_eq!(a.sq_norm(), 30.0);
    }

    #[test]
    fn reshape_and_flatten() {
        let a = Tensor::linspace(0.0, 5.0, 6);
        let b = a.reshape(&[2, 3]).unwrap();
        assert_eq!(b.dims(), &[2, 3]);
        assert_eq!(b.flatten().dims(), &[6]);
        assert!(a.reshape(&[4]).is_err());
    }

    #[test]
    fn linspace_endpoints() {
        let a = Tensor::linspace(-1.0, 1.0, 5);
        assert_eq!(a.data(), &[-1.0, -0.5, 0.0, 0.5, 1.0]);
        let single = Tensor::linspace(3.0, 9.0, 1);
        assert_eq!(single.data(), &[3.0]);
    }

    #[test]
    fn index_axis0_extracts_rows() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let row1 = a.index_axis0(1).unwrap();
        assert_eq!(row1.dims(), &[4]);
        assert_eq!(row1.data(), &[4.0, 5.0, 6.0, 7.0]);
        assert!(a.index_axis0(3).is_err());
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.dims(), &[2, 2, 2]);
        let c = Tensor::concat_axis0(&[a, b]).unwrap();
        assert_eq!(c.dims(), &[4, 2]);
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn random_constructors_are_seeded() {
        let mut r1 = Rng::seed_from(5);
        let mut r2 = Rng::seed_from(5);
        let a = Tensor::randn(&[10], 0.0, 1.0, &mut r1);
        let b = Tensor::randn(&[10], 0.0, 1.0, &mut r2);
        assert!(a.approx_eq(&b, 0.0));
        let u = Tensor::rand_uniform(&[100], -1.0, 1.0, &mut r1);
        assert!(u.min() >= -1.0 && u.max() < 1.0);
    }

    #[test]
    fn approx_eq_and_non_finite() {
        let a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 1.0001, 0.9999], &[3]).unwrap();
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-6));
        let mut c = Tensor::ones(&[2]);
        assert!(!c.has_non_finite());
        c.data_mut()[0] = f32::NAN;
        assert!(c.has_non_finite());
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::linspace(0.0, 1.0, 20);
        let s = format!("{t}");
        assert!(s.contains("Tensor"));
        assert!(s.contains('…'));
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::linspace(0.0, 1.0, 4).reshape(&[2, 2]).unwrap();
        let json = serde_json_like(&t);
        assert!(json.contains("data"));
    }

    // serde_json is not a dependency; just make sure Serialize is derivable by
    // serializing into a simple custom serializer (here: debug formatting of
    // the serde-ready struct stands in for a full round-trip).
    fn serde_json_like(t: &Tensor) -> String {
        format!("data={:?} shape={:?}", t.data(), t.dims())
    }
}
