//! Pooling kernels (max / average / global average) with backward support.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Geometry of a 2-D pooling operation (square window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool2dSpec {
    /// Pooling window edge length.
    pub kernel: usize,
    /// Stride (commonly equal to `kernel`).
    pub stride: usize,
}

impl Pool2dSpec {
    /// Creates a pooling spec with `stride == kernel` (non-overlapping).
    pub fn new(kernel: usize) -> Self {
        Self {
            kernel,
            stride: kernel,
        }
    }

    /// Output spatial size for an `(h, w)` input.
    ///
    /// # Errors
    ///
    /// Returns an error if the window does not fit or stride is zero.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 || self.kernel == 0 {
            return Err(TensorError::InvalidArgument(
                "pool kernel and stride must be > 0".into(),
            ));
        }
        if h < self.kernel || w < self.kernel {
            return Err(TensorError::InvalidArgument(format!(
                "pool window {} larger than input {h}x{w}",
                self.kernel
            )));
        }
        Ok((
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        ))
    }
}

/// Output of a max-pool forward pass; `argmax` stores, for every output
/// element, the flat input index that produced it (needed for backward).
#[derive(Debug, Clone)]
pub struct MaxPool2dForward {
    /// Pooled output `[N, C, OH, OW]`.
    pub output: Tensor,
    /// Flat input index of each maximum.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling over an `[N, C, H, W]` tensor.
///
/// # Errors
///
/// Returns an error when the input is not rank-4 or the window does not fit.
pub fn maxpool2d_forward(input: &Tensor, spec: &Pool2dSpec) -> Result<MaxPool2dForward> {
    let (n, c, h, w) = as_nchw(input)?;
    let (oh, ow) = spec.output_hw(h, w)?;
    let data = input.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut argmax = vec![0usize; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..spec.kernel {
                        for kx in 0..spec.kernel {
                            let iy = oy * spec.stride + ky;
                            let ix = ox * spec.stride + kx;
                            let idx = ((ni * c + ci) * h + iy) * w + ix;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = ((ni * c + ci) * oh + oy) * ow + ox;
                    out[oidx] = best;
                    argmax[oidx] = best_idx;
                }
            }
        }
    }
    Ok(MaxPool2dForward {
        output: Tensor::from_vec(out, &[n, c, oh, ow])?,
        argmax,
    })
}

/// Evaluation-only [`maxpool2d_forward`] over a raw NCHW slice into a
/// caller-provided buffer — the zero-alloc entry point compiled plans use.
/// No argmax is recorded (plans are inference-only); the max-selection order
/// is identical to [`maxpool2d_forward`], so results are bit-identical.
///
/// # Errors
///
/// Returns an error when `dims` is not rank-4, the window does not fit, or a
/// buffer length is wrong.
pub fn maxpool2d_eval_into(
    input: &[f32],
    dims: &[usize],
    spec: &Pool2dSpec,
    out: &mut [f32],
) -> Result<()> {
    let (n, c, h, w) = dims_nchw(dims)?;
    let (oh, ow) = spec.output_hw(h, w)?;
    if input.len() != n * c * h * w || out.len() != n * c * oh * ow {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![n * c * h * w, n * c * oh * ow],
            rhs: vec![input.len(), out.len()],
        });
    }
    for nc in 0..n * c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..spec.kernel {
                    for kx in 0..spec.kernel {
                        let iy = oy * spec.stride + ky;
                        let ix = ox * spec.stride + kx;
                        let v = input[(nc * h + iy) * w + ix];
                        if v > best {
                            best = v;
                        }
                    }
                }
                out[(nc * oh + oy) * ow + ox] = best;
            }
        }
    }
    Ok(())
}

/// [`avgpool2d_forward`] over a raw NCHW slice into a caller-provided buffer
/// (same accumulation order — bit-identical results).
///
/// # Errors
///
/// Returns an error when `dims` is not rank-4, the window does not fit, or a
/// buffer length is wrong.
pub fn avgpool2d_into(
    input: &[f32],
    dims: &[usize],
    spec: &Pool2dSpec,
    out: &mut [f32],
) -> Result<()> {
    let (n, c, h, w) = dims_nchw(dims)?;
    let (oh, ow) = spec.output_hw(h, w)?;
    if input.len() != n * c * h * w || out.len() != n * c * oh * ow {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![n * c * h * w, n * c * oh * ow],
            rhs: vec![input.len(), out.len()],
        });
    }
    let norm = (spec.kernel * spec.kernel) as f32;
    for nc in 0..n * c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..spec.kernel {
                    for kx in 0..spec.kernel {
                        let iy = oy * spec.stride + ky;
                        let ix = ox * spec.stride + kx;
                        acc += input[(nc * h + iy) * w + ix];
                    }
                }
                out[(nc * oh + oy) * ow + ox] = acc / norm;
            }
        }
    }
    Ok(())
}

/// [`global_avgpool2d`] over a raw NCHW slice into a caller-provided `[N*C]`
/// buffer (same summation order — bit-identical results). 1-D callers pass
/// `[N, C, 1, L]`.
///
/// # Errors
///
/// Returns an error when `dims` is not rank-4 or a buffer length is wrong.
pub fn global_avgpool2d_into(input: &[f32], dims: &[usize], out: &mut [f32]) -> Result<()> {
    let (n, c, h, w) = dims_nchw(dims)?;
    if input.len() != n * c * h * w || out.len() != n * c {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![n * c * h * w, n * c],
            rhs: vec![input.len(), out.len()],
        });
    }
    let norm = (h * w) as f32;
    for nc in 0..n * c {
        let base = nc * h * w;
        out[nc] = input[base..base + h * w].iter().sum::<f32>() / norm;
    }
    Ok(())
}

fn dims_nchw(dims: &[usize]) -> Result<(usize, usize, usize, usize)> {
    if dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: dims.len(),
        });
    }
    Ok((dims[0], dims[1], dims[2], dims[3]))
}

/// Backward pass for max pooling: routes each output gradient back to the
/// input position that won the max.
///
/// # Errors
///
/// Returns an error when `grad_output` does not match the cached argmax size.
pub fn maxpool2d_backward(
    grad_output: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    if grad_output.numel() != argmax.len() {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![grad_output.numel()],
            rhs: vec![argmax.len()],
        });
    }
    let mut grad_input = Tensor::zeros(input_dims);
    let gi = grad_input.data_mut();
    for (g, &idx) in grad_output.data().iter().zip(argmax.iter()) {
        gi[idx] += g;
    }
    Ok(grad_input)
}

/// 2-D average pooling over an `[N, C, H, W]` tensor.
///
/// # Errors
///
/// Returns an error when the input is not rank-4 or the window does not fit.
pub fn avgpool2d_forward(input: &Tensor, spec: &Pool2dSpec) -> Result<Tensor> {
    let (n, c, h, w) = as_nchw(input)?;
    let (oh, ow) = spec.output_hw(h, w)?;
    let data = input.data();
    let norm = (spec.kernel * spec.kernel) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..spec.kernel {
                        for kx in 0..spec.kernel {
                            let iy = oy * spec.stride + ky;
                            let ix = ox * spec.stride + kx;
                            acc += data[((ni * c + ci) * h + iy) * w + ix];
                        }
                    }
                    out[((ni * c + ci) * oh + oy) * ow + ox] = acc / norm;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Backward pass for average pooling: spreads each output gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns an error when the shapes are inconsistent with the spec.
pub fn avgpool2d_backward(
    grad_output: &Tensor,
    input_dims: &[usize],
    spec: &Pool2dSpec,
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (oh, ow) = spec.output_hw(h, w)?;
    let god = grad_output.dims();
    if god != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![n, c, oh, ow],
            rhs: god.to_vec(),
        });
    }
    let norm = (spec.kernel * spec.kernel) as f32;
    let gd = grad_output.data();
    let mut grad_input = Tensor::zeros(input_dims);
    let gi = grad_input.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gd[((ni * c + ci) * oh + oy) * ow + ox] / norm;
                    for ky in 0..spec.kernel {
                        for kx in 0..spec.kernel {
                            let iy = oy * spec.stride + ky;
                            let ix = ox * spec.stride + kx;
                            gi[((ni * c + ci) * h + iy) * w + ix] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_input)
}

/// Global average pooling: reduces `[N, C, H, W]` to `[N, C]`.
///
/// # Errors
///
/// Returns an error when the input is not rank-4.
pub fn global_avgpool2d(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = as_nchw(input)?;
    let data = input.data();
    let norm = (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            out[ni * c + ci] = data[base..base + h * w].iter().sum::<f32>() / norm;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward pass for global average pooling.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent.
pub fn global_avgpool2d_backward(grad_output: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    if grad_output.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![n, c],
            rhs: grad_output.dims().to_vec(),
        });
    }
    let norm = (h * w) as f32;
    let gd = grad_output.data();
    let mut out = vec![0.0f32; n * c * h * w];
    for ni in 0..n {
        for ci in 0..c {
            let g = gd[ni * c + ci] / norm;
            let base = (ni * c + ci) * h * w;
            for v in &mut out[base..base + h * w] {
                *v = g;
            }
        }
    }
    Tensor::from_vec(out, input_dims)
}

fn as_nchw(t: &Tensor) -> Result<(usize, usize, usize, usize)> {
    let d = t.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: d.len(),
        });
    }
    Ok((d[0], d[1], d[2], d[3]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn maxpool_known_values() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let fwd = maxpool2d_forward(&input, &Pool2dSpec::new(2)).unwrap();
        assert_eq!(fwd.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(fwd.output.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let spec = Pool2dSpec::new(2);
        let fwd = maxpool2d_forward(&input, &spec).unwrap();
        let grad_out = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let grad_in = maxpool2d_backward(&grad_out, &fwd.argmax, input.dims()).unwrap();
        // Each window's max is its bottom-right corner.
        assert_eq!(grad_in.get(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(grad_in.get(&[0, 0, 1, 3]).unwrap(), 2.0);
        assert_eq!(grad_in.get(&[0, 0, 3, 1]).unwrap(), 3.0);
        assert_eq!(grad_in.get(&[0, 0, 3, 3]).unwrap(), 4.0);
        assert_eq!(grad_in.sum(), 10.0);
    }

    #[test]
    fn avgpool_forward_and_backward_conserve_mass() {
        let mut rng = Rng::seed_from(8);
        let input = Tensor::randn(&[2, 3, 4, 4], 0.0, 1.0, &mut rng);
        let spec = Pool2dSpec::new(2);
        let out = avgpool2d_forward(&input, &spec).unwrap();
        assert_eq!(out.dims(), &[2, 3, 2, 2]);
        // Average of averages equals global average for non-overlapping windows.
        assert!((out.mean() - input.mean()).abs() < 1e-5);

        let grad_out = Tensor::ones(out.dims());
        let grad_in = avgpool2d_backward(&grad_out, input.dims(), &spec).unwrap();
        assert!((grad_in.sum() - grad_out.sum()).abs() < 1e-4);
    }

    #[test]
    fn global_avgpool_matches_mean() {
        let mut rng = Rng::seed_from(9);
        let input = Tensor::randn(&[2, 4, 3, 3], 0.0, 1.0, &mut rng);
        let out = global_avgpool2d(&input).unwrap();
        assert_eq!(out.dims(), &[2, 4]);
        let first = input.index_axis0(0).unwrap().index_axis0(0).unwrap();
        assert!((out.get(&[0, 0]).unwrap() - first.mean()).abs() < 1e-5);

        let grad = Tensor::ones(&[2, 4]);
        let gi = global_avgpool2d_backward(&grad, input.dims()).unwrap();
        assert!((gi.sum() - 8.0).abs() < 1e-4);
    }

    #[test]
    fn pool_rejects_bad_geometry() {
        let input = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(maxpool2d_forward(&input, &Pool2dSpec::new(4)).is_err());
        assert!(avgpool2d_forward(&input, &Pool2dSpec::new(0)).is_err());
        assert!(global_avgpool2d(&Tensor::zeros(&[2, 2])).is_err());
    }
}
