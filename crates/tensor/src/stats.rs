//! Descriptive statistics helpers used by the experiment harness.
//!
//! The paper reports mean ± standard deviation over 100 Monte-Carlo fault
//! simulation runs, and Fig. 1 shows activation histograms under fault
//! injection; [`RunningStats`] and [`Histogram`] provide those two pieces.

use serde::{Deserialize, Serialize};

/// Online (Welford) accumulator for mean / variance / min / max.
///
/// # Example
///
/// ```
/// use invnorm_tensor::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.count(), 4);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f32) {
        let x = x as f64;
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every element of a slice.
    pub fn extend_from_slice(&mut self, xs: &[f32]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            self.mean as f32
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f32 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64) as f32
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Sample (Bessel-corrected) variance — the unbiased estimator used for
    /// confidence intervals (0 when fewer than two observations).
    pub fn sample_variance(&self) -> f32 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64) as f32
        }
    }

    /// Sample standard deviation (see [`RunningStats::sample_variance`]).
    pub fn sample_std(&self) -> f32 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f32 {
        self.min as f32
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f32 {
        self.max as f32
    }
}

/// Fixed-bin histogram over a closed range, used to reproduce the paper's
/// Fig. 1 (activation distribution under bit-flip faults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    below: u64,
    above: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
            total: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f32) {
        self.total += 1;
        if x < self.lo {
            self.below += 1;
        } else if x > self.hi {
            self.above += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let bin = ((frac * self.counts.len() as f32) as usize).min(self.counts.len() - 1);
            self.counts[bin] += 1;
        }
    }

    /// Adds every element of a slice.
    pub fn extend_from_slice(&mut self, xs: &[f32]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin centres, matching [`Histogram::counts`].
    pub fn bin_centers(&self) -> Vec<f32> {
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        (0..self.counts.len())
            .map(|i| self.lo + width * (i as f32 + 0.5))
            .collect()
    }

    /// Normalized probability density per bin (integrates to ≤ 1; outliers
    /// below/above the range are excluded).
    pub fn density(&self) -> Vec<f32> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        self.counts
            .iter()
            .map(|&c| c as f32 / (self.total as f32 * width))
            .collect()
    }

    /// Total number of observations pushed (including out-of-range ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Observations above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.above
    }
}

/// Computes the `q`-quantile (0 ≤ q ≤ 1) of a slice by sorting a copy.
/// Returns `None` for an empty slice.
pub fn quantile(xs: &[f32], q: f32) -> Option<f32> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_matches_closed_form() {
        let xs = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        s.extend_from_slice(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-6);
        assert!((s.std() - 2.0).abs() < 1e-6);
        // Bessel-corrected: m2 = 32, n-1 = 7.
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-6);
        assert!((s.sample_std() - (32.0f32 / 7.0).sqrt()).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s = RunningStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.std(), 0.0);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend_from_slice(&[0.5, 1.5, 1.6, 9.99, 10.0, -3.0, 42.0]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2); // 9.99 and the boundary value 10.0
        let centers = h.bin_centers();
        assert!((centers[0] - 0.5).abs() < 1e-6);
        assert!((centers[9] - 9.5).abs() < 1e-6);
    }

    #[test]
    fn histogram_density_normalizes() {
        let mut h = Histogram::new(-1.0, 1.0, 20);
        for i in 0..1000 {
            h.push(-1.0 + 2.0 * (i as f32 / 999.0));
        }
        let width = 2.0 / 20.0;
        let integral: f32 = h.density().iter().map(|d| d * width).sum();
        assert!((integral - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }
}
