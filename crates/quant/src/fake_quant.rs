//! Fake-quantization layers and whole-network weight quantization.
//!
//! * [`FakeQuantAct`] quantizes activations to `k` bits during the forward
//!   pass (PACT-style: clip to `[0, clip]` or `[-clip, clip]`, then uniform
//!   quantization) with a straight-through gradient, so quantization-aware
//!   training works with the ordinary optimizers.
//! * [`quantize_layer_weights`] applies post-training quantization to every
//!   parameter of a network according to a [`QuantConfig`] — the step that
//!   precedes programming the weights into the crossbar model of
//!   `invnorm-imc`.

use crate::binary::fake_binarize;
use crate::config::{Precision, QuantConfig};
use crate::uniform::fake_quantize;
use crate::Result;
use invnorm_nn::layer::{Layer, Mode};
use invnorm_nn::NnError;
use invnorm_tensor::Tensor;

/// PACT-style activation fake-quantizer.
///
/// In the forward pass activations are clipped to `[lo, clip]`
/// (`lo = 0` for unsigned mode, `-clip` for signed mode) and snapped to a
/// uniform `k`-bit grid; the backward pass passes gradients through inside the
/// clip range and zeroes them outside (straight-through estimator).
#[derive(Debug)]
pub struct FakeQuantAct {
    bits: u8,
    clip: f32,
    signed: bool,
    mask: Option<Vec<bool>>,
}

impl FakeQuantAct {
    /// Creates an activation quantizer.
    ///
    /// # Errors
    ///
    /// Returns an error when `bits` is outside `[2, 16]` or `clip <= 0`.
    pub fn new(bits: u8, clip: f32, signed: bool) -> Result<Self> {
        if !(2..=16).contains(&bits) {
            return Err(NnError::Config(format!(
                "activation quantization supports 2-16 bits, got {bits}"
            )));
        }
        if clip <= 0.0 {
            return Err(NnError::Config("clip value must be positive".into()));
        }
        Ok(Self {
            bits,
            clip,
            signed,
            mask: None,
        })
    }

    /// Unsigned (ReLU-style) 4-bit quantizer with the paper's U-Net setting.
    pub fn unsigned4(clip: f32) -> Result<Self> {
        Self::new(4, clip, false)
    }

    /// Number of quantization levels.
    pub fn levels(&self) -> u32 {
        if self.signed {
            (1u32 << self.bits) - 1
        } else {
            (1u32 << (self.bits - 1)) - 1
        }
    }

    fn lo(&self) -> f32 {
        if self.signed {
            -self.clip
        } else {
            0.0
        }
    }
}

impl Layer for FakeQuantAct {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let lo = self.lo();
        let hi = self.clip;
        self.mask = Some(input.data().iter().map(|&x| x >= lo && x <= hi).collect());
        // Quantization step over the clip range.
        let levels = self.levels() as f32;
        let step = (hi - lo) / levels;
        Ok(input.map(|x| {
            let clipped = x.clamp(lo, hi);
            lo + ((clipped - lo) / step).round() * step
        }))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("FakeQuantAct"))?;
        if mask.len() != grad_output.numel() {
            return Err(NnError::Config(
                "FakeQuantAct backward gradient size mismatch".into(),
            ));
        }
        let mut out = grad_output.clone();
        for (g, &inside) in out.data_mut().iter_mut().zip(mask.iter()) {
            if !inside {
                *g = 0.0;
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "FakeQuantAct"
    }
}

/// Applies post-training weight quantization in place to every parameter of
/// `network`, according to `config.weights`:
///
/// * [`Precision::Float`] — no change,
/// * [`Precision::Binary`] — `sign(W) * mean(|W|)` per parameter tensor,
/// * [`Precision::Bits`] — symmetric uniform quantize/dequantize.
///
/// Returns the number of parameters that were modified.
///
/// # Errors
///
/// Returns an error when the configured bit width is invalid.
pub fn quantize_layer_weights(network: &mut dyn Layer, config: &QuantConfig) -> Result<usize> {
    let mut touched = 0usize;
    let mut failure: Option<NnError> = None;
    let weights = config.weights;
    network.visit_params(&mut |p| {
        if failure.is_some() {
            return;
        }
        match weights {
            Precision::Float => {}
            Precision::Binary => {
                // Per-channel affine parameters of normalization layers stay
                // full precision (standard practice for binary networks, and
                // what the paper does: only conv/linear weights are binary).
                if p.value.rank() >= 2 {
                    p.value = fake_binarize(&p.value);
                    touched += 1;
                }
            }
            Precision::Bits(bits) => match fake_quantize(&p.value, bits) {
                Ok(q) => {
                    p.value = q;
                    touched += 1;
                }
                Err(e) => failure = Some(e),
            },
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(touched),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_nn::linear::Linear;
    use invnorm_nn::norm::GroupNorm;
    use invnorm_nn::Sequential;
    use invnorm_tensor::Rng;

    #[test]
    fn fake_quant_act_snaps_to_grid_and_clips() {
        let mut q = FakeQuantAct::new(4, 1.0, false).unwrap();
        let x = Tensor::from_vec(vec![-0.5, 0.2, 0.5, 1.7], &[4]).unwrap();
        let y = q.forward(&x, Mode::Train).unwrap();
        // Negative input clips to 0, over-range clips to 1.
        assert_eq!(y.data()[0], 0.0);
        assert_eq!(y.data()[3], 1.0);
        // All outputs on the 7-level grid.
        let step = 1.0 / 7.0;
        for &v in y.data() {
            let ratio = v / step;
            assert!((ratio - ratio.round()).abs() < 1e-5);
        }
        // Gradient masked outside the clip range.
        let g = q.backward(&Tensor::ones(&[4])).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn signed_mode_covers_negative_range() {
        let mut q = FakeQuantAct::new(8, 2.0, true).unwrap();
        let x = Tensor::from_vec(vec![-1.5, 1.5], &[2]).unwrap();
        let y = q.forward(&x, Mode::Train).unwrap();
        assert!((y.data()[0] + 1.5).abs() < 0.02);
        assert!((y.data()[1] - 1.5).abs() < 0.02);
    }

    #[test]
    fn constructor_validation() {
        assert!(FakeQuantAct::new(1, 1.0, false).is_err());
        assert!(FakeQuantAct::new(8, 0.0, false).is_err());
        assert!(FakeQuantAct::new(8, -1.0, true).is_err());
        assert!(FakeQuantAct::unsigned4(6.0).is_ok());
        assert!(FakeQuantAct::new(8, 1.0, false)
            .unwrap()
            .backward(&Tensor::ones(&[1]))
            .is_err());
    }

    #[test]
    fn quantize_network_weights_int8() {
        let mut rng = Rng::seed_from(1);
        let mut net = Sequential::new()
            .with(Box::new(Linear::new(4, 8, &mut rng)))
            .with(Box::new(Linear::new(8, 2, &mut rng)));
        let touched = quantize_layer_weights(&mut net, &QuantConfig::int8()).unwrap();
        assert_eq!(touched, 4); // two weights + two biases
                                // Values should now lie on a small grid: count distinct values.
        let mut distinct = std::collections::BTreeSet::new();
        net.visit_params(&mut |p| {
            for &v in p.value.data() {
                distinct.insert((v * 1e4).round() as i64);
            }
        });
        assert!(distinct.len() <= 255 * 4);
    }

    #[test]
    fn quantize_network_weights_binary_skips_norm_params() {
        let mut rng = Rng::seed_from(2);
        let mut net = Sequential::new()
            .with(Box::new(Linear::new(6, 6, &mut rng)))
            .with(Box::new(GroupNorm::layer_norm(6)));
        let touched = quantize_layer_weights(&mut net, &QuantConfig::binary()).unwrap();
        // Only the rank-2 Linear weight is binarized; bias and norm affine
        // parameters stay full precision.
        assert_eq!(touched, 1);
        let mut binary_values = 0usize;
        let mut total_rank2 = 0usize;
        net.visit_params(&mut |p| {
            if p.value.rank() >= 2 {
                total_rank2 += p.value.numel();
                let alpha = p.value.abs().max();
                binary_values += p
                    .value
                    .data()
                    .iter()
                    .filter(|v| (v.abs() - alpha).abs() < 1e-6)
                    .count();
            }
        });
        assert_eq!(binary_values, total_rank2);
    }

    #[test]
    fn float_config_is_identity() {
        let mut rng = Rng::seed_from(3);
        let mut net = Sequential::new().with(Box::new(Linear::new(4, 4, &mut rng)));
        let mut before = Vec::new();
        net.visit_params(&mut |p| before.extend_from_slice(p.value.data()));
        let touched = quantize_layer_weights(&mut net, &QuantConfig::float()).unwrap();
        assert_eq!(touched, 0);
        let mut after = Vec::new();
        net.visit_params(&mut |p| after.extend_from_slice(p.value.data()));
        assert_eq!(before, after);
    }
}
