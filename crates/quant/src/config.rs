//! Per-model precision configuration, mirroring the W/A column of the
//! paper's Table I.

use serde::{Deserialize, Serialize};

/// Precision of one tensor class (weights or activations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// Full 32-bit floating point (no quantization).
    Float,
    /// Binary (±α) representation.
    Binary,
    /// `k`-bit symmetric uniform quantization (2 ≤ k ≤ 16).
    Bits(u8),
}

impl Precision {
    /// Number of bits used to store one value (32 for [`Precision::Float`]).
    pub fn bit_width(&self) -> u8 {
        match self {
            Precision::Float => 32,
            Precision::Binary => 1,
            Precision::Bits(k) => *k,
        }
    }

    /// Whether values are quantized at all.
    pub fn is_quantized(&self) -> bool {
        !matches!(self, Precision::Float)
    }
}

/// Weight/activation precision pair for one model.
///
/// # Example
///
/// ```
/// use invnorm_quant::config::{Precision, QuantConfig};
///
/// // The paper's ResNet-18 configuration: 1-bit weights, 1-bit activations.
/// let cfg = QuantConfig::binary();
/// assert_eq!(cfg.describe(), "1/1");
/// assert_eq!(QuantConfig::new(Precision::Bits(8), Precision::Bits(8)).describe(), "8/8");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Weight precision.
    pub weights: Precision,
    /// Activation precision.
    pub activations: Precision,
}

impl QuantConfig {
    /// Creates a configuration.
    pub fn new(weights: Precision, activations: Precision) -> Self {
        Self {
            weights,
            activations,
        }
    }

    /// Full floating-point configuration (no quantization).
    pub fn float() -> Self {
        Self::new(Precision::Float, Precision::Float)
    }

    /// Fully binary configuration (the paper's ResNet-18: W/A = 1/1).
    pub fn binary() -> Self {
        Self::new(Precision::Binary, Precision::Binary)
    }

    /// 8-bit weights and activations (the paper's M5 and LSTM: W/A = 8/8).
    pub fn int8() -> Self {
        Self::new(Precision::Bits(8), Precision::Bits(8))
    }

    /// Binary weights with 4-bit activations (the paper's U-Net: W/A = 1/4).
    pub fn binary_weights_4bit_acts() -> Self {
        Self::new(Precision::Binary, Precision::Bits(4))
    }

    /// Formats the configuration like the paper's Table I ("W/A" bits).
    pub fn describe(&self) -> String {
        format!(
            "{}/{}",
            self.weights.bit_width(),
            self.activations.bit_width()
        )
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self::float()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths() {
        assert_eq!(Precision::Float.bit_width(), 32);
        assert_eq!(Precision::Binary.bit_width(), 1);
        assert_eq!(Precision::Bits(4).bit_width(), 4);
        assert!(!Precision::Float.is_quantized());
        assert!(Precision::Binary.is_quantized());
    }

    #[test]
    fn presets_match_paper_table1() {
        assert_eq!(QuantConfig::binary().describe(), "1/1");
        assert_eq!(QuantConfig::int8().describe(), "8/8");
        assert_eq!(QuantConfig::binary_weights_4bit_acts().describe(), "1/4");
        assert_eq!(QuantConfig::float().describe(), "32/32");
        assert_eq!(QuantConfig::default(), QuantConfig::float());
    }
}
