//! # invnorm-quant
//!
//! Quantization and binarization utilities used to map the workspace's
//! floating-point networks onto the limited-precision representations the
//! paper evaluates (1-bit / 4-bit / 8-bit weights and activations), and to
//! give the fault-injection machinery in `invnorm-imc` an integer code space
//! to flip bits in.
//!
//! * [`uniform`] — uniform affine quantization to `k` bits
//!   ([`uniform::QuantizedTensor`] holds **packed** integer codes — i8 for
//!   widths ≤ 8 — plus per-tensor or per-channel scales and zero points, so
//!   bit-flip faults can be injected on the codes and the codes can feed
//!   the i8 GEMM directly).
//! * [`binary`] — IR-Net/XNOR-style binarization with a per-tensor scaling
//!   factor.
//! * [`fake_quant`] — [`fake_quant::FakeQuantAct`], a PACT-style clipped
//!   activation quantizer usable as a regular layer (straight-through
//!   gradient), and [`fake_quant::quantize_layer_weights`] for post-training
//!   weight quantization of an entire network.
//! * [`config`] — per-model precision configuration ([`config::QuantConfig`]),
//!   mirroring the W/A column of the paper's Table I.

// This crate must stay free of `unsafe`; all unsafe code in the
// workspace is confined to `crates/tensor` (lint rule R2).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod binary;
pub mod config;
pub mod fake_quant;
pub mod uniform;

pub use config::QuantConfig;
pub use uniform::QuantizedTensor;

/// Convenience result alias re-using the NN error type.
pub type Result<T> = std::result::Result<T, invnorm_nn::NnError>;
