//! Symmetric uniform affine quantization.
//!
//! A tensor is mapped to signed integer codes in `[-(2^(k-1) - 1), 2^(k-1) - 1]`
//! with a single per-tensor scale. The integer codes are kept alongside the
//! scale in a [`QuantizedTensor`], which is the representation the crossbar
//! model and the bit-flip fault injector in `invnorm-imc` operate on.

use crate::Result;
use invnorm_nn::NnError;
use invnorm_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A tensor quantized to `bits`-bit signed integer codes with a per-tensor
/// scale such that `value ≈ code * scale`.
///
/// # Example
///
/// ```
/// use invnorm_quant::uniform::QuantizedTensor;
/// use invnorm_tensor::Tensor;
///
/// # fn main() -> Result<(), invnorm_nn::NnError> {
/// let w = Tensor::from_vec(vec![-1.0, -0.5, 0.0, 0.5, 1.0], &[5])?;
/// let q = QuantizedTensor::quantize(&w, 8)?;
/// let back = q.dequantize();
/// assert!(back.approx_eq(&w, 0.01));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedTensor {
    codes: Vec<i32>,
    dims: Vec<usize>,
    scale: f32,
    bits: u8,
}

impl QuantizedTensor {
    /// Quantizes a tensor to `bits` bits (2 ≤ bits ≤ 16) using a symmetric
    /// per-tensor scale derived from the maximum absolute value.
    ///
    /// For 1-bit (binary) parameters use [`crate::binary::binarize`] instead,
    /// which follows the sign/scaling convention of binary networks.
    ///
    /// # Errors
    ///
    /// Returns an error when `bits` is outside `[2, 16]`.
    pub fn quantize(tensor: &Tensor, bits: u8) -> Result<Self> {
        if !(2..=16).contains(&bits) {
            return Err(NnError::Config(format!(
                "uniform quantization supports 2-16 bits, got {bits}"
            )));
        }
        let qmax = Self::qmax_for(bits) as f32;
        let max_abs = tensor.abs().max();
        let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
        let codes = tensor
            .data()
            .iter()
            .map(|&x| (x / scale).round().clamp(-qmax, qmax) as i32)
            .collect();
        Ok(Self {
            codes,
            dims: tensor.dims().to_vec(),
            scale,
            bits,
        })
    }

    /// Largest representable positive code for the given bit width.
    pub fn qmax_for(bits: u8) -> i32 {
        (1i32 << (bits - 1)) - 1
    }

    /// Reconstructs the floating-point tensor from the codes.
    pub fn dequantize(&self) -> Tensor {
        let data = self.codes.iter().map(|&c| c as f32 * self.scale).collect();
        Tensor::from_vec(data, &self.dims).expect("codes and dims are constructed consistently")
    }

    /// The integer codes (row-major, same layout as the original tensor).
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Mutable access to the integer codes, used by bit-flip fault injection.
    pub fn codes_mut(&mut self) -> &mut [i32] {
        &mut self.codes
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The logical tensor shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.codes.len()
    }

    /// Clamps every code back into the representable range (used after fault
    /// injection flipped high-order bits).
    pub fn clamp_codes(&mut self) {
        let qmax = Self::qmax_for(self.bits);
        for c in &mut self.codes {
            *c = (*c).clamp(-qmax, qmax);
        }
    }

    /// Serializes the codes to a compact little-endian byte buffer (one
    /// `i16` per code for ≤ 16-bit widths), prefixed by nothing — the caller
    /// keeps shape/scale metadata. Used by the crossbar programming path.
    pub fn codes_to_bytes(&self) -> bytes_impl::BytesBuf {
        bytes_impl::codes_to_bytes(&self.codes)
    }
}

/// Quantize-and-dequantize in one step ("fake quantization"), returning a
/// floating-point tensor restricted to the representable grid.
///
/// # Errors
///
/// Returns an error when `bits` is outside `[2, 16]`.
pub fn fake_quantize(tensor: &Tensor, bits: u8) -> Result<Tensor> {
    Ok(QuantizedTensor::quantize(tensor, bits)?.dequantize())
}

/// Byte-packing helpers kept in a private-ish module so the main API stays
/// focused on tensors.
pub mod bytes_impl {
    /// Compact byte buffer alias.
    pub type BytesBuf = Vec<u8>;

    /// Packs i32 codes (assumed to fit in i16) into a little-endian buffer.
    pub fn codes_to_bytes(codes: &[i32]) -> BytesBuf {
        let mut buf = Vec::with_capacity(codes.len() * 2);
        for &c in codes {
            let clamped = c.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
            buf.extend_from_slice(&clamped.to_le_bytes());
        }
        buf
    }

    /// Unpacks a buffer produced by [`codes_to_bytes`].
    pub fn bytes_to_codes(buf: &[u8]) -> Vec<i32> {
        buf.chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]) as i32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;
    use proptest::prelude::*;

    #[test]
    fn quantize_dequantize_error_is_bounded_by_half_scale() {
        let mut rng = Rng::seed_from(1);
        let t = Tensor::randn(&[100], 0.0, 2.0, &mut rng);
        for bits in [4u8, 8, 12] {
            let q = QuantizedTensor::quantize(&t, bits).unwrap();
            let back = q.dequantize();
            let max_err = t.sub(&back).unwrap().abs().max();
            assert!(
                max_err <= q.scale() * 0.5 + 1e-6,
                "bits {bits}: max error {max_err} vs half-scale {}",
                q.scale() * 0.5
            );
        }
    }

    #[test]
    fn higher_bit_width_is_more_precise() {
        let mut rng = Rng::seed_from(2);
        let t = Tensor::randn(&[256], 0.0, 1.0, &mut rng);
        let err4 = t.sub(&fake_quantize(&t, 4).unwrap()).unwrap().abs().max();
        let err8 = t.sub(&fake_quantize(&t, 8).unwrap()).unwrap().abs().max();
        assert!(err8 < err4);
    }

    #[test]
    fn invalid_bit_widths_are_rejected() {
        let t = Tensor::ones(&[4]);
        assert!(QuantizedTensor::quantize(&t, 1).is_err());
        assert!(QuantizedTensor::quantize(&t, 17).is_err());
        assert!(QuantizedTensor::quantize(&t, 0).is_err());
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let t = Tensor::zeros(&[8]);
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        assert!(q.codes().iter().all(|&c| c == 0));
        assert!(q.dequantize().approx_eq(&t, 0.0));
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn qmax_values() {
        assert_eq!(QuantizedTensor::qmax_for(8), 127);
        assert_eq!(QuantizedTensor::qmax_for(4), 7);
        assert_eq!(QuantizedTensor::qmax_for(2), 1);
    }

    #[test]
    fn clamp_codes_restores_range() {
        let t = Tensor::from_vec(vec![1.0, -1.0, 0.5], &[3]).unwrap();
        let mut q = QuantizedTensor::quantize(&t, 4).unwrap();
        q.codes_mut()[0] = 1000;
        q.codes_mut()[1] = -1000;
        q.clamp_codes();
        assert!(q.codes().iter().all(|&c| c.abs() <= 7));
    }

    #[test]
    fn byte_round_trip() {
        let t = Tensor::from_vec(vec![0.9, -0.5, 0.1, -1.0], &[4]).unwrap();
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        let bytes = q.codes_to_bytes();
        let codes = bytes_impl::bytes_to_codes(&bytes);
        assert_eq!(codes, q.codes());
    }

    #[test]
    fn metadata_accessors() {
        let t = Tensor::ones(&[2, 3]);
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        assert_eq!(q.dims(), &[2, 3]);
        assert_eq!(q.numel(), 6);
        assert_eq!(q.bits(), 8);
    }

    proptest! {
        #[test]
        fn prop_dequantized_values_on_grid(values in proptest::collection::vec(-10.0f32..10.0, 1..64), bits in 2u8..10) {
            let t = Tensor::from_slice(&values);
            let q = QuantizedTensor::quantize(&t, bits).unwrap();
            let back = q.dequantize();
            // Every dequantized value must be an integer multiple of the scale.
            for &v in back.data() {
                let ratio = v / q.scale();
                prop_assert!((ratio - ratio.round()).abs() < 1e-3);
            }
            // Codes fit in the representable range.
            let qmax = QuantizedTensor::qmax_for(bits);
            prop_assert!(q.codes().iter().all(|&c| c.abs() <= qmax));
        }

        #[test]
        fn prop_quantization_error_bounded(values in proptest::collection::vec(-5.0f32..5.0, 1..64)) {
            let t = Tensor::from_slice(&values);
            let q = QuantizedTensor::quantize(&t, 8).unwrap();
            let back = q.dequantize();
            for (a, b) in t.data().iter().zip(back.data().iter()) {
                prop_assert!((a - b).abs() <= q.scale() * 0.5 + 1e-6);
            }
        }
    }
}
