//! Symmetric uniform affine quantization with packed integer code storage.
//!
//! A tensor is mapped to signed integer codes in `[-(2^(k-1) - 1), 2^(k-1) - 1]`
//! with a per-tensor scale, a per-channel scale vector (one scale per
//! output channel, the standard choice for weight matrices), or an
//! asymmetric per-tensor scale/zero-point pair. The codes are stored
//! **packed**: one `i8` per code for widths up to 8 bits (the representation
//! the i8 GEMM in `invnorm_tensor::qgemm` consumes directly), one `i16` per
//! code for the wider DAC/ADC-style widths — a 4× / 2× shrink over the
//! historical `Vec<i32>` storage.

use crate::Result;
use invnorm_nn::NnError;
use invnorm_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A tensor quantized to `bits`-bit signed integer codes such that
/// `value ≈ (code - zero_point) * scale`, with the scale/zero-point either
/// per-tensor or per-channel (leading dimension).
///
/// # Example
///
/// ```
/// use invnorm_quant::uniform::QuantizedTensor;
/// use invnorm_tensor::Tensor;
///
/// # fn main() -> Result<(), invnorm_nn::NnError> {
/// let w = Tensor::from_vec(vec![-1.0, -0.5, 0.0, 0.5, 1.0], &[5])?;
/// let q = QuantizedTensor::quantize(&w, 8)?;
/// let back = q.dequantize();
/// assert!(back.approx_eq(&w, 0.01));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedTensor {
    /// Packed codes for widths ≤ 8 bits (empty otherwise).
    codes8: Vec<i8>,
    /// Packed codes for widths in 9..=16 bits (empty otherwise).
    codes16: Vec<i16>,
    dims: Vec<usize>,
    /// One scale (per-tensor) or `dims[0]` scales (per-channel).
    scales: Vec<f32>,
    /// Zero points, same length as `scales`; all zero for the symmetric
    /// quantizers.
    zero_points: Vec<i32>,
    bits: u8,
}

impl QuantizedTensor {
    /// Quantizes a tensor to `bits` bits (2 ≤ bits ≤ 16) using a symmetric
    /// per-tensor scale derived from the maximum absolute value.
    ///
    /// For 1-bit (binary) parameters use [`crate::binary::binarize`] instead,
    /// which follows the sign/scaling convention of binary networks.
    ///
    /// # Errors
    ///
    /// Returns an error when `bits` is outside `[2, 16]`.
    pub fn quantize(tensor: &Tensor, bits: u8) -> Result<Self> {
        check_bits(bits)?;
        let qmax = Self::qmax_for(bits) as f32;
        let max_abs = tensor.abs().max();
        let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
        let mut q = Self::empty(tensor.dims(), vec![scale], vec![0], bits);
        q.fill_codes(tensor.data(), |x| {
            (x / scale).round().clamp(-qmax, qmax) as i32
        });
        Ok(q)
    }

    /// Quantizes a rank ≥ 2 tensor to `bits` bits with one symmetric scale
    /// **per leading-dimension channel** (output channel for `[out, …]`
    /// weight tensors) — the standard weight-quantization granularity, which
    /// preserves small-magnitude channels that a per-tensor scale would
    /// flush to zero.
    ///
    /// # Errors
    ///
    /// Returns an error when `bits` is outside `[2, 16]` or the tensor has
    /// rank < 2.
    pub fn quantize_per_channel(tensor: &Tensor, bits: u8) -> Result<Self> {
        check_bits(bits)?;
        if tensor.rank() < 2 {
            return Err(NnError::Config(format!(
                "per-channel quantization needs rank >= 2, got {:?}",
                tensor.dims()
            )));
        }
        let qmax = Self::qmax_for(bits) as f32;
        let channels = tensor.dims()[0];
        let chunk = tensor.numel() / channels;
        let data = tensor.data();
        let mut scales = vec![1.0f32; channels];
        let mut codes = vec![0i32; data.len()];
        for c in 0..channels {
            let row = &data[c * chunk..(c + 1) * chunk];
            let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
            scales[c] = scale;
            for (dst, &x) in codes[c * chunk..(c + 1) * chunk].iter_mut().zip(row) {
                *dst = (x / scale).round().clamp(-qmax, qmax) as i32;
            }
        }
        let mut q = Self::empty(tensor.dims(), scales, vec![0; channels], bits);
        q.store_codes(&codes);
        Ok(q)
    }

    /// Quantizes a tensor to `bits` bits with an **asymmetric** per-tensor
    /// scale/zero-point pair mapping `[min, max]` onto `[-qmax, qmax]`
    /// (activation-style affine quantization; `value ≈ (code - zp) · scale`).
    ///
    /// # Errors
    ///
    /// Returns an error when `bits` is outside `[2, 16]`.
    pub fn quantize_affine(tensor: &Tensor, bits: u8) -> Result<Self> {
        check_bits(bits)?;
        let qmax = Self::qmax_for(bits) as f32;
        let (lo, hi) = (tensor.min(), tensor.max());
        let (scale, zp) = if hi > lo {
            let scale = (hi - lo) / (2.0 * qmax);
            (scale, -(qmax as i32) - (lo / scale).round() as i32)
        } else {
            // Constant tensor: one exactly-representable level.
            (1.0, -lo.round() as i32)
        };
        let mut q = Self::empty(tensor.dims(), vec![scale], vec![zp], bits);
        q.fill_codes(tensor.data(), |x| {
            ((x / scale).round() as i32 + zp).clamp(-(qmax as i32), qmax as i32)
        });
        Ok(q)
    }

    fn empty(dims: &[usize], scales: Vec<f32>, zero_points: Vec<i32>, bits: u8) -> Self {
        Self {
            codes8: Vec::new(),
            codes16: Vec::new(),
            dims: dims.to_vec(),
            scales,
            zero_points,
            bits,
        }
    }

    fn fill_codes(&mut self, data: &[f32], mut f: impl FnMut(f32) -> i32) {
        if self.bits <= 8 {
            self.codes8 = data.iter().map(|&x| f(x) as i8).collect();
        } else {
            self.codes16 = data.iter().map(|&x| f(x) as i16).collect();
        }
    }

    fn store_codes(&mut self, codes: &[i32]) {
        if self.bits <= 8 {
            self.codes8 = codes.iter().map(|&c| c as i8).collect();
        } else {
            self.codes16 = codes.iter().map(|&c| c as i16).collect();
        }
    }

    /// Largest representable positive code for the given bit width.
    pub fn qmax_for(bits: u8) -> i32 {
        (1i32 << (bits - 1)) - 1
    }

    /// Reconstructs the floating-point tensor from the codes.
    pub fn dequantize(&self) -> Tensor {
        let channels = self.scales.len();
        let chunk = if channels > 1 {
            self.numel() / channels
        } else {
            usize::MAX
        };
        let decode = |i: usize, c: i32| -> f32 {
            let ch = if channels > 1 { i / chunk } else { 0 };
            (c - self.zero_points[ch]) as f32 * self.scales[ch]
        };
        let data: Vec<f32> = if self.bits <= 8 {
            self.codes8
                .iter()
                .enumerate()
                .map(|(i, &c)| decode(i, i32::from(c)))
                .collect()
        } else {
            self.codes16
                .iter()
                .enumerate()
                .map(|(i, &c)| decode(i, i32::from(c)))
                .collect()
        };
        Tensor::from_vec(data, &self.dims).expect("codes and dims are constructed consistently")
    }

    /// The packed i8 codes (row-major, same layout as the original tensor).
    /// `None` when the bit width exceeds 8.
    pub fn codes_i8(&self) -> Option<&[i8]> {
        (self.bits <= 8).then_some(self.codes8.as_slice())
    }

    /// Mutable access to the packed i8 codes (bit widths ≤ 8); used by the
    /// code-domain fault injection path.
    pub fn codes_i8_mut(&mut self) -> Option<&mut [i8]> {
        (self.bits <= 8).then_some(self.codes8.as_mut_slice())
    }

    /// The code at `idx`, widened to i32.
    pub fn code(&self, idx: usize) -> i32 {
        if self.bits <= 8 {
            i32::from(self.codes8[idx])
        } else {
            i32::from(self.codes16[idx])
        }
    }

    /// Stores a code at `idx`, saturating to the **symmetric** storage range
    /// (`[-127, 127]` for packed i8, `[-32767, 32767]` for i16) — the value
    /// `-2^(w-1)` is never stored, because the i8 GEMM's sign-split
    /// microkernel requires magnitudes ≤ 127.
    pub fn set_code(&mut self, idx: usize, value: i32) {
        if self.bits <= 8 {
            self.codes8[idx] = value.clamp(-(i8::MAX as i32), i8::MAX as i32) as i8;
        } else {
            self.codes16[idx] = value.clamp(-(i16::MAX as i32), i16::MAX as i32) as i16;
        }
    }

    /// Applies `f` to every code in place (widening to i32 and saturating
    /// back to the symmetric storage range, like
    /// [`QuantizedTensor::set_code`]). The workhorse of bit-flip fault
    /// injection.
    pub fn map_codes(&mut self, mut f: impl FnMut(i32) -> i32) {
        if self.bits <= 8 {
            for c in &mut self.codes8 {
                *c = f(i32::from(*c)).clamp(-(i8::MAX as i32), i8::MAX as i32) as i8;
            }
        } else {
            for c in &mut self.codes16 {
                *c = f(i32::from(*c)).clamp(-(i16::MAX as i32), i16::MAX as i32) as i16;
            }
        }
    }

    /// Iterates over the codes, widened to i32. Exactly one of the two
    /// storage vectors is populated (by construction), so chaining them
    /// yields the codes regardless of width.
    pub fn iter_codes(&self) -> impl Iterator<Item = i32> + '_ {
        self.codes8
            .iter()
            .map(|&c| i32::from(c))
            .chain(self.codes16.iter().map(|&c| i32::from(c)))
    }

    /// The per-tensor quantization scale (first channel's scale for
    /// per-channel tensors).
    pub fn scale(&self) -> f32 {
        self.scales[0]
    }

    /// All scales: one entry (per-tensor) or one per leading-dim channel.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The per-tensor zero point (first channel's for per-channel tensors);
    /// zero for the symmetric quantizers.
    pub fn zero_point(&self) -> i32 {
        self.zero_points[0]
    }

    /// All zero points, aligned with [`QuantizedTensor::scales`].
    pub fn zero_points(&self) -> &[i32] {
        &self.zero_points
    }

    /// Whether the tensor carries one scale per leading-dim channel.
    pub fn is_per_channel(&self) -> bool {
        self.scales.len() > 1
    }

    /// The bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The logical tensor shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        if self.bits <= 8 {
            self.codes8.len()
        } else {
            self.codes16.len()
        }
    }

    /// Clamps every code back into the representable range (used after fault
    /// injection flipped high-order bits).
    pub fn clamp_codes(&mut self) {
        let qmax = Self::qmax_for(self.bits);
        self.map_codes(|c| c.clamp(-qmax, qmax));
    }

    /// Serializes the codes to a compact little-endian byte buffer — **one
    /// byte per code** for widths ≤ 8 bits (the packed i8 storage verbatim),
    /// two bytes per code for the wider widths. The caller keeps shape/scale
    /// metadata; [`bytes_impl::bytes_to_codes`] inverts the packing given the
    /// bit width. Used by the crossbar programming path.
    pub fn codes_to_bytes(&self) -> bytes_impl::BytesBuf {
        if self.bits <= 8 {
            self.codes8.iter().map(|&c| c as u8).collect()
        } else {
            let mut buf = Vec::with_capacity(self.codes16.len() * 2);
            for &c in &self.codes16 {
                buf.extend_from_slice(&c.to_le_bytes());
            }
            buf
        }
    }
}

fn check_bits(bits: u8) -> Result<()> {
    if !(2..=16).contains(&bits) {
        return Err(NnError::Config(format!(
            "uniform quantization supports 2-16 bits, got {bits}"
        )));
    }
    Ok(())
}

/// Quantize-and-dequantize in one step ("fake quantization"), returning a
/// floating-point tensor restricted to the representable grid.
///
/// # Errors
///
/// Returns an error when `bits` is outside `[2, 16]`.
pub fn fake_quantize(tensor: &Tensor, bits: u8) -> Result<Tensor> {
    Ok(QuantizedTensor::quantize(tensor, bits)?.dequantize())
}

/// Byte-packing helpers kept in a private-ish module so the main API stays
/// focused on tensors.
pub mod bytes_impl {
    /// Compact byte buffer alias.
    pub type BytesBuf = Vec<u8>;

    /// Unpacks a buffer produced by
    /// [`super::QuantizedTensor::codes_to_bytes`]: one byte per code for
    /// `bits ≤ 8` (packed i8), two little-endian bytes per code otherwise.
    pub fn bytes_to_codes(buf: &[u8], bits: u8) -> Vec<i32> {
        if bits <= 8 {
            buf.iter().map(|&b| i32::from(b as i8)).collect()
        } else {
            buf.chunks_exact(2)
                .map(|c| i32::from(i16::from_le_bytes([c[0], c[1]])))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;
    use proptest::prelude::*;

    #[test]
    fn quantize_dequantize_error_is_bounded_by_half_scale() {
        let mut rng = Rng::seed_from(1);
        let t = Tensor::randn(&[100], 0.0, 2.0, &mut rng);
        for bits in [4u8, 8, 12] {
            let q = QuantizedTensor::quantize(&t, bits).unwrap();
            let back = q.dequantize();
            let max_err = t.sub(&back).unwrap().abs().max();
            assert!(
                max_err <= q.scale() * 0.5 + 1e-6,
                "bits {bits}: max error {max_err} vs half-scale {}",
                q.scale() * 0.5
            );
        }
    }

    #[test]
    fn higher_bit_width_is_more_precise() {
        let mut rng = Rng::seed_from(2);
        let t = Tensor::randn(&[256], 0.0, 1.0, &mut rng);
        let err4 = t.sub(&fake_quantize(&t, 4).unwrap()).unwrap().abs().max();
        let err8 = t.sub(&fake_quantize(&t, 8).unwrap()).unwrap().abs().max();
        assert!(err8 < err4);
    }

    #[test]
    fn invalid_bit_widths_are_rejected() {
        let t = Tensor::ones(&[4]);
        assert!(QuantizedTensor::quantize(&t, 1).is_err());
        assert!(QuantizedTensor::quantize(&t, 17).is_err());
        assert!(QuantizedTensor::quantize(&t, 0).is_err());
        assert!(QuantizedTensor::quantize_affine(&t, 1).is_err());
        let m = Tensor::ones(&[2, 2]);
        assert!(QuantizedTensor::quantize_per_channel(&m, 1).is_err());
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let t = Tensor::zeros(&[8]);
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        assert!(q.iter_codes().all(|c| c == 0));
        assert!(q.dequantize().approx_eq(&t, 0.0));
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.zero_point(), 0);
    }

    #[test]
    fn qmax_values() {
        assert_eq!(QuantizedTensor::qmax_for(8), 127);
        assert_eq!(QuantizedTensor::qmax_for(4), 7);
        assert_eq!(QuantizedTensor::qmax_for(2), 1);
    }

    #[test]
    fn clamp_codes_restores_range() {
        let t = Tensor::from_vec(vec![1.0, -1.0, 0.5], &[3]).unwrap();
        let mut q = QuantizedTensor::quantize(&t, 4).unwrap();
        q.set_code(0, 1000);
        q.set_code(1, -1000);
        q.clamp_codes();
        assert!(q.iter_codes().all(|c| c.abs() <= 7));
    }

    #[test]
    fn code_setters_never_store_the_asymmetric_minimum() {
        // -2^(w-1) would break the i8 GEMM's sign-split microkernel, so the
        // saturating store must stop at -(2^(w-1) - 1).
        let t = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let mut q = QuantizedTensor::quantize(&t, 8).unwrap();
        q.set_code(0, -500);
        assert_eq!(q.code(0), -127);
        q.map_codes(|_| i32::MIN);
        assert!(q.iter_codes().all(|c| c == -127));
        let mut wide = QuantizedTensor::quantize(&t, 16).unwrap();
        wide.set_code(0, i32::MIN);
        assert_eq!(wide.code(0), -32767);
    }

    #[test]
    fn packed_storage_is_one_byte_per_code_for_8_bits() {
        let mut rng = Rng::seed_from(5);
        let t = Tensor::randn(&[64], 0.0, 1.0, &mut rng);
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        let codes = q.codes_i8().expect("8-bit codes are packed i8");
        assert_eq!(codes.len(), 64);
        assert_eq!(q.codes_to_bytes().len(), 64);
        // Wide widths fall back to i16 storage.
        let w = QuantizedTensor::quantize(&t, 12).unwrap();
        assert!(w.codes_i8().is_none());
        assert_eq!(w.codes_to_bytes().len(), 128);
    }

    #[test]
    fn byte_round_trip_narrow_and_wide() {
        let t = Tensor::from_vec(vec![0.9, -0.5, 0.1, -1.0], &[4]).unwrap();
        for bits in [4u8, 8, 12, 16] {
            let q = QuantizedTensor::quantize(&t, bits).unwrap();
            let bytes = q.codes_to_bytes();
            let codes = bytes_impl::bytes_to_codes(&bytes, bits);
            assert_eq!(codes, q.iter_codes().collect::<Vec<_>>(), "bits {bits}");
        }
    }

    #[test]
    fn per_channel_scales_track_channel_magnitudes() {
        // Two rows with very different magnitudes: per-tensor quantization
        // crushes the small row, per-channel preserves it.
        let t = Tensor::from_vec(vec![100.0, -50.0, 0.01, -0.02], &[2, 2]).unwrap();
        let q = QuantizedTensor::quantize_per_channel(&t, 8).unwrap();
        assert!(q.is_per_channel());
        assert_eq!(q.scales().len(), 2);
        assert!(q.scales()[0] > q.scales()[1]);
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data().iter()) {
            let ch_scale = if a.abs() > 1.0 {
                q.scales()[0]
            } else {
                q.scales()[1]
            };
            assert!((a - b).abs() <= ch_scale * 0.5 + 1e-9, "{a} vs {b}");
        }
        // Per-tensor, by contrast, flushes the small channel to zero.
        let flat = QuantizedTensor::quantize(&t, 8).unwrap().dequantize();
        assert_eq!(flat.data()[2], 0.0);
        assert!(QuantizedTensor::quantize_per_channel(&Tensor::ones(&[4]), 8).is_err());
    }

    #[test]
    fn affine_quantization_covers_shifted_ranges() {
        // A strictly positive tensor wastes half the symmetric grid; the
        // affine quantizer spends all levels on [min, max].
        let t = Tensor::from_vec(vec![10.0, 10.5, 11.0, 11.75, 12.0], &[5]).unwrap();
        let q = QuantizedTensor::quantize_affine(&t, 8).unwrap();
        assert_ne!(q.zero_point(), 0);
        let back = q.dequantize();
        let max_err = t.sub(&back).unwrap().abs().max();
        assert!(max_err <= q.scale() * 0.5 + 1e-5, "err {max_err}");
        // Codes stay in the symmetric storage range the i8 GEMM requires.
        assert!(q.iter_codes().all(|c| c.abs() <= 127));
        // Constant tensors get one exact level.
        let c = Tensor::from_vec(vec![3.0; 4], &[4]).unwrap();
        let qc = QuantizedTensor::quantize_affine(&c, 8).unwrap();
        assert!(qc.dequantize().approx_eq(&c, 1e-6));
    }

    #[test]
    fn metadata_accessors() {
        let t = Tensor::ones(&[2, 3]);
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        assert_eq!(q.dims(), &[2, 3]);
        assert_eq!(q.numel(), 6);
        assert_eq!(q.bits(), 8);
        assert_eq!(q.code(0), 127);
        assert_eq!(q.zero_points(), &[0]);
        assert!(!q.is_per_channel());
    }

    proptest! {
        #[test]
        fn prop_dequantized_values_on_grid(values in proptest::collection::vec(-10.0f32..10.0, 1..64), bits in 2u8..10) {
            let t = Tensor::from_slice(&values);
            let q = QuantizedTensor::quantize(&t, bits).unwrap();
            let back = q.dequantize();
            // Every dequantized value must be an integer multiple of the scale.
            for &v in back.data() {
                let ratio = v / q.scale();
                prop_assert!((ratio - ratio.round()).abs() < 1e-3);
            }
            // Codes fit in the representable range.
            let qmax = QuantizedTensor::qmax_for(bits);
            prop_assert!(q.iter_codes().all(|c| c.abs() <= qmax));
        }

        #[test]
        fn prop_quantization_error_bounded(values in proptest::collection::vec(-5.0f32..5.0, 1..64)) {
            let t = Tensor::from_slice(&values);
            let q = QuantizedTensor::quantize(&t, 8).unwrap();
            let back = q.dequantize();
            for (a, b) in t.data().iter().zip(back.data().iter()) {
                prop_assert!((a - b).abs() <= q.scale() * 0.5 + 1e-6);
            }
        }

        #[test]
        fn prop_per_channel_error_bounded_by_channel_half_scale(
            values in proptest::collection::vec(-5.0f32..5.0, 8..64),
        ) {
            // Shape [4, len/4]; drop the ragged tail.
            let cols = values.len() / 4;
            let t = Tensor::from_vec(values[..4 * cols].to_vec(), &[4, cols]).unwrap();
            let q = QuantizedTensor::quantize_per_channel(&t, 8).unwrap();
            let back = q.dequantize();
            for (i, (a, b)) in t.data().iter().zip(back.data().iter()).enumerate() {
                let s = q.scales()[i / cols];
                prop_assert!((a - b).abs() <= s * 0.5 + 1e-6);
            }
        }

        #[test]
        fn prop_byte_round_trip(values in proptest::collection::vec(-3.0f32..3.0, 1..48), bits in 2u8..16) {
            let t = Tensor::from_slice(&values);
            let q = QuantizedTensor::quantize(&t, bits).unwrap();
            let codes = bytes_impl::bytes_to_codes(&q.codes_to_bytes(), bits);
            prop_assert_eq!(codes, q.iter_codes().collect::<Vec<_>>());
        }

        #[test]
        fn prop_i8_gemm_matches_f32_reference_within_dequant_tolerance(
            m in 1usize..16,
            k in 1usize..32,
            n in 1usize..16,
            seed in 0u32..500,
        ) {
            // Quantize random f32 matrices to i8 codes, multiply in the
            // integer domain, dequantize the i32 accumulators — the result
            // must match the f32 product to within the accumulated
            // quantization error (|x|·Δw + |w|·Δx + Δx·Δw per term).
            use invnorm_tensor::{ops, Rng};
            let mut rng = Rng::seed_from(seed as u64 + 9000);
            let a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
            let qa = QuantizedTensor::quantize(&a, 8).unwrap();
            let qb = QuantizedTensor::quantize(&b, 8).unwrap();
            let mut acc = vec![0i32; m * n];
            ops::qgemm(
                false,
                false,
                m,
                n,
                k,
                qa.codes_i8().unwrap(),
                qb.codes_i8().unwrap(),
                false,
                &mut acc,
            );
            let rescale = qa.scale() * qb.scale();
            let reference = ops::matmul(&a, &b).unwrap();
            let (sa, sb) = (qa.scale(), qb.scale());
            let (amax, bmax) = (a.abs().max(), b.abs().max());
            let bound = k as f32 * (amax * sb * 0.5 + bmax * sa * 0.5 + sa * sb * 0.25) + 1e-5;
            for (i, &c) in acc.iter().enumerate() {
                let got = c as f32 * rescale;
                let want = reference.data()[i];
                prop_assert!(
                    (got - want).abs() <= bound,
                    "m={} n={} k={} idx={}: {} vs {} (bound {})",
                    m, n, k, i, got, want, bound
                );
            }
        }
    }
}
