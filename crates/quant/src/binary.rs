//! Weight binarization following the convention of binary neural networks
//! (XNOR-Net / IR-Net): a binarized weight tensor is `sign(W) * α` with
//! `α = mean(|W|)`, which minimizes the L2 error of the rank-1 approximation.
//!
//! The paper binarizes ResNet-18 (weights *and* activations) and the U-Net
//! weights; activation binarization is performed by the
//! [`invnorm_nn::activation::SignSte`] layer, weight binarization by the
//! functions here (either ahead of deployment or as fake-binarization during
//! training).

use invnorm_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A binarized tensor: packed signs plus the per-tensor scaling factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinaryTensor {
    /// +1 / -1 signs stored as booleans (`true` = +1).
    signs: Vec<bool>,
    dims: Vec<usize>,
    /// Scaling factor `α = mean(|W|)`.
    alpha: f32,
}

impl BinaryTensor {
    /// Binarizes a tensor.
    pub fn binarize(tensor: &Tensor) -> Self {
        let alpha = if tensor.numel() == 0 {
            0.0
        } else {
            tensor.abs().mean()
        };
        Self {
            signs: tensor.data().iter().map(|&x| x >= 0.0).collect(),
            dims: tensor.dims().to_vec(),
            alpha,
        }
    }

    /// Reconstructs `sign(W) * α`.
    pub fn dequantize(&self) -> Tensor {
        let data = self
            .signs
            .iter()
            .map(|&s| if s { self.alpha } else { -self.alpha })
            .collect();
        Tensor::from_vec(data, &self.dims).expect("signs and dims are consistent")
    }

    /// The scaling factor α.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// The sign bits (`true` = +1).
    pub fn signs(&self) -> &[bool] {
        &self.signs
    }

    /// Mutable sign bits, used by the bit-flip fault injector (flipping a
    /// binary weight's single bit flips its sign).
    pub fn signs_mut(&mut self) -> &mut [bool] {
        &mut self.signs
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.signs.len()
    }

    /// The logical tensor shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }
}

/// Binarize-and-dequantize in one step ("fake binarization"), returning
/// `sign(W) * mean(|W|)` as a floating-point tensor.
pub fn fake_binarize(tensor: &Tensor) -> Tensor {
    BinaryTensor::binarize(tensor).dequantize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use invnorm_tensor::Rng;
    use proptest::prelude::*;

    #[test]
    fn binarize_known_values() {
        let w = Tensor::from_vec(vec![0.5, -1.5, 2.0, -0.0], &[4]).unwrap();
        let b = BinaryTensor::binarize(&w);
        assert!((b.alpha() - 1.0).abs() < 1e-6);
        assert_eq!(b.signs(), &[true, false, true, true]);
        let back = b.dequantize();
        assert_eq!(back.data(), &[1.0, -1.0, 1.0, 1.0]);
    }

    #[test]
    fn alpha_minimizes_l2_among_scaled_signs() {
        // For fixed signs s, the best scale is mean(|w|); check that the
        // chosen alpha beats nearby alternatives.
        let mut rng = Rng::seed_from(3);
        let w = Tensor::randn(&[64], 0.0, 1.0, &mut rng);
        let b = BinaryTensor::binarize(&w);
        let err = |alpha: f32| -> f32 {
            w.data()
                .iter()
                .zip(b.signs().iter())
                .map(|(&x, &s)| {
                    let v = if s { alpha } else { -alpha };
                    (x - v).powi(2)
                })
                .sum()
        };
        let best = err(b.alpha());
        assert!(best <= err(b.alpha() * 1.2) + 1e-4);
        assert!(best <= err(b.alpha() * 0.8) + 1e-4);
    }

    #[test]
    fn empty_and_zero_tensors() {
        let empty = Tensor::zeros(&[0]);
        let b = BinaryTensor::binarize(&empty);
        assert_eq!(b.numel(), 0);
        assert_eq!(b.alpha(), 0.0);

        let zeros = Tensor::zeros(&[4]);
        let b = BinaryTensor::binarize(&zeros);
        assert_eq!(b.dequantize().data(), &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn sign_flip_changes_reconstruction() {
        let w = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let mut b = BinaryTensor::binarize(&w);
        b.signs_mut()[0] = false;
        let back = b.dequantize();
        assert_eq!(back.data()[0], -1.0);
        assert_eq!(b.dims(), &[2]);
    }

    #[test]
    fn fake_binarize_preserves_shape_and_magnitude() {
        let mut rng = Rng::seed_from(4);
        let w = Tensor::randn(&[3, 4, 5], 0.0, 2.0, &mut rng);
        let fb = fake_binarize(&w);
        assert_eq!(fb.dims(), w.dims());
        let alpha = w.abs().mean();
        assert!(fb.data().iter().all(|&v| (v.abs() - alpha).abs() < 1e-6));
    }

    proptest! {
        #[test]
        fn prop_binarized_values_are_pm_alpha(values in proptest::collection::vec(-3.0f32..3.0, 1..64)) {
            let t = Tensor::from_slice(&values);
            let b = BinaryTensor::binarize(&t);
            let back = b.dequantize();
            for &v in back.data() {
                prop_assert!((v.abs() - b.alpha()).abs() < 1e-6);
            }
            // Signs agree with the original tensor for non-negative entries.
            for (&orig, &s) in t.data().iter().zip(b.signs().iter()) {
                prop_assert_eq!(orig >= 0.0, s);
            }
        }
    }
}
