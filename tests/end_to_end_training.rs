//! Cross-crate integration tests: datasets → models → training → evaluation.
//!
//! These tests verify that the full pipeline (synthetic data generation,
//! model construction in each normalization variant, training, post-training
//! quantization and Bayesian evaluation) learns something meaningful on each
//! of the paper's four task families.

use invnorm::prelude::*;
use invnorm_datasets::audio::{self, AudioDatasetConfig};
use invnorm_datasets::images::{self, ImageDatasetConfig};
use invnorm_datasets::segmentation::{self, SegmentationDatasetConfig};
use invnorm_datasets::timeseries::{self, Co2DatasetConfig};
use invnorm_models::lstm::{self, LstmForecasterConfig};
use invnorm_models::m5::{self, M5NetConfig};
use invnorm_models::resnet::{self, MicroResNetConfig};
use invnorm_models::unet::{self, MicroUNetConfig};
use invnorm_nn::metrics;
use invnorm_nn::train::{fit_classifier, fit_regressor, fit_segmenter, TrainConfig};

fn config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        shuffle: true,
        seed: 1,
    }
}

#[test]
fn image_classifier_learns_above_chance() {
    let split = images::generate(&ImageDatasetConfig {
        classes: 4,
        size: 16,
        train_per_class: 20,
        test_per_class: 8,
        ..ImageDatasetConfig::default()
    });
    // Full-precision activations keep this test fast and stable.
    let mut model = resnet::build(
        &MicroResNetConfig {
            in_channels: 3,
            classes: 4,
            base_channels: 8,
            binary_activations: false,
            seed: 1,
        },
        NormVariant::proposed(),
    )
    .unwrap();
    let mut optimizer = Adam::new(0.01);
    fit_classifier(
        &mut model,
        &mut optimizer,
        &split.train_inputs,
        &split.train_labels,
        &config(8),
    )
    .unwrap();
    let accuracy = BayesianPredictor::new(8)
        .predict_classification(&mut model, &split.test_inputs)
        .unwrap()
        .accuracy(&split.test_labels)
        .unwrap();
    assert!(
        accuracy > 0.5,
        "proposed image classifier should beat 25% chance clearly, got {accuracy}"
    );
}

#[test]
fn audio_classifier_learns_above_chance() {
    let split = audio::generate(&AudioDatasetConfig {
        classes: 4,
        length: 128,
        train_per_class: 20,
        test_per_class: 8,
        ..AudioDatasetConfig::default()
    });
    let mut model = m5::build(
        &M5NetConfig {
            classes: 4,
            base_channels: 8,
            seed: 2,
        },
        NormVariant::proposed(),
    )
    .unwrap();
    let mut optimizer = Adam::new(0.01);
    fit_classifier(
        &mut model,
        &mut optimizer,
        &split.train_inputs,
        &split.train_labels,
        &config(8),
    )
    .unwrap();
    let accuracy = BayesianPredictor::new(8)
        .predict_classification(&mut model, &split.test_inputs)
        .unwrap()
        .accuracy(&split.test_labels)
        .unwrap();
    assert!(
        accuracy > 0.5,
        "proposed audio classifier should beat 25% chance clearly, got {accuracy}"
    );
}

#[test]
fn segmentation_model_beats_trivial_predictor() {
    let split = segmentation::generate(&SegmentationDatasetConfig {
        size: 16,
        vessels_per_image: 2,
        train_images: 32,
        test_images: 8,
        ..SegmentationDatasetConfig::default()
    });
    let mut model = unet::build(
        &MicroUNetConfig {
            base_channels: 8,
            quantized_activations: true,
            seed: 3,
        },
        NormVariant::proposed(),
    )
    .unwrap();
    let mut optimizer = Adam::new(0.01);
    fit_segmenter(
        &mut model,
        &mut optimizer,
        &split.train_inputs,
        &split.train_targets,
        &config(10),
    )
    .unwrap();
    // Mean probability over a few stochastic passes.
    let mut mean_probs = Tensor::zeros(split.test_targets.dims());
    let passes = 6;
    for _ in 0..passes {
        let logits = model.forward(&split.test_inputs, Mode::Eval).unwrap();
        mean_probs
            .add_assign(&logits.map(|z| 1.0 / (1.0 + (-z).exp())))
            .unwrap();
    }
    let mean_probs = mean_probs.scale(1.0 / passes as f32);
    let miou = metrics::mean_iou(&mean_probs, &split.test_targets, 0.5).unwrap();
    // An all-background predictor scores the background IoU only (≈ 0.5 mean
    // IoU minus the foreground fraction); the trained model must do better.
    let all_background = Tensor::zeros(split.test_targets.dims());
    let trivial = metrics::mean_iou(&all_background, &split.test_targets, 0.5).unwrap();
    assert!(
        miou > trivial,
        "trained U-Net mIoU {miou} should beat the all-background baseline {trivial}"
    );
}

#[test]
fn lstm_forecaster_beats_predicting_the_mean() {
    let (split, _series) = timeseries::generate(&Co2DatasetConfig {
        months: 240,
        window: 12,
        ..Co2DatasetConfig::default()
    });
    let mut model = lstm::build(
        &LstmForecasterConfig {
            input_features: 1,
            hidden: 16,
            seed: 4,
        },
        NormVariant::proposed(),
    )
    .unwrap();
    let mut optimizer = Adam::new(0.01);
    fit_regressor(
        &mut model,
        &mut optimizer,
        &split.train_inputs,
        &split.train_targets,
        &config(12),
    )
    .unwrap();
    let prediction = BayesianPredictor::new(8)
        .predict_regression(&mut model, &split.test_inputs)
        .unwrap();
    let rmse = prediction.rmse(&split.test_targets).unwrap();
    // Trivial baseline: predict the training-target mean everywhere.
    let mean_value = split.train_targets.mean();
    let trivial = metrics::rmse(
        &Tensor::full(split.test_targets.dims(), mean_value),
        &split.test_targets,
    )
    .unwrap();
    assert!(
        rmse < trivial,
        "LSTM RMSE {rmse} should beat the constant-mean baseline {trivial}"
    );
}

#[test]
fn conventional_and_proposed_variants_reach_similar_clean_accuracy() {
    // Table I claim: the proposed method does not sacrifice clean accuracy.
    let split = images::generate(&ImageDatasetConfig {
        classes: 4,
        size: 16,
        train_per_class: 20,
        test_per_class: 8,
        ..ImageDatasetConfig::default()
    });
    let mut accuracies = Vec::new();
    for variant in [NormVariant::Conventional, NormVariant::proposed()] {
        let mut model = resnet::build(
            &MicroResNetConfig {
                in_channels: 3,
                classes: 4,
                base_channels: 8,
                binary_activations: false,
                seed: 5,
            },
            variant,
        )
        .unwrap();
        let mut optimizer = Adam::new(0.01);
        fit_classifier(
            &mut model,
            &mut optimizer,
            &split.train_inputs,
            &split.train_labels,
            &config(8),
        )
        .unwrap();
        let passes = if variant.is_bayesian() { 8 } else { 1 };
        accuracies.push(
            BayesianPredictor::new(passes)
                .predict_classification(&mut model, &split.test_inputs)
                .unwrap()
                .accuracy(&split.test_labels)
                .unwrap(),
        );
    }
    let (conventional, proposed) = (accuracies[0], accuracies[1]);
    // "Comparable" at this tiny training budget: clearly above chance (0.25)
    // and within a broad band of the conventional baseline. The quantitative
    // comparison at realistic training budgets lives in the Table I
    // experiment (crates/bench, EXPERIMENTS.md).
    assert!(
        proposed > 0.4,
        "proposed variant should clearly beat chance, got {proposed}"
    );
    assert!(
        proposed >= conventional - 0.35,
        "proposed ({proposed}) should be comparable to conventional ({conventional})"
    );
}
