//! Cross-crate integration tests of the telemetry layer: enabling
//! instrumentation must not change a single output bit on any engine, must
//! not allocate in the steady state (verified with a counting global
//! allocator), and the chrome-trace export must be well-formed with balanced
//! begin/end events.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;

use invnorm::prelude::*;
use invnorm_imc::{LineOrientation, TileShape};
use invnorm_nn::activation::Relu;
use invnorm_nn::conv::Conv2d;
use invnorm_nn::pool::MaxPool2d;
use invnorm_nn::reshape::Flatten;

/// A pass-through allocator counting this thread's allocations, so the
/// "telemetry is allocation-free in the steady state" claim is enforced by
/// the test harness rather than asserted by inspection.
struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

fn thread_allocations() -> usize {
    ALLOCATIONS.with(|c| c.get())
}

// SAFETY: pure pass-through to `System` plus a thread-local counter bump;
// every allocator contract (layout fidelity, no unwinding, pointer validity)
// is inherited unchanged from `System`.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller's layout obligations forwarded verbatim to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        // SAFETY: same contract as the outer call, delegated to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller's layout obligations forwarded verbatim to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the outer call, delegated to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller's layout obligations forwarded verbatim to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        // SAFETY: same contract as the outer call, delegated to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller's layout obligations forwarded verbatim to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        // SAFETY: same contract as the outer call, delegated to `System`.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The telemetry enable flag, accumulators and rings are process-global, and
/// the test harness runs `#[test]`s concurrently — every test that toggles
/// or reads telemetry state holds this lock for its whole body.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Restores the disabled default even when a test panics, so one failure
/// does not cascade into bit-identity failures elsewhere.
struct DisableOnDrop;

impl Drop for DisableOnDrop {
    fn drop(&mut self) {
        Telemetry::disable();
        Telemetry::reset();
    }
}

/// All eight fault models applicable to f32 weights (BinaryBitFlip needs a
/// binarized network and is covered by the imc crate's own tests).
fn all_faults() -> [FaultModel; 8] {
    let tile = TileShape { rows: 4, cols: 4 };
    [
        FaultModel::AdditiveVariation { sigma: 0.2 },
        FaultModel::MultiplicativeVariation { sigma: 0.15 },
        FaultModel::UniformNoise { strength: 0.1 },
        FaultModel::BitFlip {
            rate: 0.05,
            bits: 8,
        },
        FaultModel::StuckAt { rate: 0.1 },
        FaultModel::Drift {
            nu: 0.05,
            time_ratio: 10.0,
        },
        FaultModel::LineDefect {
            orientation: LineOrientation::Row,
            rate: 0.2,
            tile,
        },
        FaultModel::CorrelatedDrift {
            nu: 0.05,
            time_ratio: 10.0,
            sigma_nu: 0.3,
            tile,
        },
    ]
}

/// A small CNN exercising conv (im2col + pack), pooling and a dense head.
fn cnn(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    Sequential::new()
        .with(Box::new(Conv2d::new(2, 4, 3, 1, 1, &mut rng)))
        .with(Box::new(Relu::new()))
        .with(Box::new(MaxPool2d::new(2)))
        .with(Box::new(Flatten::new()))
        .with(Box::new(Linear::new(4 * 4 * 4, 3, &mut rng)))
}

fn assert_bits_equal(baseline: &[f32], instrumented: &[f32], what: &str) {
    assert_eq!(baseline.len(), instrumented.len(), "{what}: run count");
    let identical = baseline
        .iter()
        .zip(instrumented.iter())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "{what}: {baseline:?} vs {instrumented:?}");
}

#[test]
fn telemetry_is_bit_invisible_on_all_five_engines() {
    let _guard = telemetry_lock();
    let _restore = DisableOnDrop;
    let x = Tensor::randn(&[2, 2, 8, 8], 0.0, 1.0, &mut Rng::seed_from(11));
    let engine = MonteCarloEngine::new(6, 0xD1CE);
    let metric = |out: &Tensor| Ok(out.abs().mean());
    for fault in all_faults() {
        // One pass per engine with telemetry disabled, then the exact same
        // simulation instrumented; per-run metrics must match bit for bit.
        let mut results: [Option<[Vec<f32>; 5]>; 2] = [None, None];
        for (slot, enabled) in [(0usize, false), (1usize, true)] {
            if enabled {
                Telemetry::reset();
                Telemetry::enable();
            } else {
                Telemetry::disable();
            }
            let xc = x.clone();
            let mut net = cnn(23);
            let sequential = engine
                .run(&mut net, fault, |n| {
                    Ok(n.forward(&xc, Mode::Eval)?.abs().mean())
                })
                .unwrap();
            let parallel = engine
                .run_parallel(
                    || cnn(23),
                    fault,
                    |m: &mut Sequential| Ok(m.forward(&x, Mode::Eval)?.abs().mean()),
                    2,
                )
                .unwrap();
            let batched = engine
                .run_batched(|| cnn(23), fault, &x, metric, 4, 2)
                .unwrap();
            let planned = engine
                .run_planned(|| cnn(23), fault, &x, metric, 2)
                .unwrap();
            let fused = engine
                .run_planned_batched(|| cnn(23), fault, &x, metric, 4, 2)
                .unwrap();
            assert_eq!(sequential.telemetry.is_some(), enabled);
            assert_eq!(fused.telemetry.is_some(), enabled);
            results[slot] = Some([
                sequential.per_run,
                parallel.per_run,
                batched.per_run,
                planned.per_run,
                fused.per_run,
            ]);
            if enabled {
                Telemetry::disable();
            }
        }
        let [baseline, instrumented] = results;
        let (baseline, instrumented) = (baseline.unwrap(), instrumented.unwrap());
        for (i, name) in [
            "run",
            "run_parallel",
            "run_batched",
            "run_planned",
            "run_planned_batched",
        ]
        .iter()
        .enumerate()
        {
            assert_bits_equal(&baseline[i], &instrumented[i], &format!("{name} {fault:?}"));
        }
    }
}

#[test]
fn enabled_telemetry_is_allocation_free_in_steady_state() {
    let _guard = telemetry_lock();
    let _restore = DisableOnDrop;
    let mut net = cnn(17);
    let x = Tensor::randn(&[2, 2, 8, 8], 0.0, 1.0, &mut Rng::seed_from(18));
    let batch = 4usize;
    let mut plan = Plan::compile_batched(&mut net, &x, batch).unwrap();
    let mut rngs: Vec<Rng> = (0..batch).map(|b| Rng::seed_from(b as u64)).collect();
    let injector = WeightFaultInjector::new(FaultModel::StuckAt { rate: 0.1 }).unwrap();

    Telemetry::reset();
    Telemetry::enable();
    // Warm up with instrumentation live: the calling thread's span ring is
    // materialized (its one-time allocation happens here) and the plan's
    // caches reach steady state.
    for round in 0..3u64 {
        for (b, slot) in rngs.iter_mut().enumerate() {
            *slot = Rng::seed_from(100 * round + b as u64);
        }
        injector.realize_plan_batch(&mut net, &mut rngs).unwrap();
        plan.forward(&mut net).unwrap();
    }

    // Steady state: spans (Repack/Gemm/Im2col inside the planned forward,
    // Inject inside the injector) and counters keep firing on every round,
    // and none of it may touch the heap.
    let before = thread_allocations();
    for round in 3..6u64 {
        for (b, slot) in rngs.iter_mut().enumerate() {
            *slot = Rng::seed_from(100 * round + b as u64);
        }
        injector.realize_plan_batch(&mut net, &mut rngs).unwrap();
        plan.forward(&mut net).unwrap();
    }
    let allocations = thread_allocations() - before;
    Telemetry::disable();
    assert_eq!(
        allocations, 0,
        "steady-state planned-batched forwards with telemetry enabled must \
         perform zero heap allocations"
    );
    // The instrumentation did observe the loop (spans recorded, cells
    // scattered by the sparse stuck-at realizations).
    assert!(Telemetry::phase_ns(Phase::Inject) > 0);
    assert!(Telemetry::counter(Counter::CellScatters) > 0);
    net.plan_end();
}

#[test]
fn chrome_trace_export_is_well_formed_and_balanced() {
    let _guard = telemetry_lock();
    let _restore = DisableOnDrop;
    Telemetry::reset();
    Telemetry::enable();
    let x = Tensor::randn(&[2, 2, 8, 8], 0.0, 1.0, &mut Rng::seed_from(31));
    let engine = MonteCarloEngine::new(6, 0xACE);
    let summary = engine
        .run_planned_batched(
            || cnn(29),
            FaultModel::AdditiveVariation { sigma: 0.2 },
            &x,
            |out| Ok(out.abs().mean()),
            4,
            1,
        )
        .unwrap();
    Telemetry::disable();
    let trace = Telemetry::chrome_trace();

    assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(trace.ends_with("]}"));
    let begins = trace.matches("\"ph\":\"B\"").count();
    let ends = trace.matches("\"ph\":\"E\"").count();
    assert!(begins > 0, "trace recorded no spans");
    assert_eq!(begins, ends, "unbalanced B/E events");
    for name in ["compile", "inject", "forward", "gemm", "metric"] {
        assert!(
            trace.contains(&format!("\"name\":\"{name}\"")),
            "trace missing phase {name}"
        );
    }

    // The engine attached a run report: the wall clock covers the phases it
    // brackets, the convergence stream has one point per chip instance, and
    // the rendered table/JSON mention every phase.
    let report = summary
        .telemetry
        .expect("enabled run must attach telemetry");
    assert!(report.wall_ns > 0);
    assert!(report.phase_ns(Phase::Forward) > 0);
    assert!(report.phase_count(Phase::Forward) > 0);
    assert_eq!(report.convergence.len(), summary.per_run.len());
    let last = report.convergence.last().unwrap();
    assert_eq!(last.runs, summary.per_run.len() as u64);
    assert!((last.mean - summary.mean).abs() <= 1e-6 * summary.mean.abs().max(1.0));
    let table = report.to_string();
    let json = report.to_json();
    for phase in invnorm_tensor::telemetry::PHASES {
        assert!(table.contains(phase.name()), "table missing {phase}");
        assert!(json.contains(phase.name()), "json missing {phase}");
    }
}

#[test]
fn ladder_outcome_display_reports_engine_and_fallbacks() {
    let _guard = telemetry_lock();
    let _restore = DisableOnDrop;
    Telemetry::reset();
    Telemetry::enable();
    let x = Tensor::randn(&[2, 2, 8, 8], 0.0, 1.0, &mut Rng::seed_from(41));
    // A per-inference lifetime forces the direct engines to be skipped with
    // a typed reason if the ladder ever degrades past the planned rungs;
    // with a plannable CNN the fastest rung runs and no fallback fires.
    let outcome = MonteCarloEngine::new(4, 7)
        .run_auto(
            || cnn(37),
            FaultModel::AdditiveVariation { sigma: 0.1 },
            &x,
            |out| Ok(out.abs().mean()),
            2,
            1,
            DegradationPolicy::Graceful,
        )
        .unwrap();
    Telemetry::disable();
    assert_eq!(outcome.engine, EngineKind::PlannedBatched);
    let rendered = outcome.to_string();
    assert!(rendered.contains("run_planned_batched"), "{rendered}");
    assert!(rendered.contains("4 runs"), "{rendered}");
    // And a synthetic fallback renders with its reason.
    let step = FallbackStep {
        engine: EngineKind::Batched,
        reason: invnorm_imc::FallbackReason::Lifetime,
    };
    let line = step.to_string();
    assert!(line.contains("run_batched"), "{line}");
    assert!(line.contains("lifetime"), "{line}");
}
