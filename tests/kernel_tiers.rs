//! Bit-identity test matrix across forced SIMD kernel tiers.
//!
//! The runtime dispatcher (`invnorm_tensor::dispatch`) makes the kernel tier
//! the *only* reproducibility boundary of the stack. These tests pin each
//! tier with `dispatch::force` and verify the contract end to end:
//!
//! * f32 GEMM matches a naive oracle on every tier, and the AVX2 and AVX-512
//!   kernels (which share the same per-element FMA accumulation order) are
//!   **bit-identical to each other** — portable is the one divergent tier.
//! * Quantized GEMM is exact integer arithmetic and therefore bit-identical
//!   across **all** tiers.
//! * The `vecmath` elementwise kernels are per-lane and bit-identical across
//!   all tiers.
//! * A Monte-Carlo engine-ladder sweep under `force(Portable)` and
//!   `force(Avx2)` is internally bit-identical across every engine, and each
//!   summary records the tier it executed under.
//!
//! The AVX-512 column of the matrix runs when the host supports it and is
//! skipped **loudly** (a stderr note) otherwise.
//!
//! `dispatch::force` is process-global, so every test here serializes on one
//! mutex and restores detection-based dispatch before releasing it.

use std::sync::{Mutex, MutexGuard};

use invnorm::prelude::*;
use invnorm_nn::activation::{Relu, Sigmoid};
use invnorm_nn::conv::Conv2d;
use invnorm_nn::norm::GroupNorm;
use invnorm_nn::pool::MaxPool2d;
use invnorm_nn::reshape::Flatten;
use invnorm_tensor::dispatch::{self, KernelTier};
use invnorm_tensor::{gemm, qgemm, vecmath};

/// Serializes all tests in this binary: the forced tier is process-global.
static TIER_LOCK: Mutex<()> = Mutex::new(());

fn tier_lock() -> MutexGuard<'static, ()> {
    TIER_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Restores detection/env-based dispatch when a test exits (also on panic).
struct ResetOnDrop;

impl Drop for ResetOnDrop {
    fn drop(&mut self) {
        dispatch::reset();
    }
}

/// The tiers this host can execute, loudly noting a skipped AVX-512 column.
fn testable_tiers() -> Vec<KernelTier> {
    let mut tiers = vec![KernelTier::Portable];
    let detected = dispatch::detected();
    for tier in [KernelTier::Avx2, KernelTier::Avx512] {
        if tier <= detected {
            tiers.push(tier);
        } else {
            eprintln!(
                "kernel_tiers: SKIPPING {} tests — host only supports {}",
                tier.name(),
                detected.name()
            );
        }
    }
    tiers
}

/// Naive f64-accumulated matmul oracle (independent of every kernel).
fn matmul_oracle(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += f64::from(a[i * k + p]) * f64::from(b[p * n + j]);
            }
            out[i * n + j] = acc as f32;
        }
    }
    out
}

/// Naive integer qgemm oracle.
fn qmatmul_oracle(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += i32::from(a[i * k + p]) * i32::from(b[p * n + j]);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

#[test]
fn f32_gemm_matches_oracle_on_every_tier_and_fma_tiers_agree_bitwise() {
    let _guard = tier_lock();
    let _restore = ResetOnDrop;
    let mut rng = Rng::seed_from(0xF32);
    let shapes = [
        (1usize, 1usize, 1usize),
        (7, 13, 5),
        (33, 65, 17),
        (130, 47, 300),
    ];
    for &(m, n, k) in &shapes {
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal(0.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal(0.0, 1.0)).collect();
        let oracle = matmul_oracle(m, n, k, &a, &b);
        let mut per_tier: Vec<(KernelTier, Vec<f32>)> = Vec::new();
        for tier in testable_tiers() {
            dispatch::force(tier);
            let mut c = vec![0.0f32; m * n];
            gemm::gemm(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut c);
            for (i, (&got, &want)) in c.iter().zip(oracle.iter()).enumerate() {
                assert!(
                    (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "{} gemm {m}x{n}x{k} [{i}]: {got} vs oracle {want}",
                    tier.name()
                );
            }
            per_tier.push((tier, c));
        }
        // AVX2 and AVX-512 share the accumulation order: bit-identical.
        let find = |t: KernelTier| per_tier.iter().find(|(tt, _)| *tt == t).map(|(_, c)| c);
        if let (Some(c2), Some(c512)) = (find(KernelTier::Avx2), find(KernelTier::Avx512)) {
            let same = c2
                .iter()
                .zip(c512.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                same,
                "avx2 and avx512 f32 gemm must agree bitwise ({m}x{n}x{k})"
            );
        }
    }
}

#[test]
fn qgemm_is_bit_exact_across_all_tiers() {
    let _guard = tier_lock();
    let _restore = ResetOnDrop;
    let mut rng = Rng::seed_from(0x18);
    let shapes = [
        (1usize, 1usize, 1usize),
        (5, 33, 130),
        (13, 29, 31),
        (130, 9, 270),
    ];
    for &(m, n, k) in &shapes {
        let a: Vec<i8> = (0..m * k)
            .map(|_| (rng.normal(0.0, 48.0).round().clamp(-127.0, 127.0)) as i8)
            .collect();
        let b: Vec<i8> = (0..k * n)
            .map(|_| (rng.normal(0.0, 48.0).round().clamp(-127.0, 127.0)) as i8)
            .collect();
        let oracle = qmatmul_oracle(m, n, k, &a, &b);
        for tier in testable_tiers() {
            dispatch::force(tier);
            let mut c = vec![0i32; m * n];
            qgemm::qgemm(false, false, m, n, k, &a, &b, false, &mut c);
            assert_eq!(c, oracle, "{} qgemm {m}x{n}x{k}", tier.name());
        }
    }
}

#[test]
fn vecmath_is_bit_identical_across_all_tiers() {
    let _guard = tier_lock();
    let _restore = ResetOnDrop;
    let mut rng = Rng::seed_from(0x7EC);
    let src: Vec<f32> = (0..1031).map(|_| rng.normal(0.0, 3.0)).collect();
    let run_all = || {
        let n = src.len();
        let mut out = Vec::new();
        let mut buf = vec![0.0f32; n];
        vecmath::relu(&src, &mut buf);
        out.push(buf.clone());
        vecmath::leaky_relu(&src, &mut buf, 0.01);
        out.push(buf.clone());
        vecmath::hardtanh(&src, &mut buf);
        out.push(buf.clone());
        vecmath::sign_ste(&src, &mut buf);
        out.push(buf.clone());
        vecmath::sigmoid(&src, &mut buf);
        out.push(buf.clone());
        vecmath::tanh(&src, &mut buf);
        out.push(buf.clone());
        vecmath::exp_sub(&src, &mut buf, 1.5);
        let denom = buf.iter().sum::<f32>();
        vecmath::div_scalar_mut(&mut buf, denom);
        out.push(buf.clone());
        vecmath::normalize_affine(&src, &mut buf, 0.2, 1.3, 0.9, -0.1);
        out.push(buf.clone());
        out
    };
    let mut baseline: Option<(KernelTier, Vec<Vec<f32>>)> = None;
    for tier in testable_tiers() {
        dispatch::force(tier);
        let got = run_all();
        match &baseline {
            None => baseline = Some((tier, got)),
            Some((base_tier, base)) => {
                for (op, (b, g)) in base.iter().zip(got.iter()).enumerate() {
                    let same = b
                        .iter()
                        .zip(g.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(
                        same,
                        "vecmath op #{op}: {} and {} disagree bitwise",
                        base_tier.name(),
                        tier.name()
                    );
                }
            }
        }
    }
}

/// A small plannable CNN exercising GEMM (conv im2col + linear), the
/// vectorized ReLU/sigmoid activations and the GroupNorm normalize pass.
fn cnn(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    Sequential::new()
        .with(Box::new(Conv2d::new(2, 4, 3, 1, 1, &mut rng)))
        .with(Box::new(GroupNorm::new(4, 2).unwrap()))
        .with(Box::new(Relu::new()))
        .with(Box::new(MaxPool2d::new(2)))
        .with(Box::new(Flatten::new()))
        .with(Box::new(Linear::new(4 * 4 * 4, 3, &mut rng)))
        .with(Box::new(Sigmoid::new()))
}

#[test]
fn engine_ladder_is_internally_bit_identical_under_each_forced_tier() {
    let _guard = tier_lock();
    let _restore = ResetOnDrop;
    let x = Tensor::randn(&[2, 2, 8, 8], 0.0, 1.0, &mut Rng::seed_from(11));
    let engine = MonteCarloEngine::new(4, 0x5EED);
    let fault = FaultModel::AdditiveVariation { sigma: 0.3 };
    let metric = |out: &Tensor| Ok(out.abs().mean());
    for tier in testable_tiers() {
        dispatch::force(tier);
        let xc = x.clone();
        let mut net = cnn(23);
        let sequential = engine
            .run(&mut net, fault, |n| {
                Ok(n.forward(&xc, Mode::Eval)?.abs().mean())
            })
            .unwrap();
        let parallel = engine
            .run_parallel(
                || cnn(23),
                fault,
                |m: &mut Sequential| Ok(m.forward(&x, Mode::Eval)?.abs().mean()),
                3,
            )
            .unwrap();
        let batched = engine
            .run_batched(|| cnn(23), fault, &x, metric, 4, 2)
            .unwrap();
        let planned = engine
            .run_planned(|| cnn(23), fault, &x, metric, 2)
            .unwrap();
        let fused = engine
            .run_planned_batched(|| cnn(23), fault, &x, metric, 2, 2)
            .unwrap();
        // Every summary records the forced tier as its provenance.
        for (name, s) in [
            ("run", &sequential),
            ("run_parallel", &parallel),
            ("run_batched", &batched),
            ("run_planned", &planned),
            ("run_planned_batched", &fused),
        ] {
            assert_eq!(
                s.kernel_tier,
                tier.name(),
                "{name} summary must record the forced tier"
            );
            assert_eq!(s.per_run.len(), 4, "{name} run count");
        }
        // Within the tier, every engine (different batch sizes and thread
        // counts included) produces bit-identical per-run metrics.
        for (name, s) in [
            ("run_parallel", &parallel),
            ("run_batched", &batched),
            ("run_planned", &planned),
            ("run_planned_batched", &fused),
        ] {
            let same = sequential
                .per_run
                .iter()
                .zip(s.per_run.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                same,
                "{} tier: {name} diverges from sequential: {:?} vs {:?}",
                tier.name(),
                sequential.per_run,
                s.per_run
            );
        }
    }
}

#[test]
fn forced_tier_survives_reset_and_redetection() {
    let _guard = tier_lock();
    let _restore = ResetOnDrop;
    dispatch::force(KernelTier::Portable);
    assert_eq!(dispatch::active(), KernelTier::Portable);
    dispatch::reset();
    // After reset, detection (possibly clamped by the environment) wins
    // again; whatever it picks must be within the host's capability.
    assert!(dispatch::active() <= dispatch::detected());
}
