//! Integration tests for reproducibility guarantees and checkpointing:
//! identical seeds must give identical datasets, models, training
//! trajectories and Monte-Carlo fault simulations, and checkpoints must move
//! trained weights between independently built model instances.

use invnorm::prelude::*;
use invnorm_datasets::images::{self, ImageDatasetConfig};
use invnorm_models::resnet::{self, MicroResNetConfig};
use invnorm_nn::checkpoint;
use invnorm_nn::train::{fit_classifier, TrainConfig};

fn dataset() -> invnorm_datasets::ClassificationSplit {
    images::generate(&ImageDatasetConfig {
        classes: 3,
        size: 12,
        train_per_class: 10,
        test_per_class: 4,
        ..ImageDatasetConfig::default()
    })
}

fn model_config() -> MicroResNetConfig {
    MicroResNetConfig {
        in_channels: 3,
        classes: 3,
        base_channels: 8,
        binary_activations: false,
        seed: 77,
    }
}

fn train(split: &invnorm_datasets::ClassificationSplit, epochs: usize) -> BuiltModel {
    let mut model = resnet::build(&model_config(), NormVariant::Conventional).unwrap();
    let mut optimizer = Adam::new(0.01);
    fit_classifier(
        &mut model,
        &mut optimizer,
        &split.train_inputs,
        &split.train_labels,
        &TrainConfig {
            epochs,
            batch_size: 8,
            shuffle: true,
            seed: 5,
        },
    )
    .unwrap();
    model
}

#[test]
fn identical_seeds_give_identical_training_trajectories() {
    let split = dataset();
    let mut a = train(&split, 3);
    let mut b = train(&split, 3);
    let out_a = a.forward(&split.test_inputs, Mode::Eval).unwrap();
    let out_b = b.forward(&split.test_inputs, Mode::Eval).unwrap();
    assert!(
        out_a.approx_eq(&out_b, 1e-6),
        "same seeds must reproduce the same trained network"
    );
}

#[test]
fn monte_carlo_fault_simulation_is_reproducible() {
    let split = dataset();
    let mut model = train(&split, 2);
    let run = |model: &mut BuiltModel| {
        MonteCarloEngine::new(6, 99)
            .run(model, FaultModel::BitFlip { rate: 0.1, bits: 8 }, |net| {
                Ok(net.forward(&split.test_inputs, Mode::Eval)?.mean())
            })
            .unwrap()
            .per_run
    };
    let first = run(&mut model);
    let second = run(&mut model);
    assert_eq!(
        first, second,
        "same engine seed must replay the same faults"
    );
}

#[test]
fn checkpoint_transfers_trained_weights_between_instances() {
    let split = dataset();
    let mut trained = train(&split, 3);
    // Compare in Train mode: BatchNorm then normalizes with the (deterministic)
    // statistics of the evaluation batch itself, so the comparison depends only
    // on the learnable parameters a checkpoint carries (running statistics are
    // not part of the checkpoint by design).
    let reference = trained.forward(&split.test_inputs, Mode::Train).unwrap();
    let snapshot = checkpoint::save(&mut trained);

    // A freshly built (untrained) model behaves differently until the
    // checkpoint is loaded into it.
    let mut fresh = resnet::build(&model_config(), NormVariant::Conventional).unwrap();
    let before = fresh.forward(&split.test_inputs, Mode::Train).unwrap();
    assert!(!before.approx_eq(&reference, 1e-4));
    checkpoint::load(&mut fresh, &snapshot).unwrap();
    let after = fresh.forward(&split.test_inputs, Mode::Train).unwrap();
    assert!(after.approx_eq(&reference, 1e-4));

    // Byte round trip preserves behaviour too.
    let parsed = invnorm_nn::checkpoint::Checkpoint::from_bytes(&snapshot.to_bytes()).unwrap();
    let mut another = resnet::build(&model_config(), NormVariant::Conventional).unwrap();
    checkpoint::load(&mut another, &parsed).unwrap();
    let again = another.forward(&split.test_inputs, Mode::Train).unwrap();
    assert!(again.approx_eq(&reference, 1e-4));
}

#[test]
fn checkpoint_rejects_architecturally_different_model() {
    let split = dataset();
    let mut trained = train(&split, 1);
    let snapshot = checkpoint::save(&mut trained);
    // Different base width → different parameter shapes → load must fail.
    let mut wider = resnet::build(
        &MicroResNetConfig {
            base_channels: 16,
            ..model_config()
        },
        NormVariant::Conventional,
    )
    .unwrap();
    assert!(checkpoint::load(&mut wider, &snapshot).is_err());
}
