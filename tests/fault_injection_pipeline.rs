//! Cross-crate integration tests of the fault-injection and uncertainty
//! pipeline: quantization → crossbar/fault models → Monte-Carlo simulation →
//! Bayesian metrics, exercised through the public API of the umbrella crate.

use invnorm::prelude::*;
use invnorm_imc::crossbar::{CrossbarArray, CrossbarConfig};
use invnorm_nn::activation::Relu;
use invnorm_nn::train::{fit_classifier, TrainConfig};
use invnorm_quant::fake_quant::quantize_layer_weights;
use invnorm_tensor::ops;

/// Builds and trains a small stochastic classifier on separable blobs.
fn trained_classifier(rng: &mut Rng) -> (Sequential, Tensor, Vec<usize>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for class in 0..3usize {
        let center = class as f32 * 2.0 - 2.0;
        for _ in 0..30 {
            rows.push(Tensor::randn(&[6], center, 0.5, rng));
            labels.push(class);
        }
    }
    let inputs = Tensor::stack(&rows).unwrap();
    let mut net = Sequential::new();
    net.push(Box::new(Linear::new(6, 24, rng)));
    net.push(Box::new(
        InvertedNorm::new(24, &InvNormConfig::default(), rng).unwrap(),
    ));
    net.push(Box::new(Relu::new()));
    net.push(Box::new(Linear::new(24, 3, rng)));
    let mut optimizer = Adam::new(0.02);
    fit_classifier(
        &mut net,
        &mut optimizer,
        &inputs,
        &labels,
        &TrainConfig {
            epochs: 25,
            batch_size: 16,
            ..TrainConfig::default()
        },
    )
    .unwrap();
    (net, inputs, labels)
}

#[test]
fn accuracy_degrades_monotonically_in_expectation_with_fault_strength() {
    let mut rng = Rng::seed_from(10);
    let (mut net, inputs, labels) = trained_classifier(&mut rng);
    let engine = MonteCarloEngine::new(15, 3);
    let mut means = Vec::new();
    for sigma in [0.0f32, 0.3, 1.0, 2.5] {
        let inputs_ref = &inputs;
        let labels_ref = &labels;
        let summary = engine
            .run(&mut net, FaultModel::AdditiveVariation { sigma }, |n| {
                BayesianPredictor::new(6)
                    .predict_classification(n, inputs_ref)?
                    .accuracy(labels_ref)
            })
            .unwrap();
        means.push(summary.mean);
    }
    // Clean accuracy is high; the strongest fault clearly hurts.
    assert!(means[0] > 0.9, "clean accuracy {means:?}");
    assert!(
        means[3] < means[0],
        "very strong faults must reduce accuracy: {means:?}"
    );
}

#[test]
fn bit_flips_on_quantized_weights_round_trip_through_injection() {
    let mut rng = Rng::seed_from(11);
    let (mut net, inputs, _labels) = trained_classifier(&mut rng);
    // Quantize to 8 bits as deployed, then check inject/restore invariants.
    let touched = quantize_layer_weights(&mut net, &QuantConfig::int8()).unwrap();
    assert!(touched > 0);
    let _ = &inputs;
    // The network contains stochastic (affine-dropout) layers, so compare the
    // parameter values themselves rather than forward outputs.
    let weights_of = |net: &mut Sequential| {
        let mut v = Vec::new();
        net.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
        v
    };
    let clean_weights = weights_of(&mut net);

    let mut injector =
        WeightFaultInjector::new(FaultModel::BitFlip { rate: 0.2, bits: 8 }).unwrap();
    injector.inject(&mut net, &mut rng).unwrap();
    let faulty_weights = weights_of(&mut net);
    injector.restore(&mut net).unwrap();
    let restored_weights = weights_of(&mut net);

    assert_ne!(clean_weights, faulty_weights);
    assert_eq!(clean_weights, restored_weights);
}

#[test]
fn uncertainty_rises_under_distribution_shift() {
    let mut rng = Rng::seed_from(12);
    let (mut net, inputs, labels) = trained_classifier(&mut rng);
    let predictor = BayesianPredictor::new(12);
    let id = predictor.predict_classification(&mut net, &inputs).unwrap();
    let detector = OodDetector::calibrate(&id, &labels).unwrap();

    // Shift the inputs far outside the training distribution.
    let shifted = inputs.shift(6.0);
    let ood = predictor
        .predict_classification(&mut net, &shifted)
        .unwrap();
    assert!(
        ood.nll(&labels).unwrap() > id.nll(&labels).unwrap(),
        "NLL should increase on shifted data"
    );
    let detection = detector.detection_rate_for(&ood, &labels).unwrap();
    let false_positives = detector.detection_rate_for(&id, &labels).unwrap();
    assert!(
        detection > false_positives,
        "OOD detection rate ({detection}) should exceed the ID false-positive rate ({false_positives})"
    );
}

#[test]
fn crossbar_deployment_approximates_digital_layer() {
    let mut rng = Rng::seed_from(13);
    // Program a trained Linear layer's weights into the crossbar model and
    // compare the analog MVM against the digital computation.
    let weights = Tensor::randn(&[12, 8], 0.0, 0.4, &mut rng);
    let inputs = Tensor::randn(&[5, 12], 0.0, 1.0, &mut rng);
    let digital = ops::matmul(&inputs, &weights).unwrap();

    let ideal = CrossbarArray::program(
        &weights,
        CrossbarConfig {
            conductance_levels: 256,
            dac_bits: 12,
            adc_bits: 12,
            programming_sigma: 0.0,
            // The default 64x64 tile would exceed this 12x8 matrix.
            tile_rows: 12,
            tile_cols: 8,
            ..CrossbarConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let analog = ideal.matvec(&inputs).unwrap();
    let relative_error = analog.sub(&digital).unwrap().abs().mean() / digital.abs().mean();
    assert!(
        relative_error < 0.05,
        "ideal crossbar should track the digital MVM, relative error {relative_error}"
    );

    // Programming variation degrades the match — the effect the fault models
    // abstract.
    let noisy = CrossbarArray::program(
        &weights,
        CrossbarConfig {
            conductance_levels: 256,
            dac_bits: 12,
            adc_bits: 12,
            programming_sigma: 0.4,
            tile_rows: 12,
            tile_cols: 8,
            ..CrossbarConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let noisy_out = noisy.matvec(&inputs).unwrap();
    let noisy_error = noisy_out.sub(&digital).unwrap().abs().mean() / digital.abs().mean();
    assert!(noisy_error > relative_error);
}

#[test]
fn proposed_layer_is_more_robust_than_batchnorm_to_weighted_sum_shift() {
    // Mechanism-level integration check of the paper's core claim: with the
    // same classifier head, a network whose normalization is the proposed
    // inverted norm recovers from a global shift/scale of its input features,
    // while a BatchNorm network using frozen running statistics does not.
    let mut rng = Rng::seed_from(14);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    // The class signal is a *pattern across features* (first half high /
    // second half low, or the reverse), not a per-sample mean offset, so the
    // per-instance normalization of the inverted-norm layer preserves it.
    for class in 0..2usize {
        for _ in 0..40 {
            let mut features = [0.0f32; 8];
            for (j, f) in features.iter_mut().enumerate() {
                let sign = if (j < 4) == (class == 0) { 1.0 } else { -1.0 };
                *f = sign + rng.normal(0.0, 0.3);
            }
            rows.push(Tensor::from_slice(&features));
            labels.push(class);
        }
    }
    let inputs = Tensor::stack(&rows).unwrap();

    let build_and_train = |use_inverted: bool, rng: &mut Rng| -> Sequential {
        let mut net = Sequential::new();
        if use_inverted {
            // Deterministic configuration isolates the *mechanism* under test
            // (affine-before-per-instance-normalization) from the stochastic
            // dropout and random initialization.
            let config = InvNormConfig {
                drop_probability: 0.0,
                stochastic_eval: false,
                init: AffineInit::Conventional,
                ..InvNormConfig::default()
            };
            net.push(Box::new(InvertedNorm::new(8, &config, rng).unwrap()));
        } else {
            net.push(Box::new(invnorm_nn::norm::BatchNorm::new(8)));
        }
        net.push(Box::new(Linear::new(8, 2, rng)));
        let mut optimizer = Adam::new(0.05);
        fit_classifier(
            &mut net,
            &mut optimizer,
            &inputs,
            &labels,
            &TrainConfig {
                epochs: 20,
                batch_size: 16,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        net
    };

    let mut inverted = build_and_train(true, &mut rng);
    let mut batchnorm = build_and_train(false, &mut rng);

    // Simulate a fault-induced shift of the weighted sum: scale + offset.
    let shifted = inputs.scale(3.0).shift(4.0);
    let accuracy = |net: &mut Sequential, x: &Tensor| {
        BayesianPredictor::new(8)
            .predict_classification(net, x)
            .unwrap()
            .accuracy(&labels)
            .unwrap()
    };
    let inverted_shifted = accuracy(&mut inverted, &shifted);
    let batchnorm_shifted = accuracy(&mut batchnorm, &shifted);
    assert!(
        inverted_shifted >= batchnorm_shifted,
        "inverted norm ({inverted_shifted}) should tolerate the shift at least as well as BatchNorm ({batchnorm_shifted})"
    );
    assert!(
        inverted_shifted > 0.9,
        "inverted norm should fully recover from an affine shift, got {inverted_shifted}"
    );
}
