//! Cross-crate integration tests of the compiled inference-plan subsystem:
//! plan-vs-direct bit-identity for every model topology (f32 and quantized),
//! loud rejection of unsupported layers, and the zero-allocation guarantee
//! of steady-state planned forwards (verified with a counting global
//! allocator).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use invnorm::prelude::*;
use invnorm_models::lstm::LstmForecasterConfig;
use invnorm_models::m5::M5NetConfig;
use invnorm_models::resnet::MicroResNetConfig;
use invnorm_models::unet::MicroUNetConfig;
use invnorm_models::{lstm, m5, resnet, unet};
use invnorm_nn::activation::Relu;
use invnorm_nn::conv::Conv2d;
use invnorm_nn::pool::MaxPool2d;
use invnorm_nn::reshape::Flatten;

/// A pass-through allocator counting this thread's allocations, so the
/// steady-state zero-allocation claim of planned forwards is enforced by the
/// test harness rather than asserted by inspection.
struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

fn thread_allocations() -> usize {
    ALLOCATIONS.with(|c| c.get())
}

// SAFETY: pure pass-through to `System` plus a thread-local counter bump;
// every allocator contract (layout fidelity, no unwinding, pointer validity)
// is inherited unchanged from `System`.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller's layout obligations forwarded verbatim to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        // SAFETY: same contract as the outer call, delegated to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller's layout obligations forwarded verbatim to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the outer call, delegated to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller's layout obligations forwarded verbatim to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        // SAFETY: same contract as the outer call, delegated to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller's layout obligations forwarded verbatim to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        // SAFETY: same contract as the outer call, delegated to `System`.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The fault models exercised at the model level (the exhaustive
/// eight-model matrix runs in `invnorm-imc`'s engine tests).
fn model_faults() -> [FaultModel; 4] {
    [
        FaultModel::None,
        FaultModel::AdditiveVariation { sigma: 0.2 },
        FaultModel::StuckAt { rate: 0.1 },
        FaultModel::BitFlip {
            rate: 0.05,
            bits: 8,
        },
    ]
}

/// Asserts `run_planned` and `run_planned_batched` reproduce the sequential
/// engine bit-for-bit on a deterministic model factory, across fault models,
/// batch sizes and thread counts.
fn assert_planned_matches_run<F>(factory: F, x: &Tensor)
where
    F: Fn() -> BuiltModel + Sync,
{
    let engine = MonteCarloEngine::new(8, 0xBEEF);
    for fault in model_faults() {
        let mut net = factory();
        let xc = x.clone();
        let sequential = engine
            .run(&mut net, fault, |n| {
                Ok(n.forward(&xc, Mode::Eval)?.abs().mean())
            })
            .unwrap();
        for threads in [1usize, 4] {
            let planned = engine
                .run_planned(&factory, fault, x, |out| Ok(out.abs().mean()), threads)
                .unwrap();
            assert_eq!(planned.runs(), sequential.runs());
            let identical = sequential
                .per_run
                .iter()
                .zip(planned.per_run.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                identical,
                "{} {fault:?} threads={threads}: {:?} vs {:?}",
                factory().name(),
                sequential.per_run,
                planned.per_run
            );
        }
        // Fused planned-batched engine: batch 3 leaves a tail batch of 2
        // (per-worker recompilation), batch 8 is one full stack.
        for (batch, threads) in [(3usize, 2usize), (8, 1)] {
            let fused = engine
                .run_planned_batched(
                    &factory,
                    fault,
                    x,
                    |out| Ok(out.abs().mean()),
                    batch,
                    threads,
                )
                .unwrap();
            assert_eq!(fused.runs(), sequential.runs());
            let identical = sequential
                .per_run
                .iter()
                .zip(fused.per_run.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                identical,
                "{} {fault:?} batch={batch} threads={threads}: {:?} vs {:?}",
                factory().name(),
                sequential.per_run,
                fused.per_run
            );
        }
    }
}

#[test]
fn resnet_planned_is_bit_identical_to_run() {
    let factory = || {
        resnet::build(&MicroResNetConfig::tiny(4), NormVariant::Conventional).expect("build resnet")
    };
    let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut Rng::seed_from(1));
    assert_planned_matches_run(factory, &x);
}

#[test]
fn unet_planned_is_bit_identical_to_run() {
    let factory =
        || unet::build(&MicroUNetConfig::tiny(), NormVariant::Conventional).expect("build unet");
    let x = Tensor::randn(&[1, 1, 16, 16], 0.0, 1.0, &mut Rng::seed_from(2));
    assert_planned_matches_run(factory, &x);
}

#[test]
fn m5_planned_is_bit_identical_to_run() {
    let factory = || m5::build(&M5NetConfig::tiny(4), NormVariant::Conventional).expect("build m5");
    let x = Tensor::randn(&[2, 1, 128], 0.0, 1.0, &mut Rng::seed_from(3));
    assert_planned_matches_run(factory, &x);
}

#[test]
fn lstm_model_is_rejected_as_unsupported() {
    // The recurrent forecaster has no planned execution path; the plan
    // compiler must reject it loudly instead of evaluating clean weights.
    let factory = || {
        lstm::build(&LstmForecasterConfig::tiny(), NormVariant::Conventional).expect("build lstm")
    };
    let x = Tensor::randn(&[2, 6, 1], 0.0, 1.0, &mut Rng::seed_from(4));
    let err = MonteCarloEngine::new(4, 1)
        .run_planned(
            factory,
            FaultModel::AdditiveVariation { sigma: 0.1 },
            &x,
            |out| Ok(out.sum()),
            2,
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            NnError::Unsupported {
                op: "compiled plans",
                ..
            }
        ),
        "unexpected error: {err}"
    );
}

/// A quantized CNN mixing both integer layer types with planned stateless
/// layers.
fn quantized_cnn(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    let conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
    let head = Linear::new(4 * 4 * 4, 3, &mut rng);
    Sequential::new()
        .with(Box::new(QuantizedConv2d::from_conv2d(&conv, 8).unwrap()))
        .with(Box::new(Relu::new()))
        .with(Box::new(MaxPool2d::new(2)))
        .with(Box::new(Flatten::new()))
        .with(Box::new(QuantizedLinear::from_linear(&head, 6).unwrap()))
}

#[test]
fn quantized_cnn_planned_is_bit_identical_to_run_quantized() {
    let x = Tensor::randn(&[3, 2, 8, 8], 0.0, 1.0, &mut Rng::seed_from(5));
    let engine = MonteCarloEngine::new(8, 0xFEED);
    for fault in model_faults() {
        let mut net = quantized_cnn(6);
        let xc = x.clone();
        let sequential = engine
            .run_quantized(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
            .unwrap();
        for threads in [1usize, 4] {
            let planned = engine
                .run_planned_quantized(|| quantized_cnn(6), fault, &x, |out| Ok(out.sum()), threads)
                .unwrap();
            let identical = sequential
                .per_run
                .iter()
                .zip(planned.per_run.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "{fault:?} threads={threads}");
        }
        for (batch, threads) in [(3usize, 2usize), (8, 1)] {
            let fused = engine
                .run_planned_batched_quantized(
                    || quantized_cnn(6),
                    fault,
                    &x,
                    |out| Ok(out.sum()),
                    batch,
                    threads,
                )
                .unwrap();
            let identical = sequential
                .per_run
                .iter()
                .zip(fused.per_run.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "{fault:?} batch={batch} threads={threads}");
        }
    }
}

#[test]
fn steady_state_planned_batched_forward_allocates_nothing() {
    // The batched-plan acceptance criterion: realizing B stacked fault
    // realizations into the plan-owned buffers and running the fused
    // forward must not touch the heap once warm — stacked faulty buffers,
    // per-realization packed panels, sparse cell lists and dirty sets are
    // all reserved at compile time.
    let mut rng = Rng::seed_from(17);
    let mut net = Sequential::new()
        .with(Box::new(Conv2d::new(2, 4, 3, 1, 1, &mut rng)))
        .with(Box::new(Relu::new()))
        .with(Box::new(MaxPool2d::new(2)))
        .with(Box::new(Flatten::new()))
        .with(Box::new(Linear::new(4 * 4 * 4, 3, &mut rng)));
    let x = Tensor::randn(&[2, 2, 8, 8], 0.0, 1.0, &mut rng);
    let direct = net.forward(&x, Mode::Eval).unwrap();
    let batch = 4usize;
    let mut plan = Plan::compile_batched(&mut net, &x, batch).unwrap();
    assert_eq!(plan.batch(), batch);

    // Pre-seeded per-realization RNG streams, refilled in place so the
    // steady-state loop below draws fresh realizations without allocating.
    let mut rngs: Vec<Rng> = (0..batch).map(|b| Rng::seed_from(b as u64)).collect();

    // Warm up: sparse stuck-at injection, dirty re-packing, frozen-input
    // caches and the packed-domain cell lists all reach steady state.
    let injector = WeightFaultInjector::new(FaultModel::StuckAt { rate: 0.1 }).unwrap();
    for round in 0..3u64 {
        for (b, slot) in rngs.iter_mut().enumerate() {
            *slot = Rng::seed_from(100 * round + b as u64);
        }
        injector.realize_plan_batch(&mut net, &mut rngs).unwrap();
        plan.forward(&mut net).unwrap();
    }

    // Steady state: batched injection + fused forward, zero heap traffic.
    let before = thread_allocations();
    for round in 3..6u64 {
        for (b, slot) in rngs.iter_mut().enumerate() {
            *slot = Rng::seed_from(100 * round + b as u64);
        }
        injector.realize_plan_batch(&mut net, &mut rngs).unwrap();
        plan.forward(&mut net).unwrap();
    }
    let allocations = thread_allocations() - before;
    assert_eq!(
        allocations, 0,
        "steady-state planned-batched forwards must perform zero heap allocations"
    );

    // Reverting every realization to clean restores the direct output in
    // every stacked slot.
    net.visit_plan_params(&mut |view| {
        let numel = view.clean.numel();
        for b in 0..batch {
            view.faulty[b * numel..][..numel].copy_from_slice(view.clean.data());
        }
        view.dirty.mark_all();
    });
    let out = plan.forward(&mut net).unwrap();
    let per = direct.numel();
    for b in 0..batch {
        let rows = &out.data()[b * per..][..per];
        let identical = rows
            .iter()
            .zip(direct.data().iter())
            .all(|(a, c)| a.to_bits() == c.to_bits());
        assert!(identical, "clean stacked realization {b} diverged");
    }
    net.plan_end();
}

#[test]
fn steady_state_planned_forward_allocates_nothing() {
    let mut rng = Rng::seed_from(7);
    let mut net = Sequential::new()
        .with(Box::new(Conv2d::new(2, 4, 3, 1, 1, &mut rng)))
        .with(Box::new(Relu::new()))
        .with(Box::new(MaxPool2d::new(2)))
        .with(Box::new(Flatten::new()))
        .with(Box::new(Linear::new(4 * 4 * 4, 3, &mut rng)));
    let x = Tensor::randn(&[2, 2, 8, 8], 0.0, 1.0, &mut rng);
    let direct = net.forward(&x, Mode::Eval).unwrap();
    let mut plan = Plan::compile(&mut net, &x).unwrap();

    // Warm up: a couple of realizations exercise injection, dirty re-packing
    // and the frozen-input caches.
    let injector = WeightFaultInjector::new(FaultModel::StuckAt { rate: 0.1 }).unwrap();
    for seed in 0..3u64 {
        injector
            .realize_plan(&mut net, &mut Rng::seed_from(seed))
            .unwrap();
        plan.forward(&mut net).unwrap();
    }

    // Steady state: injection + forward must not touch the heap at all
    // (the acceptance criterion of the compiled-plan subsystem).
    let before = thread_allocations();
    for seed in 3..6u64 {
        injector
            .realize_plan(&mut net, &mut Rng::seed_from(seed))
            .unwrap();
        plan.forward(&mut net).unwrap();
    }
    let allocations = thread_allocations() - before;
    assert_eq!(
        allocations, 0,
        "steady-state planned forwards must perform zero heap allocations"
    );

    // And the outputs still track the direct path for the clean realization.
    injector
        .realize_plan(&mut net, &mut Rng::seed_from(999))
        .unwrap();
    net.visit_plan_params(&mut |view| {
        view.faulty.copy_from_slice(view.clean.data());
        view.dirty.mark_all();
    });
    let out = plan.forward(&mut net).unwrap();
    let identical = out
        .data()
        .iter()
        .zip(direct.data().iter())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "clean planned forward diverged from direct eval");
    net.plan_end();
}
