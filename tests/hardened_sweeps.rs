//! Cross-crate integration tests of the hardened-sweep supervision layer:
//! cancellation and deadlines interrupt sweeps into resumable checkpoints,
//! resume replays only the missing chip instances and finishes bit-identical
//! to an uninterrupted sweep on every engine, panicking runs are quarantined
//! without killing the worker pool, and non-finite metrics are excluded from
//! the aggregate with typed diagnostics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use invnorm::prelude::*;
use invnorm_imc::{InterruptCause, LineOrientation, QuarantineCause, TileShape};
use invnorm_nn::activation::Relu;
use invnorm_nn::norm::GroupNorm;

/// Chip instances per sweep — enough that four workers cannot drain the whole
/// sweep between a mid-metric cancellation and their next budget check.
const RUNS: usize = 24;
/// The counting metrics cancel the sweep's token on this call.
const CANCEL_AFTER: usize = 4;

/// An f32 network supported by every engine rung (dense, norm, activation).
fn mlp(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    Sequential::new()
        .with(Box::new(Linear::new(8, 16, &mut rng)))
        .with(Box::new(GroupNorm::layer_norm(16)))
        .with(Box::new(Relu::new()))
        .with(Box::new(Linear::new(16, 4, &mut rng)))
}

/// An integer-inference network for the code-domain engines.
fn quantized_net(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    let l1 = Linear::new(12, 10, &mut rng);
    let l2 = Linear::new(10, 4, &mut rng);
    Sequential::new()
        .with(Box::new(QuantizedLinear::from_linear(&l1, 8).unwrap()))
        .with(Box::new(Relu::new()))
        .with(Box::new(QuantizedLinear::from_linear(&l2, 6).unwrap()))
}

/// A structured fault topology (whole stuck word lines) for the f32 sweeps.
fn structured_fault() -> FaultModel {
    FaultModel::LineDefect {
        orientation: LineOrientation::Row,
        rate: 0.3,
        tile: TileShape { rows: 4, cols: 4 },
    }
}

/// A code-domain fault for the quantized sweeps.
fn code_fault() -> FaultModel {
    FaultModel::BitFlip {
        rate: 0.08,
        bits: 8,
    }
}

fn assert_bits_equal(baseline: &[f32], resumed: &[f32], what: &str) {
    assert_eq!(baseline.len(), resumed.len(), "{what}: run count");
    let identical = baseline
        .iter()
        .zip(resumed.iter())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "{what}: {baseline:?} vs {resumed:?}");
}

/// Drives one engine through the interrupt → persist → resume cycle:
/// `sweep(control, token, k)` must run the supervised engine with a metric
/// that cancels `token` on its `k`-th call. Asserts the interrupted leg
/// produced a genuine partial checkpoint, round-trips it through bytes, and
/// that the resumed leg finishes bit-identical to `baseline`.
fn interrupt_resume_bit_identity<F>(label: &str, baseline: &[f32], sweep: F)
where
    F: Fn(&SweepControl, &CancelToken, usize) -> SweepOutcome,
{
    let token = CancelToken::new();
    let control = SweepControl::new().with_budget(RunBudget::unbounded().with_token(&token));
    let outcome = sweep(&control, &token, CANCEL_AFTER);
    let SweepOutcome::Interrupted {
        cause,
        checkpoint,
        quarantined,
        partial,
    } = outcome
    else {
        panic!("{label}: expected the cancelled sweep to be interrupted");
    };
    assert_eq!(cause, InterruptCause::Cancelled, "{label}");
    assert!(quarantined.is_empty(), "{label}: nothing should quarantine");
    assert!(
        checkpoint.remaining_runs() > 0,
        "{label}: cancellation left nothing to resume"
    );
    assert!(
        checkpoint.accounted_runs() > 0,
        "{label}: in-flight instances must finish before the interrupt"
    );
    assert_eq!(
        partial.per_run.len(),
        checkpoint.completed.len(),
        "{label}: partial summary covers exactly the completed runs"
    );

    // Persist and reload: resume must work from the serialized form.
    let restored = SweepCheckpoint::from_bytes(&checkpoint.to_bytes()).unwrap();
    assert_eq!(restored, checkpoint, "{label}: checkpoint round-trip");

    let fresh = CancelToken::new();
    let control = SweepControl::new().with_resume(restored);
    let outcome = sweep(&control, &fresh, usize::MAX);
    let SweepOutcome::Complete {
        summary,
        quarantined,
    } = outcome
    else {
        panic!("{label}: the resumed sweep must complete");
    };
    assert!(quarantined.is_empty(), "{label}");
    assert_bits_equal(baseline, &summary.per_run, label);
}

#[test]
fn resume_is_bit_identical_on_every_weight_domain_engine() {
    let engine = MonteCarloEngine::new(RUNS, 0xBEEF);
    let x = Tensor::randn(&[6, 8], 0.0, 1.0, &mut Rng::seed_from(40));
    let fault = structured_fault();
    // Ground truth: the legacy sequential engine, uninterrupted.
    let mut net = mlp(7);
    let xc = x.clone();
    let baseline = engine
        .run(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
        .unwrap()
        .per_run;

    interrupt_resume_bit_identity("run_supervised", &baseline, |control, token, k| {
        let calls = AtomicUsize::new(0);
        let mut net = mlp(7);
        let xc = x.clone();
        engine
            .run_supervised(
                &mut net,
                fault,
                |n: &mut dyn Layer| {
                    let out = n.forward(&xc, Mode::Eval)?;
                    if calls.fetch_add(1, Ordering::Relaxed) + 1 >= k {
                        token.cancel();
                    }
                    Ok(out.sum())
                },
                control,
            )
            .unwrap()
    });

    for threads in [1usize, 4] {
        interrupt_resume_bit_identity(
            &format!("run_parallel_supervised threads={threads}"),
            &baseline,
            |control, token, k| {
                let calls = AtomicUsize::new(0);
                engine
                    .run_parallel_supervised(
                        || mlp(7),
                        fault,
                        |m: &mut Sequential| {
                            let out = m.forward(&x, Mode::Eval)?;
                            if calls.fetch_add(1, Ordering::Relaxed) + 1 >= k {
                                token.cancel();
                            }
                            Ok(out.sum())
                        },
                        threads,
                        control,
                    )
                    .unwrap()
            },
        );
        interrupt_resume_bit_identity(
            &format!("run_batched_supervised threads={threads}"),
            &baseline,
            |control, token, k| {
                let calls = AtomicUsize::new(0);
                engine
                    .run_batched_supervised(
                        || mlp(7),
                        fault,
                        &x,
                        |out: &Tensor| {
                            let v = out.sum();
                            if calls.fetch_add(1, Ordering::Relaxed) + 1 >= k {
                                token.cancel();
                            }
                            Ok(v)
                        },
                        5,
                        threads,
                        control,
                    )
                    .unwrap()
            },
        );
        interrupt_resume_bit_identity(
            &format!("run_planned_supervised threads={threads}"),
            &baseline,
            |control, token, k| {
                let calls = AtomicUsize::new(0);
                engine
                    .run_planned_supervised(
                        || mlp(7),
                        fault,
                        &x,
                        |out: &Tensor| {
                            let v = out.sum();
                            if calls.fetch_add(1, Ordering::Relaxed) + 1 >= k {
                                token.cancel();
                            }
                            Ok(v)
                        },
                        threads,
                        control,
                    )
                    .unwrap()
            },
        );
        interrupt_resume_bit_identity(
            &format!("run_planned_batched_supervised threads={threads}"),
            &baseline,
            |control, token, k| {
                let calls = AtomicUsize::new(0);
                engine
                    .run_planned_batched_supervised(
                        || mlp(7),
                        fault,
                        &x,
                        |out: &Tensor| {
                            let v = out.sum();
                            if calls.fetch_add(1, Ordering::Relaxed) + 1 >= k {
                                token.cancel();
                            }
                            Ok(v)
                        },
                        5,
                        threads,
                        control,
                    )
                    .unwrap()
            },
        );
    }
}

#[test]
fn resume_is_bit_identical_on_every_code_domain_engine() {
    let engine = MonteCarloEngine::new(RUNS, 0xC0DE);
    let x = Tensor::randn(&[5, 12], 0.0, 1.0, &mut Rng::seed_from(41));
    let fault = code_fault();
    let mut net = quantized_net(9);
    let xc = x.clone();
    let baseline = engine
        .run_quantized(&mut net, fault, |n| Ok(n.forward(&xc, Mode::Eval)?.sum()))
        .unwrap()
        .per_run;

    interrupt_resume_bit_identity(
        "run_quantized_supervised",
        &baseline,
        |control, token, k| {
            let calls = AtomicUsize::new(0);
            let mut net = quantized_net(9);
            let xc = x.clone();
            engine
                .run_quantized_supervised(
                    &mut net,
                    fault,
                    |n: &mut dyn Layer| {
                        let out = n.forward(&xc, Mode::Eval)?;
                        if calls.fetch_add(1, Ordering::Relaxed) + 1 >= k {
                            token.cancel();
                        }
                        Ok(out.sum())
                    },
                    control,
                )
                .unwrap()
        },
    );

    for threads in [1usize, 4] {
        interrupt_resume_bit_identity(
            &format!("run_batched_quantized_supervised threads={threads}"),
            &baseline,
            |control, token, k| {
                let calls = AtomicUsize::new(0);
                engine
                    .run_batched_quantized_supervised(
                        || quantized_net(9),
                        fault,
                        &x,
                        |out: &Tensor| {
                            let v = out.sum();
                            if calls.fetch_add(1, Ordering::Relaxed) + 1 >= k {
                                token.cancel();
                            }
                            Ok(v)
                        },
                        5,
                        threads,
                        control,
                    )
                    .unwrap()
            },
        );
        interrupt_resume_bit_identity(
            &format!("run_planned_quantized_supervised threads={threads}"),
            &baseline,
            |control, token, k| {
                let calls = AtomicUsize::new(0);
                engine
                    .run_planned_quantized_supervised(
                        || quantized_net(9),
                        fault,
                        &x,
                        |out: &Tensor| {
                            let v = out.sum();
                            if calls.fetch_add(1, Ordering::Relaxed) + 1 >= k {
                                token.cancel();
                            }
                            Ok(v)
                        },
                        threads,
                        control,
                    )
                    .unwrap()
            },
        );
        interrupt_resume_bit_identity(
            &format!("run_planned_batched_quantized_supervised threads={threads}"),
            &baseline,
            |control, token, k| {
                let calls = AtomicUsize::new(0);
                engine
                    .run_planned_batched_quantized_supervised(
                        || quantized_net(9),
                        fault,
                        &x,
                        |out: &Tensor| {
                            let v = out.sum();
                            if calls.fetch_add(1, Ordering::Relaxed) + 1 >= k {
                                token.cancel();
                            }
                            Ok(v)
                        },
                        5,
                        threads,
                        control,
                    )
                    .unwrap()
            },
        );
    }
}

#[test]
fn expired_deadline_interrupts_before_any_run_and_resume_completes() {
    let engine = MonteCarloEngine::new(RUNS, 0x0DD1);
    let x = Tensor::randn(&[6, 8], 0.0, 1.0, &mut Rng::seed_from(42));
    let fault = FaultModel::AdditiveVariation { sigma: 0.25 };
    let metric = |out: &Tensor| Ok(out.sum());
    let baseline = engine
        .run_planned_batched(|| mlp(11), fault, &x, metric, 5, 4)
        .unwrap()
        .per_run;

    let control =
        SweepControl::new().with_budget(RunBudget::unbounded().with_deadline(Duration::ZERO));
    let outcome = engine
        .run_planned_batched_supervised(|| mlp(11), fault, &x, metric, 5, 4, &control)
        .unwrap();
    let SweepOutcome::Interrupted {
        cause,
        checkpoint,
        partial,
        ..
    } = outcome
    else {
        panic!("a deadline in the past must interrupt the sweep");
    };
    assert_eq!(cause, InterruptCause::DeadlineExpired);
    assert!(partial.per_run.is_empty(), "no run should finish");
    assert_eq!(checkpoint.remaining_runs(), RUNS);

    let restored = SweepCheckpoint::from_bytes(&checkpoint.to_bytes()).unwrap();
    let control = SweepControl::new().with_resume(restored);
    let outcome = engine
        .run_planned_batched_supervised(|| mlp(11), fault, &x, metric, 5, 4, &control)
        .unwrap();
    assert!(outcome.is_complete());
    assert_bits_equal(
        &baseline,
        &outcome.summary().per_run,
        "deadline-zero resume",
    );
}

#[test]
fn run_auto_supervised_resumes_on_the_checkpointed_engine() {
    let engine = MonteCarloEngine::new(RUNS, 0xA070);
    let x = Tensor::randn(&[6, 8], 0.0, 1.0, &mut Rng::seed_from(43));
    let fault = structured_fault();
    let metric = |out: &Tensor| Ok(out.sum());
    let baseline = engine
        .run_auto(
            || mlp(13),
            fault,
            &x,
            metric,
            5,
            4,
            DegradationPolicy::Graceful,
        )
        .unwrap();
    assert_eq!(baseline.engine, EngineKind::PlannedBatched);

    // Uninterrupted supervised ladder matches the legacy ladder bit for bit.
    let complete = engine
        .run_auto_supervised(
            || mlp(13),
            fault,
            &x,
            metric,
            5,
            4,
            DegradationPolicy::Graceful,
            &SweepControl::new(),
        )
        .unwrap();
    assert_eq!(complete.engine, EngineKind::PlannedBatched);
    assert!(complete.fallbacks.is_empty());
    assert_bits_equal(
        &baseline.summary.per_run,
        &complete.outcome.summary().per_run,
        "run_auto_supervised uninterrupted",
    );

    // Cancel mid-sweep, then resume through the ladder entry point: the
    // checkpoint pins the engine and the final summary is bit-identical.
    let token = CancelToken::new();
    let calls = AtomicUsize::new(0);
    let control = SweepControl::new().with_budget(RunBudget::unbounded().with_token(&token));
    let interrupted = engine
        .run_auto_supervised(
            || mlp(13),
            fault,
            &x,
            |out: &Tensor| {
                let v = out.sum();
                if calls.fetch_add(1, Ordering::Relaxed) + 1 >= CANCEL_AFTER {
                    token.cancel();
                }
                Ok(v)
            },
            5,
            4,
            DegradationPolicy::Graceful,
            &control,
        )
        .unwrap();
    let checkpoint = interrupted
        .outcome
        .checkpoint()
        .expect("cancelled ladder sweep must be resumable")
        .clone();
    assert_eq!(checkpoint.engine, EngineKind::PlannedBatched);

    let restored = SweepCheckpoint::from_bytes(&checkpoint.to_bytes()).unwrap();
    let resumed = engine
        .run_auto_supervised(
            || mlp(13),
            fault,
            &x,
            metric,
            5,
            4,
            DegradationPolicy::Graceful,
            &SweepControl::new().with_resume(restored),
        )
        .unwrap();
    assert_eq!(resumed.engine, EngineKind::PlannedBatched);
    assert!(resumed.fallbacks.is_empty(), "resume pins the engine");
    assert!(resumed.outcome.is_complete());
    assert_bits_equal(
        &baseline.summary.per_run,
        &resumed.outcome.summary().per_run,
        "run_auto_supervised resume",
    );

    // A checkpoint from a sequential entry point is a caller bug: the ladder
    // never produces one, so it is rejected with a typed mismatch.
    let mut sequential_cp = checkpoint;
    sequential_cp.engine = EngineKind::Sequential;
    let err = engine
        .run_auto_supervised(
            || mlp(13),
            fault,
            &x,
            metric,
            5,
            4,
            DegradationPolicy::Graceful,
            &SweepControl::new().with_resume(sequential_cp),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            NnError::Checkpoint(invnorm_nn::CheckpointFault::Mismatch {
                field: "engine",
                ..
            })
        ),
        "{err}"
    );
}

#[test]
fn mismatched_checkpoints_are_rejected_with_typed_faults() {
    let engine = MonteCarloEngine::new(RUNS, 0x5EED);
    let x = Tensor::randn(&[6, 8], 0.0, 1.0, &mut Rng::seed_from(44));
    let fault = FaultModel::AdditiveVariation { sigma: 0.25 };
    let metric = |out: &Tensor| Ok(out.sum());
    let control =
        SweepControl::new().with_budget(RunBudget::unbounded().with_deadline(Duration::ZERO));
    let outcome = engine
        .run_planned_supervised(|| mlp(17), fault, &x, metric, 2, &control)
        .unwrap();
    let checkpoint = outcome.checkpoint().unwrap().clone();

    // Wrong fault model → fault-label mismatch.
    let err = engine
        .run_planned_supervised(
            || mlp(17),
            FaultModel::StuckAt { rate: 0.1 },
            &x,
            metric,
            2,
            &SweepControl::new().with_resume(checkpoint.clone()),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            NnError::Checkpoint(invnorm_nn::CheckpointFault::Mismatch {
                field: "fault label",
                ..
            })
        ),
        "{err}"
    );

    // Wrong engine → engine mismatch.
    let err = engine
        .run_batched_supervised(
            || mlp(17),
            fault,
            &x,
            metric,
            5,
            2,
            &SweepControl::new().with_resume(checkpoint.clone()),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            NnError::Checkpoint(invnorm_nn::CheckpointFault::Mismatch {
                field: "engine",
                ..
            })
        ),
        "{err}"
    );

    // Wrong seed → seed mismatch.
    let err = MonteCarloEngine::new(RUNS, 0xBAD)
        .run_planned_supervised(
            || mlp(17),
            fault,
            &x,
            metric,
            2,
            &SweepControl::new().with_resume(checkpoint.clone()),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            NnError::Checkpoint(invnorm_nn::CheckpointFault::Mismatch { field: "seed", .. })
        ),
        "{err}"
    );

    // Corrupted serialized checkpoint → checksum mismatch before any field
    // is trusted.
    let mut bytes = checkpoint.to_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    assert!(matches!(
        SweepCheckpoint::from_bytes(&bytes),
        Err(NnError::Checkpoint(
            invnorm_nn::CheckpointFault::ChecksumMismatch { .. }
        ))
    ));
}

/// A single-weight layer that panics when a fault realization pushes its
/// weight past a threshold — deterministic per `(seed, run)`, so the same
/// chip instances trip on every sweep, engine and thread count.
struct Tripwire {
    weight: Param,
}

impl Tripwire {
    const TRIP: f32 = 2.0;

    fn new() -> Self {
        Tripwire {
            weight: Param::new(Tensor::from_vec(vec![1.0], &[1, 1]).unwrap()),
        }
    }
}

impl Layer for Tripwire {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> invnorm_nn::Result<Tensor> {
        let w = self.weight.value.data()[0];
        assert!(
            w.abs() <= Self::TRIP,
            "tripwire crossed: |{w}| > {}",
            Self::TRIP
        );
        Ok(input.scale(w))
    }

    fn backward(&mut self, grad_output: &Tensor) -> invnorm_nn::Result<Tensor> {
        Ok(grad_output.clone())
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
    }

    fn name(&self) -> &'static str {
        "Tripwire"
    }
}

#[test]
fn panicking_runs_are_quarantined_and_the_pool_survives() {
    let engine = MonteCarloEngine::new(32, 0x7219);
    let x = Tensor::randn(&[2, 2], 0.0, 1.0, &mut Rng::seed_from(45));
    // σ = 1 around w₀ = 1 pushes some (but not all) realizations past the
    // |w| > 2 tripwire.
    let fault = FaultModel::AdditiveVariation { sigma: 1.0 };
    let evaluate = |m: &mut Tripwire| {
        let out = m.forward(&x, Mode::Eval)?;
        Ok(out.sum())
    };

    let sweep = |threads: usize| {
        let outcome = engine
            .run_parallel_supervised(
                Tripwire::new,
                fault,
                evaluate,
                threads,
                &SweepControl::new(),
            )
            .unwrap();
        let SweepOutcome::Complete {
            summary,
            quarantined,
        } = outcome
        else {
            panic!("quarantine must not interrupt the sweep");
        };
        (summary, quarantined)
    };

    let (summary, quarantined) = sweep(4);
    assert!(
        !quarantined.is_empty(),
        "σ=1 must push some realizations past the tripwire"
    );
    assert_eq!(summary.per_run.len() + quarantined.len(), 32);
    for q in &quarantined {
        assert_eq!(q.engine, EngineKind::Parallel);
        assert!(
            matches!(&q.cause, QuarantineCause::Panic { message } if message.contains("tripwire")),
            "{q}"
        );
        // Diagnostics render the run, engine and fault label.
        let line = q.to_string();
        assert!(
            line.contains("run_parallel") && line.contains("additive"),
            "{line}"
        );
    }

    // Quarantine is deterministic: same runs trip on one worker thread, and
    // the surviving metrics are bit-identical.
    let (summary_1t, quarantined_1t) = sweep(1);
    assert_eq!(
        quarantined.iter().map(|q| q.run).collect::<Vec<_>>(),
        quarantined_1t.iter().map(|q| q.run).collect::<Vec<_>>(),
    );
    assert_bits_equal(
        &summary.per_run,
        &summary_1t.per_run,
        "quarantine thread invariance",
    );

    // The pool survived the panics: legacy sweeps on the same process keep
    // working, and a panic on the legacy path still propagates (its
    // pre-supervision contract).
    let healthy = engine
        .run_parallel(
            || mlp(19),
            FaultModel::AdditiveVariation { sigma: 0.1 },
            |m: &mut Sequential| Ok(m.forward(&Tensor::ones(&[2, 8]), Mode::Eval)?.sum()),
            4,
        )
        .unwrap();
    assert_eq!(healthy.per_run.len(), 32);
}

#[test]
fn sequential_supervised_quarantines_panics_too() {
    let engine = MonteCarloEngine::new(16, 0x7219);
    let x = Tensor::randn(&[2, 2], 0.0, 1.0, &mut Rng::seed_from(46));
    let fault = FaultModel::AdditiveVariation { sigma: 1.0 };
    let mut net = Tripwire::new();
    let outcome = engine
        .run_supervised(
            &mut net,
            fault,
            |n: &mut dyn Layer| Ok(n.forward(&x, Mode::Eval)?.sum()),
            &SweepControl::new(),
        )
        .unwrap();
    let SweepOutcome::Complete {
        summary,
        quarantined,
    } = outcome
    else {
        panic!("quarantine must not interrupt the sweep");
    };
    assert!(!quarantined.is_empty());
    assert_eq!(summary.per_run.len() + quarantined.len(), 16);
    // The panic unwound through the injector bracket, but the engine still
    // restored the clean weight before the next instance: the surviving
    // runs match the parallel engine bit for bit.
    let parallel = engine
        .run_parallel_supervised(
            Tripwire::new,
            fault,
            |m: &mut Tripwire| {
                let out = m.forward(&x, Mode::Eval)?;
                Ok(out.sum())
            },
            2,
            &SweepControl::new(),
        )
        .unwrap();
    assert_bits_equal(
        &summary.per_run,
        &parallel.summary().per_run,
        "sequential vs parallel quarantine",
    );
}

/// A layer whose output blows up to +∞ once retention drift shrinks its
/// weight below a threshold — the regression case for non-finite metrics
/// being detected at record time instead of poisoning the aggregate.
struct InfUnderDrift {
    weight: Param,
}

impl InfUnderDrift {
    fn new() -> Self {
        InfUnderDrift {
            weight: Param::new(Tensor::from_vec(vec![1.0], &[1, 1]).unwrap()),
        }
    }
}

impl Layer for InfUnderDrift {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> invnorm_nn::Result<Tensor> {
        let w = self.weight.value.data()[0];
        if w < 0.85 {
            // Drifted too far: the (synthetic) analog readout saturates.
            return Ok(input.scale(f32::INFINITY));
        }
        Ok(input.scale(w))
    }

    fn backward(&mut self, grad_output: &Tensor) -> invnorm_nn::Result<Tensor> {
        Ok(grad_output.clone())
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
    }

    fn name(&self) -> &'static str {
        "InfUnderDrift"
    }
}

#[test]
fn non_finite_metrics_under_drift_are_quarantined_at_record_time() {
    let engine = MonteCarloEngine::new(24, 0x1F);
    let x = Tensor::ones(&[2, 2]);
    // Correlated drift draws a per-run drift exponent, so some chip
    // instances shrink the weight past the saturation threshold and some do
    // not.
    let fault = FaultModel::CorrelatedDrift {
        nu: 0.05,
        time_ratio: 10.0,
        sigma_nu: 1.0,
        tile: TileShape { rows: 4, cols: 4 },
    };
    let outcome = engine
        .run_parallel_supervised(
            InfUnderDrift::new,
            fault,
            |m: &mut InfUnderDrift| {
                let out = m.forward(&x, Mode::Eval)?;
                Ok(out.sum())
            },
            4,
            &SweepControl::new(),
        )
        .unwrap();
    let SweepOutcome::Complete {
        summary,
        quarantined,
    } = outcome
    else {
        panic!("non-finite metrics must not interrupt the sweep");
    };
    assert!(
        !quarantined.is_empty(),
        "σ_ν=1 drift must saturate some instances"
    );
    assert!(
        !summary.per_run.is_empty(),
        "σ_ν=1 drift must leave some instances finite"
    );
    assert_eq!(summary.per_run.len() + quarantined.len(), 24);
    for q in &quarantined {
        assert!(
            matches!(q.cause, QuarantineCause::NonFinite { value } if value == f32::INFINITY),
            "{q}"
        );
    }
    // Every surviving metric is finite — the aggregate cannot be poisoned.
    assert!(summary.per_run.iter().all(|m| m.is_finite()));
    assert!(summary.mean.is_finite());

    // The legacy entry point keeps its historical contract: the lowest
    // saturated run aborts the sweep with the pre-supervision message.
    let lowest = quarantined[0].run;
    let err = engine
        .run_parallel(
            InfUnderDrift::new,
            fault,
            |m: &mut InfUnderDrift| {
                let out = m.forward(&x, Mode::Eval)?;
                Ok(out.sum())
            },
            4,
        )
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("non-finite metric") && err.contains(&format!("on run {lowest}")),
        "unexpected legacy error: {err}"
    );
}

#[test]
fn telemetry_counts_cancelled_quarantined_and_resumed_runs() {
    // Telemetry state is process-global and other tests in this binary run
    // concurrently, so only >= assertions are sound here.
    Telemetry::reset();
    Telemetry::enable();
    let engine = MonteCarloEngine::new(RUNS, 0x7E1E);
    let x = Tensor::randn(&[6, 8], 0.0, 1.0, &mut Rng::seed_from(47));
    let fault = FaultModel::AdditiveVariation { sigma: 0.25 };
    let metric = |out: &Tensor| Ok(out.sum());

    let control =
        SweepControl::new().with_budget(RunBudget::unbounded().with_deadline(Duration::ZERO));
    let outcome = engine
        .run_planned_batched_supervised(|| mlp(23), fault, &x, metric, 5, 2, &control)
        .unwrap();
    let checkpoint = outcome.checkpoint().unwrap().clone();
    assert!(Telemetry::counter(Counter::CancelledRuns) >= RUNS as u64);

    let control = SweepControl::new().with_resume(checkpoint);
    let resumed = engine
        .run_planned_batched_supervised(|| mlp(23), fault, &x, metric, 5, 2, &control)
        .unwrap();
    assert!(resumed.is_complete());
    // Nothing was accounted before the zero deadline, so resume skips are
    // whatever other concurrent tests contributed — only quarantine needs a
    // dedicated probe.
    let quarantine_before = Telemetry::counter(Counter::QuarantinedRuns);
    let outcome = engine
        .run_parallel_supervised(
            InfUnderDrift::new,
            FaultModel::CorrelatedDrift {
                nu: 0.05,
                time_ratio: 10.0,
                sigma_nu: 1.0,
                tile: TileShape { rows: 4, cols: 4 },
            },
            |m: &mut InfUnderDrift| {
                let out = m.forward(&Tensor::ones(&[2, 2]), Mode::Eval)?;
                Ok(out.sum())
            },
            2,
            &SweepControl::new(),
        )
        .unwrap();
    let expected = outcome.quarantined().len() as u64;
    assert!(expected > 0);
    assert!(Telemetry::counter(Counter::QuarantinedRuns) >= quarantine_before + expected);

    // Resume skips fire when a checkpoint actually carries completed runs.
    let token = CancelToken::new();
    let calls = AtomicUsize::new(0);
    let control = SweepControl::new().with_budget(RunBudget::unbounded().with_token(&token));
    let outcome = engine
        .run_batched_supervised(
            || mlp(23),
            fault,
            &x,
            |out: &Tensor| {
                let v = out.sum();
                if calls.fetch_add(1, Ordering::Relaxed) + 1 >= CANCEL_AFTER {
                    token.cancel();
                }
                Ok(v)
            },
            5,
            2,
            &control,
        )
        .unwrap();
    let checkpoint = outcome.checkpoint().unwrap().clone();
    let accounted = checkpoint.accounted_runs() as u64;
    assert!(accounted > 0);
    let skips_before = Telemetry::counter(Counter::ResumeSkips);
    let resumed = engine
        .run_batched_supervised(
            || mlp(23),
            fault,
            &x,
            metric,
            5,
            2,
            &SweepControl::new().with_resume(checkpoint),
        )
        .unwrap();
    assert!(resumed.is_complete());
    assert!(Telemetry::counter(Counter::ResumeSkips) >= skips_before + accounted);
    Telemetry::disable();
}
