//! In-tree shim for the `serde` crate (the build environment is offline).
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! to declare them serialization-ready, but every actual encoder in the tree
//! is hand-rolled (checkpoint bytes, CSV tables, JSON bench reports), so the
//! traits only need to exist, not to describe a data model. The derive macros
//! re-exported here emit empty marker impls.

#![deny(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
