//! Derive macros for the in-tree `serde` shim.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to empty marker
//! impls of the shim traits. The item name is recovered by scanning the token
//! stream for the `struct`/`enum` keyword, which is robust against leading
//! attributes and doc comments; generic items are rejected with a clear error
//! (no current derive target in the workspace is generic).

use proc_macro::{TokenStream, TokenTree};

fn item_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = iter.next() {
                            assert!(
                                p.as_char() != '<',
                                "serde shim derive does not support generic items"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("expected item name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("serde shim derive target must be a struct or enum");
}

/// Emits `impl serde::Serialize` as a marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Emits `impl serde::Deserialize` as a marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
