//! In-tree shim for the `criterion` crate (the build environment is offline).
//!
//! Implements the subset the workspace benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — as a straightforward
//! wall-clock harness. Beyond printing a summary table, every benchmark
//! group writes a machine-readable `BENCH_<group>.json` report so the perf
//! trajectory of the hot paths is tracked across PRs (see the root README's
//! "Benchmarks" section for the schema and knobs).
//!
//! Environment knobs:
//!
//! * `BENCH_JSON_DIR` — directory for `BENCH_<group>.json` (default: the
//!   workspace root if discoverable from `CARGO_MANIFEST_DIR`, else `.`).
//! * `BENCH_SAMPLE_MS` — target wall-clock budget per sample in milliseconds
//!   (default 50); long-running benchmarks always run at least one iteration
//!   per sample.

#![deny(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle collecting benchmark groups (criterion-compatible API).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            results: Vec::new(),
            finished: false,
        }
    }
}

/// Timing statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark id within the group.
    pub name: String,
    /// Mean time per iteration.
    pub mean_ns: f64,
    /// Sample standard deviation of the per-sample means.
    pub std_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// A named group of benchmarks; writes its JSON report on [`finish`].
///
/// [`finish`]: BenchmarkGroup::finish
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    results: Vec<BenchStats>,
    finished: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (min 3).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark: a warmup call, an iteration-count calibration,
    /// then `sample_size` timed samples.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let budget = sample_budget();

        // Warmup + calibration: time a single iteration.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let once = bencher.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut sample_means_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            sample_means_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_means_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = sample_means_ns.len();
        let mean = sample_means_ns.iter().sum::<f64>() / n as f64;
        let var = sample_means_ns
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n.max(2) - 1) as f64;
        let stats = BenchStats {
            name: id,
            mean_ns: mean,
            std_ns: var.sqrt(),
            min_ns: sample_means_ns[0],
            median_ns: sample_means_ns[n / 2],
            samples: n,
            iters_per_sample,
        };
        println!(
            "{:<40} {:>14} /iter (± {:>12}, min {:>14}, {} samples × {} iters)",
            format!("{}/{}", self.name, stats.name),
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.std_ns),
            fmt_ns(stats.min_ns),
            stats.samples,
            stats.iters_per_sample,
        );
        self.results.push(stats);
        self
    }

    /// Accumulated statistics for this group.
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }

    /// Writes `BENCH_<group>.json` and prints the output path.
    pub fn finish(&mut self) {
        self.finished = true;
        let dir = json_dir();
        let path = dir.join(format!("BENCH_{}.json", self.name));
        match std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, self.to_json())) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"group\": {},", json_str(&self.name));
        let _ = writeln!(out, "  \"unit\": \"ns_per_iter\",");
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"mean_ns\": {:.1}, \"std_ns\": {:.1}, \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{comma}",
                json_str(&r.name), r.mean_ns, r.std_ns, r.min_ns, r.median_ns, r.samples, r.iters_per_sample,
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        if !self.finished && !self.results.is_empty() {
            self.finish();
        }
    }
}

/// Per-benchmark timing handle passed to the closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn sample_budget() -> Duration {
    let ms = std::env::var("BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(50);
    Duration::from_millis(ms.max(1))
}

fn json_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("BENCH_JSON_DIR") {
        return dir.into();
    }
    // Benches run with cwd = the bench crate; prefer the workspace root two
    // levels up when it looks like this repository.
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    for candidate in [cwd.clone(), cwd.join(".."), cwd.join("../..")] {
        if candidate.join("Cargo.toml").exists() && candidate.join("crates").is_dir() {
            return candidate;
        }
    }
    cwd
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Collects benchmark functions into a single runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_stats() {
        std::env::set_var("BENCH_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let stats = &group.results()[0];
        assert_eq!(stats.name, "sum");
        assert!(stats.mean_ns > 0.0);
        assert!(stats.samples >= 3);
        // Avoid writing a JSON report from the unit test.
        group.finished = true;
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
