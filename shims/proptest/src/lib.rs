//! In-tree shim for the `proptest` crate (the build environment is offline).
//!
//! Supports the subset the workspace's property tests use: the [`proptest!`]
//! macro with `arg in strategy` bindings, numeric [`Range`] strategies,
//! `proptest::collection::vec`, and the `prop_assert!`/`prop_assert_eq!`
//! assertions. Each test runs a fixed number of random cases drawn from a
//! deterministic per-test stream (seeded by the test name), so failures are
//! reproducible; shrinking is not implemented.

#![deny(missing_docs)]

use std::ops::Range;

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 64;

/// Deterministic per-test random stream (SplitMix64 seeded by test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream seeded from the test name.
    pub fn new(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator, mirroring proptest's `Strategy` in spirit.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer strategy range");
                self.start + (rng.next_u64() % span) as $ty
            }
        })+
    };
}
int_strategy!(u8, u16, u32, usize, i32);

/// Strategies over collections.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from `len` and elements
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("prop_assert failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err(format!(
                "prop_assert_eq failed: {} != {}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// item expands to a normal test running [`CASES`] random cases.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )+) => {
        $(
            #[test]
            fn $name() {
                let mut proptest_rng = $crate::TestRng::new(stringify!($name));
                for case in 0..$crate::CASES {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_rng); )+
                    let outcome = (|| -> ::std::result::Result<(), String> {
                        $body
                        Ok(())
                    })();
                    if let Err(message) = outcome {
                        panic!("property {} failed on case {case}: {message}", stringify!($name));
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new("bounds");
        for _ in 0..1000 {
            let x = (0.5f32..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&x));
            let n = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&n));
        }
    }

    proptest! {
        #[test]
        fn shim_self_test(values in crate::collection::vec(-1.0f32..1.0, 1..16), n in 1usize..8) {
            prop_assert!(!values.is_empty());
            prop_assert!(values.len() < 16);
            prop_assert_eq!(n.min(8), n);
            prop_assert!(values.iter().all(|v| (-1.0..1.0).contains(v)));
        }
    }
}
