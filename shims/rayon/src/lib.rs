//! In-tree shim for the `rayon` crate (the build environment is offline).
//!
//! Provides the structured-parallelism subset the workspace uses — [`scope`],
//! [`join`] and [`current_num_threads`] — implemented on
//! [`std::thread::scope`]. Callers are written so that results are
//! *scheduling-independent*: work items are claimed from an atomic counter
//! and every output slot is written by exactly one task, so swapping this
//! shim for real work-stealing rayon cannot change any computed value.
//!
//! Deviation from upstream: [`Scope::spawn`] takes a zero-argument closure
//! (`s.spawn(|| ...)`) instead of rayon's `s.spawn(|_| ...)`, because the
//! scope handle cannot be re-borrowed for the `'scope` lifetime without
//! leaking. Nested spawns are not needed anywhere in the workspace.

#![deny(missing_docs)]

/// Number of worker threads a parallel region should use.
///
/// Honors the `RAYON_NUM_THREADS` environment variable (like real rayon),
/// falling back to [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs both closures and returns their results.
///
/// The shim runs them sequentially on the calling thread, which is a valid
/// rayon schedule (rayon may also run either closure inline).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let ra = oper_a();
    let rb = oper_b();
    (ra, rb)
}

/// A scope in which borrowed-data tasks can be spawned; all tasks complete
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// Creates a scope for spawning borrowed-data tasks, joining them all before
/// returning the closure's result. Panics in spawned tasks propagate.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            42
        });
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn scoped_tasks_can_write_disjoint_slots() {
        let mut out = vec![0usize; 16];
        {
            let chunks: Vec<&mut [usize]> = out.chunks_mut(4).collect();
            scope(|s| {
                for (i, chunk) in chunks.into_iter().enumerate() {
                    s.spawn(move || {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            *slot = i * 4 + j;
                        }
                    });
                }
            });
        }
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }
}
