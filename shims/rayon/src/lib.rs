//! In-tree shim for the `rayon` crate (the build environment is offline).
//!
//! Provides the structured-parallelism subset the workspace uses — [`scope`],
//! [`join`] and [`current_num_threads`] — implemented on a **persistent
//! global worker pool**: worker threads are spawned once, on the first
//! parallel region, and every subsequent `scope` pushes its tasks onto the
//! shared injector queue instead of paying a `std::thread::spawn` per task.
//! The calling thread *helps* while it waits (it pops and runs queued tasks),
//! so nested scopes — e.g. the parallel GEMM called from inside a parallel
//! Monte-Carlo worker — cannot deadlock the fixed-size pool.
//!
//! Callers are written so that results are *scheduling-independent*: work
//! items are claimed from an atomic counter and every output slot is written
//! by exactly one task, so swapping this shim for real work-stealing rayon
//! cannot change any computed value.
//!
//! Deviation from upstream: [`Scope::spawn`] takes a zero-argument closure
//! (`s.spawn(|| ...)`) instead of rayon's `s.spawn(|_| ...)`, because the
//! scope handle cannot be re-borrowed for the `'scope` lifetime without
//! leaking. Nested spawns *of the same scope* are not needed anywhere in the
//! workspace (new nested scopes are fine).

#![deny(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Number of worker threads a parallel region should use.
///
/// Honors the `RAYON_NUM_THREADS` environment variable (like real rayon),
/// falling back to [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs both closures and returns their results.
///
/// The shim runs them sequentially on the calling thread, which is a valid
/// rayon schedule (rayon may also run either closure inline).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let ra = oper_a();
    let rb = oper_b();
    (ra, rb)
}

/// A queued unit of work. The closure's real lifetime is the enclosing
/// scope's `'scope`; the latch guarantees it finishes before `scope` returns,
/// which is what makes the `'static` erasure sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The persistent worker pool: a shared injector queue plus parked workers.
struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Number of worker threads ever spawned (telemetry for tests).
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// Ensures the worker threads exist (idempotent; first caller spawns them).
fn ensure_workers(p: &'static Pool) {
    static STARTED: OnceLock<()> = OnceLock::new();
    STARTED.get_or_init(|| {
        // The caller participates via help-while-waiting, so N-1 workers
        // saturate N hardware threads.
        let workers = current_num_threads().saturating_sub(1);
        for _ in 0..workers {
            p.spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name("invnorm-rayon-worker".into())
                .spawn(move || worker_loop(p))
                .expect("failed to spawn pool worker");
        }
    });
}

fn worker_loop(p: &'static Pool) {
    loop {
        let job = {
            let mut queue = p.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = p.available.wait(queue).expect("pool queue poisoned");
            }
        };
        job();
    }
}

fn push_job(p: &Pool, job: Job) {
    p.queue.lock().expect("pool queue poisoned").push_back(job);
    p.available.notify_one();
}

fn try_pop_job(p: &Pool) -> Option<Job> {
    p.queue.lock().expect("pool queue poisoned").pop_front()
}

/// Completion latch shared by one scope and all its spawned tasks.
struct ScopeLatch {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeLatch {
    fn new() -> Self {
        Self {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn increment(&self) {
        *self.pending.lock().expect("latch poisoned") += 1;
    }

    fn complete(&self) {
        let mut pending = self.pending.lock().expect("latch poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("latch poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Waits for every task, running queued jobs (of any scope) in the
    /// meantime so a saturated pool cannot deadlock on nested scopes.
    fn wait_with_help(&self, p: &'static Pool) {
        loop {
            if *self.pending.lock().expect("latch poisoned") == 0 {
                return;
            }
            if let Some(job) = try_pop_job(p) {
                job();
                continue;
            }
            let pending = self.pending.lock().expect("latch poisoned");
            if *pending == 0 {
                return;
            }
            // Timed wait: a helper that stole our last job completes the
            // latch, but a job may also land on the queue in between — wake
            // up periodically to check for helpable work.
            let _unused = self
                .done
                .wait_timeout(pending, Duration::from_millis(1))
                .expect("latch poisoned");
        }
    }
}

/// A scope in which borrowed-data tasks can be spawned; all tasks complete
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    latch: Arc<ScopeLatch>,
    _marker: std::marker::PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope. The task runs
    /// on the persistent pool (or on the scope's own thread while it waits).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let latch = Arc::clone(&self.latch);
        latch.increment();
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                latch.record_panic(payload);
            }
            latch.complete();
        });
        // SAFETY: the closure borrows data for 'scope. `scope` does not
        // return before the latch counts this task as complete, so the
        // borrow outlives every use; erasing the lifetime to queue it on the
        // 'static pool is therefore sound (same argument as rayon's own
        // scope implementation).
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(task) };
        let p = pool();
        ensure_workers(p);
        push_job(p, job);
    }
}

/// Creates a scope for spawning borrowed-data tasks, joining them all before
/// returning the closure's result. Panics in the closure or in spawned tasks
/// propagate after every task has completed.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let latch = Arc::new(ScopeLatch::new());
    let s = Scope {
        latch: Arc::clone(&latch),
        _marker: std::marker::PhantomData,
    };
    // Run the scope body; even if it panics, every already-spawned task must
    // finish before we unwind (they borrow 'env data).
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    latch.wait_with_help(pool());
    if let Some(payload) = latch.panic.lock().expect("latch poisoned").take() {
        resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            42
        });
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn scoped_tasks_can_write_disjoint_slots() {
        let mut out = vec![0usize; 16];
        {
            let chunks: Vec<&mut [usize]> = out.chunks_mut(4).collect();
            scope(|s| {
                for (i, chunk) in chunks.into_iter().enumerate() {
                    s.spawn(move || {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            *slot = i * 4 + j;
                        }
                    });
                }
            });
        }
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn pool_threads_are_reused_across_scopes() {
        // Burn through many scopes; the pool must not spawn more OS threads
        // than its fixed size (the pre-pool shim spawned one per task).
        for round in 0..20 {
            let counter = AtomicUsize::new(0);
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 4, "round {round}");
        }
        let cap = current_num_threads();
        let spawned = pool().spawned.load(Ordering::Relaxed);
        assert!(
            spawned < cap.max(1),
            "pool spawned {spawned} threads for {cap} hardware threads"
        );
    }

    #[test]
    fn nested_scopes_complete_on_the_fixed_pool() {
        // Outer tasks each open an inner scope — more live scopes than pool
        // threads; help-while-waiting must drain them all.
        let total = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                let total = &total;
                s.spawn(move || {
                    scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn task_panics_propagate_after_all_tasks_finish() {
        let finished = Arc::new(AtomicUsize::new(0));
        let finished2 = Arc::clone(&finished);
        let result = catch_unwind(AssertUnwindSafe(move || {
            scope(|s| {
                let finished = &finished2;
                s.spawn(|| panic!("boom"));
                for _ in 0..4 {
                    s.spawn(move || {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 4);
    }
}
