//! # invnorm
//!
//! Umbrella crate of the **invnorm** workspace — a from-scratch Rust
//! reproduction of *"Enhancing Reliability of Neural Networks at the Edge:
//! Inverted Normalization with Stochastic Affine Transformations"*
//! (DATE 2024).
//!
//! The workspace is organized as one crate per subsystem; this crate
//! re-exports them under a single dependency and provides a small
//! [`prelude`] so the examples and downstream users can get started with one
//! `use` line:
//!
//! * [`tensor`] ([`invnorm_tensor`]) — N-d `f32` tensors, convolution and
//!   pooling kernels, RNG, statistics, and the zero-alloc telemetry layer
//!   (phase spans, engine counters, chrome-trace export).
//! * [`nn`] ([`invnorm_nn`]) — layers, losses, optimizers, training loops.
//! * [`quant`] ([`invnorm_quant`]) — uniform quantization, binarization,
//!   activation fake-quantization.
//! * [`imc`] ([`invnorm_imc`]) — crossbar model, NVM fault models, fault
//!   injection, Monte-Carlo fault simulation.
//! * [`core`] ([`invnorm_core`]) — the paper's contribution: inverted
//!   normalization, affine dropout, Bayesian inference, OOD detection.
//! * [`datasets`] ([`invnorm_datasets`]) — synthetic stand-ins for CIFAR-10,
//!   Speech Commands, DRIVE and the Mauna Loa CO₂ record.
//! * [`models`] ([`invnorm_models`]) — the four evaluated topologies in
//!   conventional / Dropout-Bayesian / inverted-normalization variants.
//!
//! # Quick start
//!
//! ```
//! use invnorm::prelude::*;
//!
//! # fn main() -> Result<(), invnorm_nn::NnError> {
//! let mut rng = Rng::seed_from(0);
//! // A tiny Bayesian classifier with the paper's inverted normalization.
//! let mut net = Sequential::new();
//! net.push(Box::new(InvertedNorm::new(4, &InvNormConfig::default(), &mut rng)?));
//! net.push(Box::new(Linear::new(4, 2, &mut rng)));
//!
//! // Monte-Carlo Bayesian prediction with uncertainty.
//! let x = Tensor::randn(&[8, 4], 0.0, 1.0, &mut rng);
//! let prediction = BayesianPredictor::new(16).predict_classification(&mut net, &x)?;
//! assert_eq!(prediction.mean_probs.dims(), &[8, 2]);
//!
//! // Inject NVM faults and measure the damage.
//! let summary = MonteCarloEngine::new(10, 1).run(
//!     &mut net,
//!     FaultModel::AdditiveVariation { sigma: 0.2 },
//!     |net| Ok(net.forward(&x, Mode::Eval)?.mean()),
//! )?;
//! assert_eq!(summary.runs(), 10);
//! # Ok(())
//! # }
//! ```

// This crate must stay free of `unsafe`; all unsafe code in the
// workspace is confined to `crates/tensor` (lint rule R2).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use invnorm_core as core;
pub use invnorm_datasets as datasets;
pub use invnorm_imc as imc;
pub use invnorm_models as models;
pub use invnorm_nn as nn;
pub use invnorm_quant as quant;
pub use invnorm_tensor as tensor;

/// The most commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use invnorm_core::bayesian::{
        BayesianPredictor, ClassificationPrediction, RegressionPrediction,
    };
    pub use invnorm_core::{
        AffineDropout, AffineInit, DropGranularity, InvNormConfig, InvertedNorm, OodDetector,
    };
    pub use invnorm_imc::{
        CancelToken, CodeFaultInjector, DegradationPolicy, EngineKind, FallbackStep, FaultModel,
        LadderOutcome, MonteCarloEngine, MonteCarloSummary, NoiseHandle, RunBudget,
        SupervisedLadderOutcome, SweepCheckpoint, SweepControl, SweepOutcome, WeightFaultInjector,
    };
    pub use invnorm_models::{BuiltModel, NormVariant};
    pub use invnorm_nn::layer::{Layer, Mode, Param};
    pub use invnorm_nn::linear::Linear;
    pub use invnorm_nn::optim::{Adam, Optimizer, Sgd};
    pub use invnorm_nn::quantized::{QuantizedConv2d, QuantizedLinear};
    pub use invnorm_nn::{NnError, Plan, Residual, Sequential};
    pub use invnorm_quant::{QuantConfig, QuantizedTensor};
    pub use invnorm_tensor::telemetry::{Counter, Phase, RunTelemetry, Telemetry};
    pub use invnorm_tensor::{Rng, Shape, Tensor};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_core_workflow() {
        let mut rng = Rng::seed_from(3);
        let mut net = Sequential::new();
        net.push(Box::new(
            InvertedNorm::new(6, &InvNormConfig::default(), &mut rng).unwrap(),
        ));
        net.push(Box::new(Linear::new(6, 3, &mut rng)));
        let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut rng);
        let prediction = BayesianPredictor::new(4)
            .predict_classification(&mut net, &x)
            .unwrap();
        assert_eq!(prediction.mean_probs.dims(), &[4, 3]);
        let summary = MonteCarloEngine::new(3, 0)
            .run(
                &mut net,
                FaultModel::BitFlip {
                    rate: 0.05,
                    bits: 8,
                },
                |n| Ok(n.forward(&x, Mode::Eval)?.mean()),
            )
            .unwrap();
        assert_eq!(summary.runs(), 3);
    }
}
